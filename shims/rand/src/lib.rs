//! Offline stand-in for the `rand` crate (the 0.8 API slice this workspace
//! uses: `StdRng::seed_from_u64` plus `Rng::gen_range` over integer and float
//! ranges).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator of the real `StdRng`, but statistically solid for synthetic data
//! generation, and fully deterministic for a given seed, which is all the ADL
//! and SSB generators rely on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64-bit output per step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// The output type is a trait parameter (as in rand 0.8) so integer
    /// literals in the range infer their type from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// The workspace's standard generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors; guarantees a non-zero state for every seed.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

/// Uniform sampling from a range, mirroring `rand::distributions::uniform`.
///
/// Implemented as blanket impls over [`SampleUniform`] element types — exactly
/// like rand 0.8 — so the range's literal type unifies with the call site's
/// expected output type during inference.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` or `[lo, hi]` depending on `inclusive`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Unbiased integer in `[0, n)` via Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // 2^64 mod n: samples whose low product word falls below this threshold
    // land in the over-represented fringe and are rejected.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Inclusive full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_whole_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
