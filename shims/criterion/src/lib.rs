//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice the workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness: each benchmark is warmed up once, then timed over `sample_size`
//! samples, and the median/min/mean per-iteration times are printed.
//!
//! No statistical analysis, plots, or baseline comparison; the goal is honest
//! relative numbers in an environment without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes free arguments through; honour the
        // first non-flag argument as a substring filter like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let filter = self.filter.clone();
        run_benchmark(&id, 20, filter.as_deref(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Ends the group (kept for API compatibility; output is streamed).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    /// Duration of one sample (all iterations), recorded by [`Bencher::iter`].
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a batch of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.sample = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    // Warm-up sample: also sizes the iteration batch so one sample takes
    // roughly 10ms, keeping fast benchmarks meaningful and slow ones bounded.
    let mut b = Bencher { sample: Duration::ZERO, iters: 1 };
    f(&mut b);
    let per_iter = b.sample.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { sample: Duration::ZERO, iters };
        f(&mut b);
        samples.push(b.sample / iters as u32);
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {id:<50} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({sample_size} samples x {iters} iters)"
    );
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.sample_size(3).bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
