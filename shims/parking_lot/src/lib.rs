//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny slice of the `parking_lot` API it uses as a
//! wrapper over `std::sync`. Poisoning is collapsed into the inner value
//! (`parking_lot` locks do not poison): a panic while holding the lock
//! propagates the panic to the next acquirer.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
