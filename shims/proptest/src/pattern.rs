//! A miniature regex-shaped string generator.
//!
//! Real proptest compiles `&str` strategies through `regex-syntax`; this shim
//! supports exactly the constructs the workspace's property tests use:
//! character classes (with ranges and escapes), groups, alternation, the
//! `\PC` printable-character class, and the `*`, `+`, `?`, `{m}`, `{m,n}`
//! quantifiers.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Re {
    /// Concatenation of parts.
    Seq(Vec<Re>),
    /// One of several alternatives.
    Alt(Vec<Re>),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
    /// `\PC` / bare `.`: any printable (non-control) character.
    Printable,
    /// Bounded repetition of an inner pattern.
    Rep(Box<Re>, u32, u32),
}

/// Unbounded quantifiers get this many repetitions at most; enough to exercise
/// multi-character behaviour without ballooning fuzz case size.
const MAX_UNBOUNDED_REPS: u32 = 16;

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser { chars: pattern.chars().collect(), pos: 0, pattern }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn fail(&self, msg: &str) -> ! {
        panic!("unsupported pattern {:?} at offset {}: {msg}", self.pattern, self.pos)
    }

    fn parse_alt(&mut self) -> Re {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq());
        }
        if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            Re::Alt(alts)
        }
    }

    fn parse_seq(&mut self) -> Re {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            parts.push(self.parse_quantifier(atom));
        }
        Re::Seq(parts)
    }

    fn parse_quantifier(&mut self, atom: Re) -> Re {
        match self.peek() {
            Some('*') => {
                self.bump();
                Re::Rep(Box::new(atom), 0, MAX_UNBOUNDED_REPS)
            }
            Some('+') => {
                self.bump();
                Re::Rep(Box::new(atom), 1, MAX_UNBOUNDED_REPS)
            }
            Some('?') => {
                self.bump();
                Re::Rep(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.bump();
                let lo = self.parse_number();
                let hi = if self.peek() == Some(',') {
                    self.bump();
                    self.parse_number()
                } else {
                    lo
                };
                if self.peek() != Some('}') {
                    self.fail("expected '}' after repetition bound");
                }
                self.bump();
                Re::Rep(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut n = 0u32;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        if !any {
            self.fail("expected a number");
        }
        n
    }

    fn parse_atom(&mut self) -> Re {
        match self.bump() {
            '(' => {
                let inner = self.parse_alt();
                if self.peek() != Some(')') {
                    self.fail("unclosed group");
                }
                self.bump();
                inner
            }
            '[' => self.parse_class(),
            '\\' => match self.peek() {
                Some('P') => {
                    self.bump();
                    // `\PC`: anything outside the Unicode "other" category,
                    // i.e. printable text.
                    if self.peek() == Some('C') {
                        self.bump();
                        Re::Printable
                    } else {
                        self.fail("only \\PC is supported")
                    }
                }
                Some(_) => Re::Lit(self.bump()),
                None => self.fail("trailing backslash"),
            },
            '.' => Re::Printable,
            c => Re::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Re {
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.peek() {
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    if self.peek().is_none() {
                        self.fail("trailing backslash in class");
                    }
                    self.bump()
                }
                Some(_) => self.bump(),
                None => self.fail("unclosed character class"),
            };
            // `a-z` is a range unless the '-' is the last char before ']'.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = if self.peek() == Some('\\') {
                    self.bump();
                    self.bump()
                } else if self.peek().is_some() {
                    self.bump()
                } else {
                    self.fail("unclosed range in class")
                };
                if hi < c {
                    self.fail("inverted range in class");
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Re::Class(ranges)
    }
}

/// Non-control characters `\PC` draws from: mostly printable ASCII plus a
/// sprinkle of multi-byte code points to stress UTF-8 handling.
const UNICODE_SAMPLES: &[char] =
    &['\u{e9}', '\u{4e16}', '\u{3bb}', '\u{2713}', '\u{f1}', '\u{b0}', '\u{20ac}', '\u{1d54f}'];

fn printable(rng: &mut TestRng) -> char {
    if rng.below(8) == 0 {
        UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
    }
}

fn generate_into(re: &Re, rng: &mut TestRng, out: &mut String) {
    match re {
        Re::Seq(parts) => {
            for p in parts {
                generate_into(p, rng, out);
            }
        }
        Re::Alt(alts) => {
            let pick = rng.below(alts.len() as u64) as usize;
            generate_into(&alts[pick], rng, out);
        }
        Re::Class(ranges) => {
            // Weight ranges by their width so wide ranges are not starved.
            let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let width = (*hi as u64 - *lo as u64) + 1;
                if pick < width {
                    // Skip over the surrogate gap when a range spans it.
                    let c = char::from_u32(*lo as u32 + pick as u32)
                        .unwrap_or(*lo);
                    out.push(c);
                    return;
                }
                pick -= width;
            }
            unreachable!("range weights sum to total");
        }
        Re::Lit(c) => out.push(*c),
        Re::Printable => out.push(printable(rng)),
        Re::Rep(inner, lo, hi) => {
            let n = *lo + rng.below((*hi - *lo + 1) as u64) as u32;
            for _ in 0..n {
                generate_into(inner, rng, out);
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn gen_string(pattern: &str, rng: &mut TestRng) -> String {
    let mut p = Parser::new(pattern);
    let re = p.parse_alt();
    if p.pos != p.chars.len() {
        p.fail("unconsumed pattern suffix");
    }
    let mut out = String::new();
    generate_into(&re, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("pattern-tests")
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_string("[a-zA-Z][a-zA-Z0-9_]{0,6}", &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn escapes_in_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_string("[a-z\\-\\.\"\\\\/]{1,8}", &mut r);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || matches!(c, '-' | '.' | '"' | '\\' | '/')));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut r = rng();
        let mut seen_dash = false;
        for _ in 0..500 {
            let s = gen_string("[+-]", &mut r);
            assert!(s == "+" || s == "-");
            seen_dash |= s == "-";
        }
        assert!(seen_dash);
    }

    #[test]
    fn printable_class_excludes_controls() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_string("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn alternation_of_words() {
        let mut r = rng();
        for _ in 0..100 {
            let s = gen_string("(for|let|[0-9]+|\\$[a-z]+| )", &mut r);
            let ok = s == "for"
                || s == "let"
                || s == " "
                || (!s.is_empty() && s.chars().all(|c| c.is_ascii_digit()))
                || (s.starts_with('$')
                    && s.len() > 1
                    && s[1..].chars().all(|c| c.is_ascii_lowercase()));
            assert!(ok, "{s:?}");
        }
    }

    #[test]
    fn exact_repetition() {
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(gen_string("[ab]{3}", &mut r).len(), 3);
        }
    }
}
