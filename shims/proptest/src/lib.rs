//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! deterministic strategy-based testing core with the API slice its property
//! tests use: `Strategy` with `prop_map`/`prop_recursive`, `Just`, `any`,
//! range and regex-pattern strategies, tuple strategies,
//! `prop::collection::vec`, the `proptest!`/`prop_oneof!`/`prop_assert*`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! inputs instead), and the RNG is seeded from the test name, so runs are
//! reproducible without a persistence file.

mod pattern;

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator backing all strategies (xoshiro256++ seeded via
/// SplitMix64 from a test-name hash).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary label (typically the test path) so every test
    /// gets an independent, reproducible stream.
    pub fn for_test(label: &str) -> TestRng {
        // FNV-1a over the label.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` (Lemire multiply-shift with rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property check, produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> SBox<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        SBox::new(move |rng| f(self.generate(rng)))
    }

    /// Builds recursive structures: `self` is the leaf strategy, `f` wraps a
    /// strategy into one that nests it one level deeper. `depth` bounds the
    /// nesting; the size/branch hints of real proptest are ignored.
    fn prop_recursive<F>(self, depth: u32, _desired_size: u32, _expected_branch: u32, f: F) -> SBox<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(SBox<Self::Value>) -> SBox<Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = f(current);
            let shallow = leaf.clone();
            // Mix leaves back in at every level so shallow values stay common.
            current = SBox::new(move |rng| {
                if rng.below(2) == 0 {
                    shallow.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> SBox<Self::Value>
    where
        Self: Sized + 'static,
    {
        SBox::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct SBox<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> SBox<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> SBox<T> {
        SBox(Rc::new(f))
    }
}

impl<T> Clone for SBox<T> {
    fn clone(&self) -> SBox<T> {
        SBox(Rc::clone(&self.0))
    }
}

impl<T> Strategy for SBox<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        // Occasionally inject boundary values, which uniform sampling would
        // essentially never produce.
        if rng.below(16) == 0 {
            const EDGES: [i64; 5] = [0, 1, -1, i64::MIN, i64::MAX];
            EDGES[rng.below(EDGES.len() as u64) as usize]
        } else {
            rng.next_u64() as i64
        }
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary + 'static>() -> SBox<T> {
    SBox::new(|rng| T::arbitrary(rng))
}

/// Uniform choice between type-erased alternatives (used by `prop_oneof!`).
pub fn one_of<T: 'static>(arms: Vec<SBox<T>>) -> SBox<T> {
    assert!(!arms.is_empty(), "prop_oneof! requires at least one alternative");
    SBox::new(move |rng| {
        let pick = rng.below(arms.len() as u64) as usize;
        arms[pick].generate(rng)
    })
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from regex-like patterns (see [`pattern`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::gen_string(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B) (A, B, C) (A, B, C, D));

pub mod prop {
    pub mod collection {
        use super::super::{SBox, Strategy};
        use std::ops::Range;

        /// Vector of values from `element`, with a length drawn from `size`.
        pub fn vec<S>(element: S, size: Range<usize>) -> SBox<Vec<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            assert!(size.start < size.end, "empty size range in prop::collection::vec");
            SBox::new(move |rng| {
                let span = (size.end - size.start) as u64;
                let n = size.start + rng.below(span) as usize;
                (0..n).map(|_| element.generate(rng)).collect()
            })
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Declares property tests: each function body runs `cases` times with fresh
/// inputs drawn from its strategies. On failure the inputs are reported (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let described =
                    [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3i64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0i64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| (0..10).contains(&v)));
        }

        #[test]
        fn tuples_and_oneof(pair in (any::<bool>(), 0i64..3), v in prop_oneof![Just(1i64), Just(2)]) {
            prop_assert!((0..3).contains(&pair.1));
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn strings_match_pattern(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node).boxed()
        });
        let mut rng = crate::TestRng::for_test("recursive");
        let mut max_depth = 0;
        for _ in 0..500 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound exceeded: {max_depth}");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
