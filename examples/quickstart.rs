//! Quickstart: load nested JSON into the engine, run a JSONiq query through
//! the translation layer, and inspect the single SQL query it produces.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use snowq::jsoniq_core::interp::{DatabaseCollections, Interpreter};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::storage::{ColumnDef, ColumnType};
use snowq::snowdb::variant::parse_json;
use snowq::snowdb::{Database, Variant};

fn main() {
    // 1. Stage nested data: one typed column plus one VARIANT column, the
    //    multi-column staging of the paper's §III-C.
    let db = Database::new();
    let events = [
        (1i64, r#"[{"PT": 12.3, "ETA": 0.4}, {"PT": 45.1, "ETA": -2.0}]"#),
        (2, r#"[]"#),
        (3, r#"[{"PT": 31.9, "ETA": 0.8}]"#),
    ];
    db.load_table(
        "events",
        vec![
            ColumnDef::new("EVENT", ColumnType::Int),
            ColumnDef::new("JET", ColumnType::Variant),
        ],
        events
            .iter()
            .map(|(id, jets)| vec![Variant::Int(*id), parse_json(jets).unwrap()]),
    )
    .unwrap();

    // 2. A JSONiq query — the paper's Listing 1.
    let jsoniq = r#"
        for $jet in collection("events").JET[]
        where abs($jet.ETA) lt 1
        return $jet.PT
    "#;

    // 3. Translate it: one native SQL query, no UDFs.
    let db = Arc::new(db);
    let df = translate_query(db.clone(), jsoniq, NestedStrategy::FlagColumn)
        .expect("query translates");
    println!("Generated SQL:\n{}\n", df.sql());

    // 4. Execute lazily via collect(), exactly like Snowpark.
    let result = df.collect().expect("query runs");
    println!("Results ({} rows):", result.rows.len());
    for row in &result.rows {
        println!("  {}", row[0]);
    }
    println!(
        "\nEngine profile: compile {:?}, execute {:?}, {} bytes scanned",
        result.profile.compile_time,
        result.profile.exec_time,
        result.profile.scan.bytes_scanned
    );

    // 5. Cross-check against the reference interpreter (the semantics oracle).
    let provider = DatabaseCollections { db: &db };
    let reference = Interpreter::new(&provider).eval_query(jsoniq).expect("interpreter runs");
    let mut translated: Vec<Variant> =
        result.rows.into_iter().map(|mut r| r.remove(0)).collect();
    let mut reference = reference;
    translated.sort_by(snowq::snowdb::variant::cmp_variants);
    reference.sort_by(snowq::snowdb::variant::cmp_variants);
    assert_eq!(translated, reference);
    println!("\nTranslated results match the JSONiq interpreter. ✓");
}
