//! Relational workloads through JSONiq: the Star Schema Benchmark.
//!
//! Demonstrates the paper's §V-G claim: JSONiq expresses classic relational
//! star joins (successive `for` clauses + `where` predicates) and the
//! translation runs them as ordinary hash joins, on par with handwritten SQL.
//!
//! Run with: `cargo run --release --example relational_ssb`

use std::sync::Arc;
use std::time::Instant;

use snowq::jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowq::snowdb::Database;
use snowq::snowpark::Session;
use snowq::ssb::{self, SsbConfig};

fn main() {
    let db = Database::new();
    ssb::load_ssb(&db, &SsbConfig { lineorders: 16_384, ..Default::default() });
    let db = Arc::new(db);
    println!("loaded SSB tables: {:?}\n", db.table_names());

    for id in ["q1.1", "q2.1", "q3.1", "q4.1"] {
        let q = ssb::query(id);
        let mut translator =
            Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        let df = translator.translate(&q.jsoniq).expect("translates");

        let t0 = Instant::now();
        let translated = df.collect().expect("translated runs");
        let t_gen = t0.elapsed();

        let t1 = Instant::now();
        let handwritten = db.query(&q.sql).expect("handwritten runs");
        let t_hand = t1.elapsed();

        println!(
            "{id}: translated {:?} ({} rows) vs handwritten {:?} ({} rows)",
            t_gen,
            translated.rows.len(),
            t_hand,
            handwritten.rows.len()
        );
        if let Some(first) = translated.rows.first() {
            println!("   first row: {}", first[0]);
        }
    }
    println!("\nThe translated queries run the same hash-join plans; the only");
    println!("overhead is the OBJECT_CONSTRUCT wrapping each output row (§V-G).");
}
