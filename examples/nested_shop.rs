//! Nested queries and the erroneous-object-elimination problem (paper §IV-C),
//! on an e-commerce dataset: orders with nested line-item arrays.
//!
//! The query keeps *every* order and pairs it with the array of its expensive
//! items — including orders with no items at all. A naive unbox-filter-
//! reaggregate SQL pipeline would drop those orders; the two strategies of the
//! paper (flag column / JOIN-based) both preserve them, and this example runs
//! both and shows the SQL they generate.
//!
//! Run with: `cargo run --example nested_shop`

use std::sync::Arc;

use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::storage::{ColumnDef, ColumnType};
use snowq::snowdb::variant::parse_json;
use snowq::snowdb::{Database, Variant};

fn main() {
    let db = Database::new();
    let orders = [
        (101i64, r#"[{"SKU": "apple", "PRICE": 3.5}, {"SKU": "vacuum", "PRICE": 120.0}]"#),
        (102, r#"[]"#), // an order with no items must survive the nested query
        (103, r#"[{"SKU": "pen", "PRICE": 1.2}]"#),
        (104, r#"[{"SKU": "laptop", "PRICE": 999.0}, {"SKU": "cable", "PRICE": 9.0}, {"SKU": "monitor", "PRICE": 250.0}]"#),
    ];
    db.load_table(
        "orders",
        vec![
            ColumnDef::new("ORDER_ID", ColumnType::Int),
            ColumnDef::new("ITEMS", ColumnType::Variant),
        ],
        orders
            .iter()
            .map(|(id, items)| vec![Variant::Int(*id), parse_json(items).unwrap()]),
    )
    .unwrap();
    let db = Arc::new(db);

    // The paper's Listing 4 pattern: a nested FLWOR inside a `let`. JSONiq
    // semantics guarantee the nested query never removes parent objects.
    let jsoniq = r#"
        for $order in collection("orders")
        let $expensive := (
            for $item in $order.ITEMS[]
            where $item.PRICE gt 100
            return $item.SKU
        )
        return {"order": $order.ORDER_ID,
                "expensive": [ $expensive ],
                "n": count($expensive)}
    "#;

    for (name, strategy) in [
        ("flag-column (§IV-C1)", NestedStrategy::FlagColumn),
        ("JOIN-based (§IV-C2)", NestedStrategy::JoinBased),
    ] {
        println!("== {name} ==");
        let df = translate_query(db.clone(), jsoniq, strategy).expect("translates");
        let result = df.collect().expect("runs");
        for row in &result.rows {
            println!("  {}", row[0]);
        }
        println!(
            "  ({} rows out of {} orders — no order was lost; bytes scanned: {})\n",
            result.rows.len(),
            orders.len(),
            result.profile.scan.bytes_scanned
        );
    }

    println!("Generated SQL (flag-column strategy):");
    let df = translate_query(db, jsoniq, NestedStrategy::FlagColumn).unwrap();
    println!("{}", df.sql());
}
