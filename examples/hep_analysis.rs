//! High-energy-physics analysis: generate a synthetic CMS-like dataset, run
//! two of the ADL benchmark queries end to end, and render the histograms the
//! benchmark plots — including the Z-boson mass peak that query Q5 selects.
//!
//! Run with: `cargo run --release --example hep_analysis`

use std::sync::Arc;
use std::time::Instant;

use snowq::adl::{self, generator::AdlConfig};
use snowq::jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowq::snowdb::Database;

fn main() {
    let events = 16_384;
    println!("generating {events} synthetic CMS-like events...");
    let db = Database::new();
    adl::generator::load_into(&db, "hep", &AdlConfig::with_events(events));
    let db = Arc::new(db);
    let table = db.table("HEP").unwrap();
    println!(
        "loaded {} events across {} micro-partitions ({} KiB)\n",
        table.row_count(),
        table.partitions().len(),
        table.total_bytes() / 1024
    );

    for q in [adl::queries::q1("hep"), adl::queries::q5("hep")] {
        println!("== {} — {} ==", q.id, q.title);
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        let t0 = Instant::now();
        let df = translate_query(db.clone(), &q.jsoniq, strategy).expect("translates");
        let translation = t0.elapsed();
        let result = df.collect().expect("runs");
        println!(
            "translation {:?}, engine compile {:?}, execute {:?}",
            translation, result.profile.compile_time, result.profile.exec_time
        );

        // Render the {"value", "count"} histogram rows as ASCII bars.
        let max = result
            .rows
            .iter()
            .map(|r| r[0].get_field("count").as_i64().unwrap_or(0))
            .max()
            .unwrap_or(1)
            .max(1);
        for row in result.rows.iter().step_by(5) {
            let value = row[0].get_field("value").as_f64().unwrap_or(0.0);
            let count = row[0].get_field("count").as_i64().unwrap_or(0);
            let bar = "#".repeat(((count * 50) / max) as usize);
            println!("{value:>8.1} | {bar} {count}");
        }
        println!();
    }
    println!("Q5's histogram is populated only by events with an opposite-charge");
    println!("di-muon pair in the 60-120 GeV window — the synthetic Z peak.");
}
