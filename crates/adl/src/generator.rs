//! Seeded synthetic generator for the IRIS HEP ADL dataset.
//!
//! The real benchmark uses 53.4 M events from the 2012 CMS Run (17 GiB at
//! SF1), which is not redistributable here; this generator produces events
//! with the same schema (paper Fig. 1) and physics-plausible distributions so
//! the benchmark queries exercise identical logical structure:
//!
//! - particle multiplicities follow truncated Poisson-like distributions;
//! - transverse momenta are exponential with per-species means;
//! - pseudorapidity is Gaussian, azimuth uniform in [-π, π);
//! - a fraction of events contain a genuine Z → μ⁺μ⁻ decay whose invariant
//!   mass peaks at 91.2 GeV, so Q5's opposite-charge-pair selection has the
//!   selectivity shape of the original data;
//! - field names are upper-case, matching the engine's identifier folding.
//!
//! Everything is deterministic in the seed, so the interpreter, the translated
//! SQL, and the baselines all see bit-identical data.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::Object;
use snowdb::{Database, Variant};

/// Number of events at (re-based) Scale Factor 1. The paper's SF1 is 53.4 M
/// events; this laptop-scale rebase keeps the same sweep structure
/// (powers of two around SF1) at ~1/3000 of the cardinality, sized so the
/// full evaluation — including the interpreted baselines and the join-heavy
/// Q6 translation — completes in minutes on one core.
pub const SF1_EVENTS: usize = 16_384;

/// Z boson mass (GeV), used for the resonant di-muon pairs.
pub const Z_MASS: f64 = 91.2;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdlConfig {
    pub events: usize,
    pub seed: u64,
    pub partition_rows: usize,
}

impl Default for AdlConfig {
    fn default() -> Self {
        AdlConfig { events: SF1_EVENTS, seed: 42, partition_rows: 4096 }
    }
}

impl AdlConfig {
    /// Configuration for a power-of-two scale factor relative to SF1
    /// (e.g. `-4` → SF 2⁻⁴).
    pub fn scale_factor_pow2(pow: i32) -> AdlConfig {
        let events = if pow >= 0 {
            SF1_EVENTS << pow
        } else {
            (SF1_EVENTS >> (-pow).min(16)).max(1)
        };
        AdlConfig { events, ..Default::default() }
    }

    /// Configuration for a given absolute event count.
    pub fn with_events(events: usize) -> AdlConfig {
        AdlConfig { events, ..Default::default() }
    }
}

/// The ADL table schema: typed scalar column for the event id, `VARIANT`
/// columns for nested entries — the multi-column staging of paper §III-C.
pub fn schema() -> Vec<ColumnDef> {
    vec![
        ColumnDef::new("EVENT", ColumnType::Int),
        ColumnDef::new("MET", ColumnType::Variant),
        ColumnDef::new("HLT", ColumnType::Variant),
        ColumnDef::new("MUON", ColumnType::Variant),
        ColumnDef::new("ELECTRON", ColumnType::Variant),
        ColumnDef::new("JET", ColumnType::Variant),
        ColumnDef::new("PHOTON", ColumnType::Variant),
        ColumnDef::new("TAU", ColumnType::Variant),
    ]
}

struct Sampler {
    rng: StdRng,
}

impl Sampler {
    fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        -mean * u.ln()
    }

    fn gauss(&mut self, mean: f64, sigma: f64) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    fn phi(&mut self) -> f64 {
        self.rng.gen_range(-PI..PI)
    }

    fn eta(&mut self) -> f64 {
        self.gauss(0.0, 1.4).clamp(-4.0, 4.0)
    }

    /// Truncated Poisson-ish multiplicity via inverse-ish geometric mixing.
    fn multiplicity(&mut self, mean: f64, max: usize) -> usize {
        let mut n = 0usize;
        let p = mean / (mean + 1.0);
        while n < max && self.rng.gen_bool(p) {
            n += 1;
        }
        n
    }

    fn charge(&mut self) -> i64 {
        if self.rng.gen_bool(0.5) {
            1
        } else {
            -1
        }
    }
}

fn particle(pt: f64, eta: f64, phi: f64, mass: f64, charge: i64) -> Variant {
    let mut o = Object::with_capacity(5);
    o.insert("PT", Variant::Float(round6(pt)));
    o.insert("ETA", Variant::Float(round6(eta)));
    o.insert("PHI", Variant::Float(round6(phi)));
    o.insert("MASS", Variant::Float(round6(mass)));
    o.insert("CHARGE", Variant::Int(charge));
    Variant::object(o)
}

fn jet(s: &mut Sampler) -> Variant {
    let mut o = Object::with_capacity(5);
    o.insert("PT", Variant::Float(round6(15.0 + s.exp(35.0))));
    o.insert("ETA", Variant::Float(round6(s.eta())));
    o.insert("PHI", Variant::Float(round6(s.phi())));
    o.insert("MASS", Variant::Float(round6(3.0 + s.exp(7.0))));
    o.insert("BTAG", Variant::Float(round6(s.rng.gen_range(0.0..1.0))));
    Variant::object(o)
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Generates one event's row (one value per schema column).
fn event_row(id: i64, s: &mut Sampler) -> Vec<Variant> {
    // MET.
    let mut met = Object::with_capacity(2);
    met.insert("PT", Variant::Float(round6(s.exp(25.0))));
    met.insert("PHI", Variant::Float(round6(s.phi())));

    // Trigger flags.
    let mut hlt = Object::with_capacity(2);
    hlt.insert("ISOMU24", Variant::Bool(s.rng.gen_bool(0.35)));
    hlt.insert("ISOMU17_ETA2P1_LOOSEISOPFTAU20", Variant::Bool(s.rng.gen_bool(0.1)));

    // Muons: background plus an occasional resonant Z → μμ pair.
    let mut muons: Vec<Variant> = Vec::new();
    if s.rng.gen_bool(0.25) {
        // Build an opposite-charge pair with invariant mass ~ N(Z_MASS, 4):
        // m² = 2·pt1·pt2·(cosh Δη − cos Δφ) for (near-)massless particles.
        let m = s.gauss(Z_MASS, 4.0).max(20.0);
        let pt1 = 20.0 + s.exp(25.0);
        let eta1 = s.eta();
        let deta = s.gauss(0.0, 0.8);
        let eta2 = eta1 + deta;
        let c = s.rng.gen_range((deta.cosh() - 1.0).max(0.05)..deta.cosh() + 1.0);
        let pt2 = (m * m / (2.0 * pt1 * c)).clamp(3.0, 500.0);
        let cosdphi = deta.cosh() - (m * m) / (2.0 * pt1 * pt2);
        let dphi = cosdphi.clamp(-1.0, 1.0).acos();
        let phi1 = s.phi();
        let mut phi2 = phi1 + dphi;
        if phi2 > PI {
            phi2 -= 2.0 * PI;
        }
        let q = s.charge();
        muons.push(particle(pt1, eta1, phi1, 0.105658, q));
        muons.push(particle(pt2, eta2, phi2, 0.105658, -q));
    }
    for _ in 0..s.multiplicity(0.7, 4) {
        muons.push(particle(3.0 + s.exp(15.0), s.eta(), s.phi(), 0.105658, s.charge()));
    }

    // Electrons.
    let mut electrons: Vec<Variant> = Vec::new();
    for _ in 0..s.multiplicity(0.6, 4) {
        electrons.push(particle(3.0 + s.exp(14.0), s.eta(), s.phi(), 0.000511, s.charge()));
    }

    // Jets.
    let njets = s.multiplicity(2.2, 10);
    let jets: Vec<Variant> = (0..njets).map(|_| jet(s)).collect();

    // Photons and taus (lighter use in the queries, still populated).
    let photons: Vec<Variant> = (0..s.multiplicity(0.5, 3))
        .map(|_| particle(2.0 + s.exp(12.0), s.eta(), s.phi(), 0.0, 0))
        .collect();
    let taus: Vec<Variant> = (0..s.multiplicity(0.3, 2))
        .map(|_| particle(5.0 + s.exp(18.0), s.eta(), s.phi(), 1.77686, s.charge()))
        .collect();

    vec![
        Variant::Int(id),
        Variant::object(met),
        Variant::object(hlt),
        Variant::array(muons),
        Variant::array(electrons),
        Variant::array(jets),
        Variant::array(photons),
        Variant::array(taus),
    ]
}

/// Generates all events for a configuration.
pub fn generate_events(cfg: &AdlConfig) -> Vec<Vec<Variant>> {
    let mut s = Sampler { rng: StdRng::seed_from_u64(cfg.seed) };
    (0..cfg.events).map(|i| event_row(i as i64, &mut s)).collect()
}

/// Generates and loads the dataset into a database table.
pub fn load_into(db: &Database, table: &str, cfg: &AdlConfig) {
    let mut s = Sampler { rng: StdRng::seed_from_u64(cfg.seed) };
    db.load_table_with_partition_rows(
        table,
        schema(),
        (0..cfg.events).map(|i| event_row(i as i64, &mut s)),
        cfg.partition_rows,
    )
    .expect("schema arity is fixed");
}

/// Invariant mass of two (near-)massless particles, used by tests to validate
/// the generator's Z peak.
pub fn dimuon_mass(pt1: f64, eta1: f64, phi1: f64, pt2: f64, eta2: f64, phi2: f64) -> f64 {
    (2.0 * pt1 * pt2 * ((eta1 - eta2).cosh() - (phi1 - phi2).cos())).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_events(&AdlConfig { events: 50, seed: 7, partition_rows: 16 });
        let b = generate_events(&AdlConfig { events: 50, seed: 7, partition_rows: 16 });
        assert_eq!(a, b);
        let c = generate_events(&AdlConfig { events: 50, seed: 8, partition_rows: 16 });
        assert_ne!(a, c);
    }

    #[test]
    fn schema_matches_rows() {
        let rows = generate_events(&AdlConfig { events: 10, seed: 1, partition_rows: 16 });
        for r in &rows {
            assert_eq!(r.len(), schema().len());
            assert!(r[0].as_i64().is_some());
            assert!(r[1].as_object().unwrap().get("PT").is_some());
            assert!(r[3].as_array().is_some());
        }
    }

    #[test]
    fn z_peak_is_present() {
        let rows = generate_events(&AdlConfig { events: 2000, seed: 3, partition_rows: 512 });
        let mut in_window = 0usize;
        let mut with_pair = 0usize;
        for r in &rows {
            let muons = r[3].as_array().unwrap();
            for i in 0..muons.len() {
                for j in i + 1..muons.len() {
                    let (a, b) = (&muons[i], &muons[j]);
                    let qa = a.get_field("CHARGE").as_i64().unwrap();
                    let qb = b.get_field("CHARGE").as_i64().unwrap();
                    if qa + qb != 0 {
                        continue;
                    }
                    with_pair += 1;
                    let m = dimuon_mass(
                        a.get_field("PT").as_f64().unwrap(),
                        a.get_field("ETA").as_f64().unwrap(),
                        a.get_field("PHI").as_f64().unwrap(),
                        b.get_field("PT").as_f64().unwrap(),
                        b.get_field("ETA").as_f64().unwrap(),
                        b.get_field("PHI").as_f64().unwrap(),
                    );
                    if (60.0..120.0).contains(&m) {
                        in_window += 1;
                    }
                }
            }
        }
        // The resonant pairs must dominate the 60–120 window.
        assert!(with_pair > 200, "expected many OS pairs, got {with_pair}");
        assert!(
            in_window as f64 > 0.3 * with_pair as f64,
            "Z window too sparse: {in_window}/{with_pair}"
        );
    }

    #[test]
    fn multiplicities_are_bounded_and_varied() {
        let rows = generate_events(&AdlConfig { events: 500, seed: 5, partition_rows: 128 });
        let njets: Vec<usize> = rows.iter().map(|r| r[5].as_array().unwrap().len()).collect();
        assert!(njets.contains(&0));
        assert!(njets.iter().any(|&n| n >= 3));
        assert!(njets.iter().all(|&n| n <= 10));
    }

    #[test]
    fn load_into_creates_partitions() {
        let db = Database::new();
        load_into(&db, "hep", &AdlConfig { events: 100, seed: 1, partition_rows: 32 });
        let t = db.table("hep").unwrap();
        assert_eq!(t.row_count(), 100);
        assert_eq!(t.partitions().len(), 4);
    }
}
