//! Fixed-width histogramming, the output form of every ADL query.
//!
//! The benchmark plots fixed-width histograms with under/overflow folded into
//! the edge bins; both query formulations (JSONiq and handwritten SQL) use the
//! same clamp-then-floor arithmetic so results are bit-identical.

use snowdb::Variant;

/// One histogram bin: `[lo, hi)` plus a count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramBin {
    pub lo: f64,
    pub hi: f64,
    pub count: i64,
}

/// Builds a fixed-width histogram over `values`, clamping under/overflow into
/// the first/last bin.
pub fn histogram_fixed(values: &[f64], lo: f64, hi: f64, nbins: usize) -> Vec<HistogramBin> {
    assert!(nbins > 0 && hi > lo, "invalid histogram bounds");
    let width = (hi - lo) / nbins as f64;
    let mut counts = vec![0i64; nbins];
    for &v in values {
        let idx = bin_index(v, lo, hi, width);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| HistogramBin {
            lo: lo + i as f64 * width,
            hi: lo + (i + 1) as f64 * width,
            count,
        })
        .collect()
}

/// Clamp-then-floor bin index; the same arithmetic the queries embed.
pub fn bin_index(v: f64, lo: f64, hi: f64, width: f64) -> usize {
    let clamped = if v < lo {
        lo
    } else if v >= hi {
        hi - width / 2.0
    } else {
        v
    };
    ((clamped - lo) / width).floor() as usize
}

/// Converts `{value, count}` query output rows into a histogram aligned to the
/// same binning, for comparing engine output against a locally computed one.
pub fn from_query_rows(
    rows: &[Vec<Variant>],
    lo: f64,
    hi: f64,
    nbins: usize,
) -> Vec<HistogramBin> {
    let width = (hi - lo) / nbins as f64;
    let mut counts = vec![0i64; nbins];
    for row in rows {
        let obj = row[0].as_object().expect("histogram rows are objects");
        let value = obj.get("value").and_then(Variant::as_f64).expect("value field");
        let count = obj.get("count").and_then(Variant::as_i64).expect("count field");
        let idx = bin_index(value, lo, hi, width);
        counts[idx] += count;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| HistogramBin {
            lo: lo + i as f64 * width,
            hi: lo + (i + 1) as f64 * width,
            count,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range() {
        let h = histogram_fixed(&[0.5, 1.5, 1.6, 9.9], 0.0, 10.0, 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[1].count, 2);
        assert_eq!(h[9].count, 1);
        assert_eq!(h.iter().map(|b| b.count).sum::<i64>(), 4);
    }

    #[test]
    fn overflow_folds_into_edges() {
        let h = histogram_fixed(&[-5.0, 100.0, 1e9], 0.0, 10.0, 5);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[4].count, 2);
    }

    #[test]
    fn exact_boundary_goes_to_upper_bin() {
        let h = histogram_fixed(&[2.0], 0.0, 10.0, 5);
        assert_eq!(h[1].count, 1);
    }

    #[test]
    #[should_panic(expected = "invalid histogram bounds")]
    fn rejects_empty_range() {
        histogram_fixed(&[], 1.0, 1.0, 5);
    }
}
