//! `adl` — the IRIS HEP ADL benchmark substrate: a seeded synthetic event
//! generator with the CMS-like schema, the eight benchmark queries in both
//! JSONiq and handwritten Snowflake SQL, and histogram utilities.

pub mod generator;
pub mod histogram;
pub mod queries;

pub use generator::{generate_events, load_into, AdlConfig, SF1_EVENTS};
pub use histogram::{histogram_fixed, HistogramBin};
