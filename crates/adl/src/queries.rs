//! The eight ADL benchmark queries (paper §II-C), each in two formulations:
//!
//! - **JSONiq**: the reference formulation fed to the translation layer;
//! - **handwritten SQL**: the baseline in the style of the benchmark's official
//!   Snowflake implementations (`LATERAL FLATTEN` + `GROUP BY`, `BOOLAND_AGG`
//!   for Q7, `UNION ALL` reaggregation for Q8, `MIN_BY`/`MAX_BY` argmin instead
//!   of joins — which is why the handwritten Q6 scans the source table once
//!   while the translated JOIN-based Q6 scans it twice, reproducing §V-E).
//!
//! Both formulations use identical floating-point expression structure, so the
//! results of the interpreter, the translated SQL, and the handwritten SQL are
//! bit-identical and compared exactly in the test suite.
//!
//! Every query emits rows of a single column holding
//! `{"value": <bin center>, "count": <n>}` objects — the histogram form the
//! benchmark plots.

/// Shared JSONiq prolog: binning and HEP helper functions.
/// Non-recursive user functions are inlined by the rewrite phase.
const PROLOG: &str = r#"
declare function clampbin($x, $lo, $hi, $w) {
  floor(((if ($x lt $lo) then $lo else (if ($x ge $hi) then $hi - $w div 2 else $x)) - $lo) div $w)
};
declare function pxx($p) { $p.PT * cos($p.PHI) };
declare function pyy($p) { $p.PT * sin($p.PHI) };
declare function pzz($p) { $p.PT * sinh($p.ETA) };
declare function ee($p) {
  sqrt(pxx($p) * pxx($p) + pyy($p) * pyy($p) + pzz($p) * pzz($p) + $p.MASS * $p.MASS)
};
declare function trimass($a, $b, $c) {
  let $e := ee($a) + ee($b) + ee($c)
  let $x := pxx($a) + pxx($b) + pxx($c)
  let $y := pyy($a) + pyy($b) + pyy($c)
  let $z := pzz($a) + pzz($b) + pzz($c)
  return sqrt(abs($e * $e - $x * $x - $y * $y - $z * $z))
};
declare function tript($a, $b, $c) {
  let $x := pxx($a) + pxx($b) + pxx($c)
  let $y := pyy($a) + pyy($b) + pyy($c)
  return sqrt($x * $x + $y * $y)
};
declare function dimass($m1, $m2) {
  sqrt(2 * $m1.PT * $m2.PT * (cosh($m1.ETA - $m2.ETA) - cos($m1.PHI - $m2.PHI)))
};
declare function dphi($a, $b) {
  let $d := abs($a - $b)
  return if ($d gt pi()) then 2 * pi() - $d else $d
};
declare function drsq($j, $l) {
  let $de := $j.ETA - $l.ETA
  let $dp := dphi($j.PHI, $l.PHI)
  return $de * $de + $dp * $dp
};
"#;

/// One benchmark query: both formulations plus histogram metadata.
#[derive(Clone, Debug)]
pub struct AdlQuery {
    pub id: &'static str,
    /// Short description of the physics selection.
    pub title: &'static str,
    pub jsoniq: String,
    pub handwritten_sql: String,
    /// Histogram bounds `(lo, hi, width)`.
    pub bins: (f64, f64, f64),
    /// Whether the paper runs this query with the JOIN-based nested-query
    /// strategy (Q6) instead of the flag-column default (§V-A).
    pub join_based: bool,
}

fn fmt_f(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// SQL clamp-then-floor bin expression, mirroring the inlined `clampbin`.
fn sql_bin(x: &str, lo: f64, hi: f64, w: f64) -> String {
    let (lo_s, hi_s, w_s) = (fmt_f(lo), fmt_f(hi), fmt_f(w));
    let k = fmt_f(hi - w / 2.0);
    format!("FLOOR(((IFF(({x} < {lo_s}), {lo_s}, IFF(({x} >= {hi_s}), {k}, {x})) - {lo_s}) / {w_s}))")
}

/// SQL bin-center expression, mirroring `$lo + ($b + 0.5) * $w`.
fn sql_center(lo: f64, w: f64) -> String {
    format!("({} + ((BIN + 0.5) * {}))", fmt_f(lo), fmt_f(w))
}

/// JSONiq bin-center expression.
fn jq_center(lo: f64, w: f64) -> String {
    format!("{} + ($b + 0.5) * {}", fmt_f(lo), fmt_f(w))
}

fn sql_px(p: &str) -> String {
    format!("({p}:PT * COS({p}:PHI))")
}

fn sql_py(p: &str) -> String {
    format!("({p}:PT * SIN({p}:PHI))")
}

fn sql_pz(p: &str) -> String {
    format!("({p}:PT * SINH({p}:ETA))")
}

fn sql_energy(p: &str) -> String {
    let (px, py, pz) = (sql_px(p), sql_py(p), sql_pz(p));
    format!("SQRT(((({px} * {px}) + ({py} * {py})) + ({pz} * {pz})) + ({p}:MASS * {p}:MASS))")
}

fn sql_trimass(a: &str, b: &str, c: &str) -> String {
    let e = format!("(({} + {}) + {})", sql_energy(a), sql_energy(b), sql_energy(c));
    let x = format!("(({} + {}) + {})", sql_px(a), sql_px(b), sql_px(c));
    let y = format!("(({} + {}) + {})", sql_py(a), sql_py(b), sql_py(c));
    let z = format!("(({} + {}) + {})", sql_pz(a), sql_pz(b), sql_pz(c));
    format!("SQRT(ABS(((({e} * {e}) - ({x} * {x})) - ({y} * {y})) - ({z} * {z})))")
}

fn sql_tript(a: &str, b: &str, c: &str) -> String {
    let x = format!("(({} + {}) + {})", sql_px(a), sql_px(b), sql_px(c));
    let y = format!("(({} + {}) + {})", sql_py(a), sql_py(b), sql_py(c));
    format!("SQRT(({x} * {x}) + ({y} * {y}))")
}

fn sql_dimass(a: &str, b: &str) -> String {
    format!(
        "SQRT((((2 * {a}:PT) * {b}:PT) * (COSH(({a}:ETA - {b}:ETA)) - COS(({a}:PHI - {b}:PHI)))))"
    )
}

fn sql_dphi(a: &str, b: &str) -> String {
    format!("IFF((ABS(({a} - {b})) > PI()), ((2 * PI()) - ABS(({a} - {b}))), ABS(({a} - {b})))")
}

fn sql_drsq(j: &str, l: &str) -> String {
    let dp = sql_dphi(&format!("{j}:PHI"), &format!("{l}:PHI"));
    format!("((({j}:ETA - {l}:ETA) * ({j}:ETA - {l}:ETA)) + ({dp} * {dp}))")
}

/// Wraps a `SELECT BIN, CNT` histogram core into the common
/// `{"value", "count"}` output shape.
fn sql_histogram(core: &str, lo: f64, w: f64) -> String {
    format!(
        "SELECT RESULT FROM ( \
           SELECT OBJECT_CONSTRUCT('value', {center}, 'count', CNT) AS RESULT, BIN \
           FROM ({core}) ORDER BY BIN)",
        center = sql_center(lo, w),
    )
}

fn jsoniq_with_prolog(body: &str) -> String {
    format!("{PROLOG}\n{body}")
}

/// Builds all eight queries against the given table name.
pub fn queries(table: &str) -> Vec<AdlQuery> {
    vec![q1(table), q2(table), q3(table), q4(table), q5(table), q6(table), q7(table), q8(table)]
}

/// Q1: histogram of the missing transverse energy of all events.
pub fn q1(t: &str) -> AdlQuery {
    let (lo, hi, w) = (0.0, 100.0, 1.0);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
group by $b := clampbin($e.MET.PT, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("MET:PT", lo, hi, w);
    let core = format!("SELECT {bin} AS BIN, COUNT(*) AS CNT FROM {t} GROUP BY {bin}");
    AdlQuery {
        id: "q1",
        title: "MET of all events",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q2: histogram of the pT of all jets.
pub fn q2(t: &str) -> AdlQuery {
    let (lo, hi, w) = (15.0, 150.0, 2.7);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $j in collection("{t}").JET[]
group by $b := clampbin($j.PT, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($j)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("J.VALUE:PT", lo, hi, w);
    let core = format!(
        "SELECT {bin} AS BIN, COUNT(*) AS CNT \
         FROM {t} H, LATERAL FLATTEN(INPUT => H.JET) J GROUP BY {bin}"
    );
    AdlQuery {
        id: "q2",
        title: "pT of all jets",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q3: pT of jets with |η| < 1.
pub fn q3(t: &str) -> AdlQuery {
    let (lo, hi, w) = (15.0, 150.0, 2.7);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $j in collection("{t}").JET[]
where abs($j.ETA) lt 1
group by $b := clampbin($j.PT, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($j)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("J.VALUE:PT", lo, hi, w);
    let core = format!(
        "SELECT {bin} AS BIN, COUNT(*) AS CNT \
         FROM {t} H, LATERAL FLATTEN(INPUT => H.JET) J \
         WHERE (ABS(J.VALUE:ETA) < 1) GROUP BY {bin}"
    );
    AdlQuery {
        id: "q3",
        title: "pT of central jets",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q4: MET of events with at least two jets with pT > 40.
pub fn q4(t: &str) -> AdlQuery {
    let (lo, hi, w) = (0.0, 200.0, 4.0);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
where count(for $j in $e.JET[] where $j.PT gt 40 return $j) ge 2
group by $b := clampbin($e.MET.PT, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("MET:PT", lo, hi, w);
    let core = format!(
        "SELECT BIN, COUNT(*) AS CNT FROM ( \
           SELECT {bin} AS BIN FROM ( \
             SELECT ANY_VALUE(H.MET) AS MET \
             FROM {t} H, LATERAL FLATTEN(INPUT => H.JET) J \
             WHERE (J.VALUE:PT > 40) \
             GROUP BY H.EVENT HAVING (COUNT(*) >= 2))) \
         GROUP BY BIN"
    );
    AdlQuery {
        id: "q4",
        title: "MET of events with >= 2 hard jets",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q5: MET of events with an opposite-charge di-muon pair with
/// 60 < m(μμ) < 120.
pub fn q5(t: &str) -> AdlQuery {
    let (lo, hi, w) = (0.0, 200.0, 4.0);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
where exists(
  for $m1 at $i1 in $e.MUON[]
  for $m2 at $i2 in $e.MUON[]
  where $i1 lt $i2 and ($m1.CHARGE + $m2.CHARGE) eq 0
    and dimass($m1, $m2) gt 60 and dimass($m1, $m2) lt 120
  return 1)
group by $b := clampbin($e.MET.PT, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("MET:PT", lo, hi, w);
    let mass = sql_dimass("M1.VALUE", "M2.VALUE");
    let core = format!(
        "SELECT BIN, COUNT(*) AS CNT FROM ( \
           SELECT {bin} AS BIN FROM ( \
             SELECT ANY_VALUE(H.MET) AS MET \
             FROM {t} H, \
               LATERAL FLATTEN(INPUT => H.MUON) M1, \
               LATERAL FLATTEN(INPUT => H.MUON) M2 \
             WHERE (M1.INDEX < M2.INDEX) \
               AND ((M1.VALUE:CHARGE + M2.VALUE:CHARGE) = 0) \
               AND ({mass} > 60) AND ({mass} < 120) \
             GROUP BY H.EVENT)) \
         GROUP BY BIN"
    );
    AdlQuery {
        id: "q5",
        title: "MET of events with an OS di-muon pair near the Z peak",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q6: pT of the trijet system with invariant mass closest to 172.5 GeV.
pub fn q6(t: &str) -> AdlQuery {
    let (lo, hi, w) = (15.0, 250.0, 4.7);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
where size($e.JET) ge 3
let $trip := (
  for $j1 at $i1 in $e.JET[]
  for $j2 at $i2 in $e.JET[]
  for $j3 at $i3 in $e.JET[]
  where $i1 lt $i2 and $i2 lt $i3
  return {{"D": abs(trimass($j1, $j2, $j3) - 172.5), "PT": tript($j1, $j2, $j3)}})
let $best := min(for $tt in $trip return $tt.D)
let $pt := (for $tt in $trip where $tt.D eq $best return $tt.PT)[1]
group by $b := clampbin($pt, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("TPT", lo, hi, w);
    let d = format!("ABS(({} - 172.5))", sql_trimass("J1.VALUE", "J2.VALUE", "J3.VALUE"));
    let tpt = sql_tript("J1.VALUE", "J2.VALUE", "J3.VALUE");
    let core = format!(
        "SELECT BIN, COUNT(*) AS CNT FROM ( \
           SELECT {bin} AS BIN FROM ( \
             SELECT MIN_BY({tpt}, {d}) AS TPT \
             FROM {t} H, \
               LATERAL FLATTEN(INPUT => H.JET) J1, \
               LATERAL FLATTEN(INPUT => H.JET) J2, \
               LATERAL FLATTEN(INPUT => H.JET) J3 \
             WHERE (J1.INDEX < J2.INDEX) AND (J2.INDEX < J3.INDEX) \
             GROUP BY H.EVENT)) \
         GROUP BY BIN"
    );
    AdlQuery {
        id: "q6",
        title: "pT of the top-candidate trijet",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: true,
    }
}

/// Q7: scalar sum (HT) of the pT of jets with pT > 30 that are not within
/// ΔR < 0.4 of any lepton with pT > 10.
pub fn q7(t: &str) -> AdlQuery {
    let (lo, hi, w) = (0.0, 400.0, 8.0);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
let $ht := sum(
  for $j in $e.JET[]
  where $j.PT gt 30 and empty(
    for $l in [ $e.MUON[], $e.ELECTRON[] ][]
    where $l.PT gt 10 and drsq($j, $l) lt 0.16
    return 1)
  return $j.PT)
group by $b := clampbin($ht, {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));
    let bin = sql_bin("NVL(S.HT, 0)", lo, hi, w);
    let drsq = sql_drsq("J.VALUE", "L.VALUE");
    let core = format!(
        "SELECT BIN, COUNT(*) AS CNT FROM ( \
           SELECT {bin} AS BIN \
           FROM {t} E LEFT OUTER JOIN ( \
             SELECT EV, SUM(JPT) AS HT FROM ( \
               SELECT H.EVENT AS EV, J.INDEX AS JI, ANY_VALUE(J.VALUE:PT) AS JPT \
               FROM {t} H, \
                 LATERAL FLATTEN(INPUT => H.JET) J, \
                 LATERAL FLATTEN(INPUT => ARRAY_CAT(H.MUON, H.ELECTRON), OUTER => TRUE) L \
               WHERE (J.VALUE:PT > 30) \
               GROUP BY H.EVENT, J.INDEX \
               HAVING BOOLAND_AGG(IFF((L.INDEX IS NULL), TRUE, \
                 (NOT ((L.VALUE:PT > 10) AND ({drsq} < 0.16))))) \
             ) GROUP BY EV \
           ) S ON E.EVENT = S.EV) \
         GROUP BY BIN"
    );
    AdlQuery {
        id: "q7",
        title: "HT of isolated jets",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

/// Q8: transverse mass of MET and the hardest lepton outside the
/// same-flavour opposite-charge pair closest to the Z mass, for events with
/// at least three light leptons.
pub fn q8(t: &str) -> AdlQuery {
    let (lo, hi, w) = (15.0, 250.0, 4.7);
    let jsoniq = jsoniq_with_prolog(&format!(
        r#"for $e in collection("{t}")
let $leps := [
  (for $m in $e.MUON[]
   return {{"PT": $m.PT, "ETA": $m.ETA, "PHI": $m.PHI, "CHARGE": $m.CHARGE, "FLAVOR": 0}}),
  (for $el in $e.ELECTRON[]
   return {{"PT": $el.PT, "ETA": $el.ETA, "PHI": $el.PHI, "CHARGE": $el.CHARGE, "FLAVOR": 1}})
]
where size($leps) ge 3
where exists(
  for $l1 at $i1 in $leps[]
  for $l2 at $i2 in $leps[]
  where $i1 lt $i2 and $l1.FLAVOR eq $l2.FLAVOR and ($l1.CHARGE + $l2.CHARGE) eq 0
  return 1)
let $bd := min(
  for $l1 at $i1 in $leps[]
  for $l2 at $i2 in $leps[]
  where $i1 lt $i2 and $l1.FLAVOR eq $l2.FLAVOR and ($l1.CHARGE + $l2.CHARGE) eq 0
  return abs(dimass($l1, $l2) - 91.2))
let $pr := (
  for $l1 at $i1 in $leps[]
  for $l2 at $i2 in $leps[]
  where ($i1 lt $i2 and $l1.FLAVOR eq $l2.FLAVOR and ($l1.CHARGE + $l2.CHARGE) eq 0)
    and abs(dimass($l1, $l2) - 91.2) eq $bd
  return [$i1, $i2])[1]
let $mx := max(
  for $l at $i in $leps[]
  where $i ne $pr[[1]] and $i ne $pr[[2]]
  return $l.PT)
let $lead := (
  for $l at $i in $leps[]
  where ($i ne $pr[[1]] and $i ne $pr[[2]]) and $l.PT eq $mx
  return $l)[1]
group by $b := clampbin(
  sqrt(((2 * $e.MET.PT) * $lead.PT) * (1 - cos(dphi($e.MET.PHI, $lead.PHI)))),
  {lo}, {hi}, {w})
order by $b
return {{"value": {center}, "count": count($e)}}"#,
        lo = fmt_f(lo),
        hi = fmt_f(hi),
        w = fmt_f(w),
        center = jq_center(lo, w),
    ));

    let mt = format!(
        "SQRT((((2 * MET:PT) * LEAD:PT) * (1 - COS({}))))",
        sql_dphi("MET:PHI", "LEAD:PHI")
    );
    let bin = sql_bin("MT", lo, hi, w);
    let pairmass = format!("ABS(({} - 91.2))", sql_dimass("L1.VALUE", "L2.VALUE"));
    let core = format!(
        "SELECT BIN, COUNT(*) AS CNT FROM ( \
          SELECT {bin} AS BIN FROM ( \
            SELECT {mt} AS MT FROM ( \
              SELECT EVENT, ANY_VALUE(MET) AS MET, MAX_BY(L.VALUE, L.VALUE:PT) AS LEAD FROM ( \
                SELECT EVENT, ANY_VALUE(MET) AS MET, ANY_VALUE(LEPS) AS LEPS, \
                       MIN_BY(OBJECT_CONSTRUCT('I1', L1.INDEX, 'I2', L2.INDEX), {pairmass}) AS PAIR \
                FROM ( \
                  SELECT EVENT, ANY_VALUE(MET) AS MET, ARRAY_AGG(LEP) AS LEPS FROM ( \
                    SELECT H.EVENT AS EVENT, H.MET AS MET, \
                      OBJECT_CONSTRUCT('PT', M.VALUE:PT, 'ETA', M.VALUE:ETA, 'PHI', M.VALUE:PHI, \
                                       'CHARGE', M.VALUE:CHARGE, 'FLAVOR', 0) AS LEP \
                    FROM {t} H, LATERAL FLATTEN(INPUT => H.MUON) M \
                    UNION ALL \
                    SELECT H.EVENT AS EVENT, H.MET AS MET, \
                      OBJECT_CONSTRUCT('PT', EL.VALUE:PT, 'ETA', EL.VALUE:ETA, 'PHI', EL.VALUE:PHI, \
                                       'CHARGE', EL.VALUE:CHARGE, 'FLAVOR', 1) AS LEP \
                    FROM {t} H, LATERAL FLATTEN(INPUT => H.ELECTRON) EL \
                  ) GROUP BY EVENT \
                ), LATERAL FLATTEN(INPUT => LEPS) L1, LATERAL FLATTEN(INPUT => LEPS) L2 \
                WHERE (ARRAY_SIZE(LEPS) >= 3) AND (L1.INDEX < L2.INDEX) \
                  AND (L1.VALUE:FLAVOR = L2.VALUE:FLAVOR) \
                  AND ((L1.VALUE:CHARGE + L2.VALUE:CHARGE) = 0) \
                GROUP BY EVENT \
              ), LATERAL FLATTEN(INPUT => LEPS) L \
              WHERE (L.INDEX <> PAIR:I1) AND (L.INDEX <> PAIR:I2) \
              GROUP BY EVENT))) \
         GROUP BY BIN"
    );
    AdlQuery {
        id: "q8",
        title: "Transverse mass of MET and the leading extra lepton",
        jsoniq,
        handwritten_sql: sql_histogram(&core, lo, w),
        bins: (lo, hi, w),
        join_based: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_queries_are_defined() {
        let qs = queries("hep");
        assert_eq!(qs.len(), 8);
        assert!(qs.iter().all(|q| q.jsoniq.contains("collection(\"hep\")")));
        assert!(qs.iter().all(|q| q.handwritten_sql.contains("OBJECT_CONSTRUCT")));
        assert_eq!(qs.iter().filter(|q| q.join_based).count(), 1);
    }

    #[test]
    fn sql_helpers_are_balanced() {
        for q in queries("hep") {
            let open = q.handwritten_sql.matches('(').count();
            let close = q.handwritten_sql.matches(')').count();
            assert_eq!(open, close, "unbalanced parens in {}", q.id);
        }
    }

    #[test]
    fn bin_expression_embeds_clamp_constant() {
        let b = sql_bin("X", 0.0, 100.0, 1.0);
        assert!(b.contains("99.5"), "{b}");
    }
}
