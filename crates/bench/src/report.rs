//! Plain-text table rendering for the reproduction harness.

/// A rendered experiment: title, column headers, and rows.
#[derive(Clone, Debug)]
pub struct Report {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (methodology, cutoffs, substitutions).
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 0.0 {
        "DNF".to_string()
    } else if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// Formats a byte count.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("fig6", "Translation time", &["query", "time"]);
        r.row(["q1", "0.5ms"]);
        r.row(["q8-longer", "1.5ms"]);
        r.note("20 runs");
        let s = r.render();
        assert!(s.contains("fig6"));
        assert!(s.contains("q8-longer"));
        assert!(s.contains("note: 20 runs"));
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_secs(-1.0), "DNF");
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.5), "500.00ms");
        assert_eq!(fmt_secs(12.0), "12.00s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}
