//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!   repro [--quick] [--events N] [--lineorders N] [--runs N] [--cutoff SECS]
//!         [fig6|table2|fig7|fig8|fig9|scanned|fig10|fig11a|fig11b|ablation|all]
//!
//! Results print to stdout and are also written to `results/<id>.txt`.

use std::fs;
use std::time::Duration;

use bench::experiments::{self, Config};
use bench::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut which: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = Config::quick(),
            "--events" => {
                i += 1;
                cfg.adl_events = args[i].parse().expect("--events N");
            }
            "--lineorders" => {
                i += 1;
                cfg.ssb_lineorders = args[i].parse().expect("--lineorders N");
            }
            "--runs" => {
                i += 1;
                cfg.runs = args[i].parse().expect("--runs N");
            }
            "--cutoff" => {
                i += 1;
                cfg.cutoff = Duration::from_secs(args[i].parse().expect("--cutoff SECS"));
            }
            "--sweep" => {
                i += 1;
                let parts: Vec<i32> =
                    args[i].split("..").map(|p| p.parse().expect("--sweep LO..HI")).collect();
                cfg.sweep = (parts[0], parts[1]);
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = ["fig6", "table2", "fig7", "fig8", "fig9", "scanned", "fig10", "fig11a",
                 "fig11b", "ablation", "futurework"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    fs::create_dir_all("results").expect("create results dir");
    eprintln!(
        "config: adl_events={} ssb_lineorders={} runs={} warmup={} cutoff={}s sweep=2^{}..2^{}",
        cfg.adl_events,
        cfg.ssb_lineorders,
        cfg.runs,
        cfg.warmup,
        cfg.cutoff.as_secs(),
        cfg.sweep.0,
        cfg.sweep.1
    );

    for w in &which {
        let reports: Vec<Report> = match w.as_str() {
            "fig6" => vec![experiments::fig6_translation_time(&cfg)],
            "table2" => vec![experiments::table2_iterator_counts()],
            "fig7" => vec![experiments::fig7_compile_time(&cfg)],
            "fig8" => vec![experiments::fig8_exec_time(&cfg)],
            "fig9" => vec![experiments::fig9_end_to_end(&cfg)],
            "scanned" => vec![experiments::scanned_bytes(&cfg)],
            "fig10" => experiments::fig10_scalability(&cfg),
            "fig11a" => vec![experiments::fig11a_ssb_parity(&cfg)],
            "fig11b" => vec![experiments::fig11b_ssb_scaling(&cfg)],
            "ablation" => vec![experiments::ablation_nested_strategy(&cfg)],
            "futurework" => vec![experiments::futurework(&cfg)],
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        };
        let mut file_out = String::new();
        for rep in &reports {
            let text = rep.render();
            println!("{text}");
            file_out.push_str(&text);
            file_out.push('\n');
        }
        let path = format!("results/{w}.txt");
        fs::write(&path, file_out).expect("write results file");
        eprintln!("wrote {path}");
    }
}
