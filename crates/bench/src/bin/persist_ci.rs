//! `persist_ci` — the two halves of the CI cold-cache durability check.
//!
//! ```text
//! persist_ci build <dir>   # generate ADL + SSB and commit them to a new db
//! persist_ci check <dir>   # reopen the db and run the corpus on the lattice
//! ```
//!
//! CI runs `build` and `check` as SEPARATE processes: the reader starts with
//! an empty buffer cache and no in-memory tables, so everything it answers
//! comes off the committed partition files. `check` exits non-zero on any
//! divergence and prints per-suite cache traffic so the artifact shows how
//! much of the corpus was served from disk versus the warm cache.

use std::process::exit;
use std::sync::Arc;

use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowdb::verify::{default_lattice, verify_sql, DEFAULT_EPSILON};
use snowdb::Database;

const ADL_EVENTS: usize = 256;
const SSB_LINEORDERS: usize = 1500;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, dir] if cmd == "build" => build(dir),
        [cmd, dir] if cmd == "check" => check(dir),
        _ => {
            eprintln!("usage: persist_ci build|check <dir>");
            exit(2);
        }
    }
}

/// Writer process: stage the corpus datasets in memory, then persist them —
/// every partition becomes an immutable file under a committed catalog.
fn build(dir: &str) {
    let staging = Database::new();
    adl::generator::load_into(
        &staging,
        "hep",
        &adl::AdlConfig { events: ADL_EVENTS, seed: 1234, partition_rows: 64 },
    );
    ssb::load_ssb(
        &staging,
        &ssb::SsbConfig { lineorders: SSB_LINEORDERS, seed: 11, partition_rows: 256 },
    );
    staging.persist_to(dir).unwrap_or_else(|e| {
        eprintln!("persist failed: {e}");
        exit(1);
    });
    let db = Database::open(dir).expect("writer can reopen its own commit");
    println!(
        "built '{dir}': catalog v{}, tables {:?}",
        db.store().map(|s| s.version()).unwrap_or(0),
        db.table_names()
    );
}

/// Reader process: reopen cold and verify the full corpus across the
/// execution-configuration lattice. SSB runs the optimized half only — its
/// raw plan is a literal cross product, infeasible at corpus scale (same
/// policy as the in-memory corpus runner).
fn check(dir: &str) {
    let db = Arc::new(Database::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open {dir}: {e}");
        exit(1);
    }));
    let store = db.store().expect("opened database has a store");
    for t in db.table_names() {
        let table = db.table(&t).unwrap();
        assert!(
            table.partitions().iter().all(|p| p.is_disk()),
            "table {t} has in-memory partitions after a cold open"
        );
    }

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let full = default_lattice(threads);
    let optimized: Vec<_> = full.iter().copied().filter(|c| c.optimize).collect();
    let mut failures = 0usize;

    let adl_corpus: Vec<(String, String)> =
        adl::queries::queries("hep").into_iter().map(|q| (q.id.to_string(), q.jsoniq)).collect();
    let ssb_corpus: Vec<(String, String)> =
        ssb::queries().into_iter().map(|q| (q.id.to_string(), q.jsoniq)).collect();
    for (suite, queries, configs) in
        [("adl", adl_corpus, full.clone()), ("ssb", ssb_corpus, optimized)]
    {
        let before = store.cache_stats();
        for (id, jsoniq) in queries {
            let sql = match translate_query(db.clone(), &jsoniq, NestedStrategy::FlagColumn) {
                Ok(df) => df.sql().to_string(),
                Err(e) => {
                    eprintln!("FAIL {suite} {id}: translation: {e}");
                    failures += 1;
                    continue;
                }
            };
            match verify_sql(&db, &sql, &configs, DEFAULT_EPSILON) {
                Ok(report) if report.agrees() => println!("ok   {suite} {id}"),
                Ok(report) => {
                    eprintln!("FAIL {suite} {id} diverged:\n{}", report.render());
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("FAIL {suite} {id}: {e}");
                    failures += 1;
                }
            }
        }
        let after = store.cache_stats();
        println!(
            "{suite}: cache +{} hit(s) +{} miss(es) +{} eviction(s)",
            after.hits - before.hits,
            after.misses - before.misses,
            after.evictions - before.evictions,
        );
    }

    if failures > 0 {
        eprintln!("{failures} corpus failure(s) from cold-opened database");
        exit(1);
    }
    println!("corpus verified from cold-opened '{dir}' (catalog v{})", store.version());
}
