//! The experiments of the paper's §V, one function per table/figure.
//!
//! Absolute numbers differ from the paper (laptop vs cloud warehouse, re-based
//! scale factors); the quantities, methodology (warmup + averaged runs,
//! cutoff), and comparisons are the paper's. See EXPERIMENTS.md for the
//! paper-vs-measured discussion.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adl::generator::AdlConfig;
use adl::queries::AdlQuery;
use baselines::{DocStore, RumbleRunner};
use jsoniq_core::ast::JsoniqError;
use jsoniq_core::itertree;
use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowdb::Database;
use snowpark::Session;

use crate::report::{fmt_bytes, fmt_secs, Report};

/// Shared experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// ADL events at our re-based SF1.
    pub adl_events: usize,
    /// SSB lineorder rows at our re-based SF1.
    pub ssb_lineorders: usize,
    /// Timed runs per measurement (paper: 3 for engine experiments).
    pub runs: usize,
    /// Warmup runs (paper: 3; we default lower for the laptop budget).
    pub warmup: usize,
    /// Per-query cutoff for the baseline engines (paper: 10 minutes).
    pub cutoff: Duration,
    /// Scale-factor exponents (powers of two relative to SF1) for Fig. 10.
    pub sweep: (i32, i32),
}

impl Default for Config {
    fn default() -> Self {
        Config {
            adl_events: adl::SF1_EVENTS,
            ssb_lineorders: ssb::LINEORDERS_SF1,
            runs: 3,
            warmup: 1,
            cutoff: Duration::from_secs(60),
            sweep: (-6, 0),
        }
    }
}

impl Config {
    /// A configuration small enough for CI smoke runs.
    pub fn quick() -> Config {
        Config {
            adl_events: 2048,
            ssb_lineorders: 4096,
            runs: 1,
            warmup: 0,
            cutoff: Duration::from_secs(10),
            sweep: (-3, 0),
        }
    }
}

/// Times `f` over warmup + timed runs; returns mean seconds of the timed runs.
pub fn time_mean<F: FnMut()>(runs: usize, warmup: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let runs = runs.max(1);
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed().as_secs_f64() / runs as f64
}

/// Builds the ADL database at an event count.
pub fn adl_db(events: usize) -> Arc<Database> {
    let db = Database::new();
    adl::generator::load_into(&db, "hep", &AdlConfig::with_events(events));
    Arc::new(db)
}

/// Builds the SSB database at a lineorder count.
pub fn ssb_db(lineorders: usize) -> Arc<Database> {
    let db = Database::new();
    ssb::load_ssb(&db, &ssb::SsbConfig { lineorders, ..Default::default() });
    Arc::new(db)
}

fn strategy(q: &AdlQuery) -> NestedStrategy {
    if q.join_based {
        NestedStrategy::JoinBased
    } else {
        NestedStrategy::FlagColumn
    }
}

/// Translates one ADL query to SQL text.
fn translate(db: &Arc<Database>, q: &AdlQuery) -> String {
    let mut t = Translator::new(Session::new(db.clone()), strategy(q));
    t.translate(&q.jsoniq).expect("query translates").sql().to_string()
}

// ---- E1 / Fig. 6: JSONiq -> SQL translation time ---------------------------

pub fn fig6_translation_time(cfg: &Config) -> Report {
    // The paper uses 100 runs + 10 warmup; translation is milliseconds here,
    // so the full methodology is affordable.
    let db = adl_db(256); // translation time is independent of data size (§V-A)
    let mut rep = Report::new(
        "fig6",
        "Query translation time (JSONiq to SQL), mean of 100 runs after 10 warmup",
        &["query", "translation time", "sql bytes"],
    );
    for q in adl::queries::queries("hep") {
        let mut sql_len = 0usize;
        let secs = time_mean(100, 10, || {
            let mut t = Translator::new(Session::new(db.clone()), strategy(&q));
            let df = t.translate(&q.jsoniq).expect("translates");
            sql_len = df.sql().len();
        });
        rep.row([q.id.to_string(), fmt_secs(secs), sql_len.to_string()]);
    }
    rep.note("translation covers parse + rewrite + iterator tree + Snowpark composition");
    let _ = cfg;
    rep
}

// ---- E2 / Table II: iterator counts -----------------------------------------

pub fn table2_iterator_counts() -> Report {
    let mut rep = Report::new(
        "table2",
        "Runtime iterators generated per ADL query",
        &["type", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"],
    );
    let mut flwor = vec!["FLWOR Iterators".to_string()];
    let mut other = vec!["Other Iterators".to_string()];
    let mut total = vec!["Total Iterators".to_string()];
    for q in adl::queries::queries("hep") {
        let it = itertree::compile(&q.jsoniq).expect("compiles");
        let c = it.counts();
        flwor.push(c.flwor.to_string());
        other.push(c.other.to_string());
        total.push(c.total().to_string());
    }
    rep.rows.push(flwor);
    rep.rows.push(other);
    rep.rows.push(total);
    rep.note("counts include iterators introduced by inlined helper functions");
    rep
}

// ---- E3 / Fig. 7: compilation time ------------------------------------------

pub fn fig7_compile_time(cfg: &Config) -> Report {
    let db = adl_db(cfg.adl_events);
    let mut rep = Report::new(
        "fig7",
        "Query compilation time in the engine (parse + bind + optimize)",
        &["query", "generated", "handwritten"],
    );
    for q in adl::queries::queries("hep") {
        let gen_sql = translate(&db, &q);
        let g = time_mean(cfg.runs, cfg.warmup, || {
            db.compile(&gen_sql).expect("generated SQL compiles");
        });
        let h = time_mean(cfg.runs, cfg.warmup, || {
            db.compile(&q.handwritten_sql).expect("handwritten SQL compiles");
        });
        rep.row([q.id.to_string(), fmt_secs(g), fmt_secs(h)]);
    }
    rep
}

// ---- E4 / Fig. 8: execution time --------------------------------------------

pub fn fig8_exec_time(cfg: &Config) -> Report {
    let db = adl_db(cfg.adl_events);
    let mut rep = Report::new(
        "fig8",
        "Query execution time in the engine (plan execution only)",
        &["query", "generated", "handwritten"],
    );
    for q in adl::queries::queries("hep") {
        let gen_sql = translate(&db, &q);
        let g = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&gen_sql).expect("generated runs");
            std::hint::black_box(r.rows.len());
        });
        let gc = db.query(&gen_sql).expect("generated runs").profile;
        let h = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&q.handwritten_sql).expect("handwritten runs");
            std::hint::black_box(r.rows.len());
        });
        let hc = db.query(&q.handwritten_sql).expect("handwritten runs").profile;
        rep.row([
            q.id.to_string(),
            fmt_secs(g - gc.compile_time.as_secs_f64()),
            fmt_secs(h - hc.compile_time.as_secs_f64()),
        ]);
    }
    rep
}

// ---- E5 / Fig. 9: end-to-end comparison across systems ----------------------

/// Runs one ADL query on all four systems; negative seconds encode DNF.
pub fn end_to_end_all_systems(
    db: &Arc<Database>,
    rumble: &RumbleRunner,
    docstore: &DocStore,
    q: &AdlQuery,
    cfg: &Config,
) -> [f64; 4] {
    let deadline = || Instant::now() + cfg.cutoff;
    let run_baseline = |out: &mut f64, f: &dyn Fn() -> Result<usize, JsoniqError>| {
        let t0 = Instant::now();
        match f() {
            Ok(_) => *out = t0.elapsed().as_secs_f64(),
            Err(JsoniqError::Timeout) => *out = -1.0,
            Err(e) => panic!("baseline failed on {}: {e}", q.id),
        }
    };
    let mut rumble_t = 0.0;
    run_baseline(&mut rumble_t, &|| {
        rumble.query_with_deadline(&q.jsoniq, deadline()).map(|r| r.len())
    });
    let mut doc_t = 0.0;
    run_baseline(&mut doc_t, &|| {
        docstore.query_with_deadline(&q.jsoniq, deadline()).map(|r| r.len())
    });

    let gen_sql = translate(db, q);
    let g = time_mean(cfg.runs, cfg.warmup, || {
        let r = db.query(&gen_sql).expect("generated runs");
        std::hint::black_box(r.rows.len());
    });
    let h = time_mean(cfg.runs, cfg.warmup, || {
        let r = db.query(&q.handwritten_sql).expect("handwritten runs");
        std::hint::black_box(r.rows.len());
    });
    [rumble_t, doc_t, g, h]
}

pub fn fig9_end_to_end(cfg: &Config) -> Report {
    let db = adl_db(cfg.adl_events);
    let mut rumble = RumbleRunner::new();
    rumble.load_from_table(&db, "HEP");
    let mut docstore = DocStore::new();
    docstore.load_from_table(&db, "HEP");

    let mut rep = Report::new(
        "fig9",
        "End-to-end query time per system at SF1",
        &["query", "rumbledb-like", "docstore", "generated SQL", "handwritten SQL"],
    );
    for q in adl::queries::queries("hep") {
        let [r, d, g, h] = end_to_end_all_systems(&db, &rumble, &docstore, &q, cfg);
        rep.row([q.id.to_string(), fmt_secs(r), fmt_secs(d), fmt_secs(g), fmt_secs(h)]);
    }
    rep.note(format!("cutoff {}s (paper: 10 minutes); DNF marks a timeout", cfg.cutoff.as_secs()));
    rep
}

// ---- E6 / §V-E: scanned bytes ------------------------------------------------

pub fn scanned_bytes(cfg: &Config) -> Report {
    let db = adl_db(cfg.adl_events);
    let mut rep = Report::new(
        "scanned",
        "Bytes scanned per query (generated vs handwritten)",
        &["query", "generated", "handwritten", "ratio"],
    );
    for q in adl::queries::queries("hep") {
        let gen_sql = translate(&db, &q);
        let g = db.query(&gen_sql).expect("generated runs").profile.scan.bytes_scanned;
        let h = db
            .query(&q.handwritten_sql)
            .expect("handwritten runs")
            .profile
            .scan
            .bytes_scanned;
        rep.row([
            q.id.to_string(),
            fmt_bytes(g),
            fmt_bytes(h),
            format!("{:.2}x", g as f64 / h.max(1) as f64),
        ]);
    }
    rep.note("the JOIN-based Q6 translation rescans the source table (paper §V-E)");
    rep
}

// ---- E7 / Fig. 10: scalability sweep ----------------------------------------

pub fn fig10_scalability(cfg: &Config) -> Vec<Report> {
    let mut reports = Vec::new();
    let queries = adl::queries::queries("hep");
    let (lo, hi) = cfg.sweep;
    // Pre-build one database per scale factor.
    let mut scales = Vec::new();
    for pow in lo..=hi {
        let events = if pow >= 0 {
            cfg.adl_events << pow
        } else {
            (cfg.adl_events >> (-pow) as usize).max(64)
        };
        let db = adl_db(events);
        let mut rumble = RumbleRunner::new();
        rumble.load_from_table(&db, "HEP");
        let mut docstore = DocStore::new();
        docstore.load_from_table(&db, "HEP");
        scales.push((pow, events, db, rumble, docstore));
    }
    for q in &queries {
        let mut rep = Report::new(
            &format!("fig10-{}", q.id),
            &format!("Scalability of {} across scale factors", q.id),
            &["sf (2^k)", "events", "rumbledb-like", "docstore", "generated SQL", "handwritten SQL"],
        );
        for (pow, events, db, rumble, docstore) in &scales {
            let [r, d, g, h] = end_to_end_all_systems(db, rumble, docstore, q, cfg);
            rep.row([
                pow.to_string(),
                events.to_string(),
                fmt_secs(r),
                fmt_secs(d),
                fmt_secs(g),
                fmt_secs(h),
            ]);
        }
        reports.push(rep);
    }
    reports
}

// ---- E8/E9 / Fig. 11: SSB ----------------------------------------------------

pub fn fig11a_ssb_parity(cfg: &Config) -> Report {
    let db = ssb_db(cfg.ssb_lineorders);
    let mut rep = Report::new(
        "fig11a",
        "SSB total time (compile + execute): translated vs handwritten",
        &["query", "translated", "handwritten"],
    );
    for q in ssb::queries() {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        let gen_sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
        let g = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&gen_sql).expect("translated runs");
            std::hint::black_box(r.rows.len());
        });
        let h = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&q.sql).expect("handwritten runs");
            std::hint::black_box(r.rows.len());
        });
        rep.row([q.id.to_string(), fmt_secs(g), fmt_secs(h)]);
    }
    rep
}

pub fn fig11b_ssb_scaling(cfg: &Config) -> Report {
    let mut rep = Report::new(
        "fig11b",
        "SSB runtimes across scale factors (q1.1, q2.1, q3.1, q4.1)",
        &["sf", "query", "translated", "handwritten"],
    );
    // The paper sweeps SF {1, 10, 100, 1000}; re-based to x{0.25, 1, 4, 16}.
    for mult in [0.25f64, 1.0, 4.0, 16.0] {
        let lineorders = ((cfg.ssb_lineorders as f64) * mult) as usize;
        let db = ssb_db(lineorders.max(64));
        for id in ["q1.1", "q2.1", "q3.1", "q4.1"] {
            let q = ssb::query(id);
            let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
            let gen_sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
            let g = time_mean(cfg.runs, cfg.warmup, || {
                let r = db.query(&gen_sql).expect("translated runs");
                std::hint::black_box(r.rows.len());
            });
            let h = time_mean(cfg.runs, cfg.warmup, || {
                let r = db.query(&q.sql).expect("handwritten runs");
                std::hint::black_box(r.rows.len());
            });
            rep.row([format!("x{mult}"), id.to_string(), fmt_secs(g), fmt_secs(h)]);
        }
    }
    rep
}

// ---- A1: nested-query strategy ablation --------------------------------------

pub fn ablation_nested_strategy(cfg: &Config) -> Report {
    let db = adl_db(cfg.adl_events);
    let mut rep = Report::new(
        "ablation",
        "Nested-query strategy ablation: flag column vs JOIN-based (paper §IV-C)",
        &["query", "flag total", "join total", "flag bytes", "join bytes"],
    );
    for q in adl::queries::queries("hep") {
        // Only queries with nested queries differ between strategies.
        if !["q4", "q5", "q6", "q7", "q8"].contains(&q.id) {
            continue;
        }
        let sql_of = |s: NestedStrategy| {
            let mut t = Translator::new(Session::new(db.clone()), s);
            t.translate(&q.jsoniq).expect("translates").sql().to_string()
        };
        let flag_sql = sql_of(NestedStrategy::FlagColumn);
        let join_sql = sql_of(NestedStrategy::JoinBased);
        let f = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&flag_sql).expect("flag runs");
            std::hint::black_box(r.rows.len());
        });
        let j = time_mean(cfg.runs, cfg.warmup, || {
            let r = db.query(&join_sql).expect("join runs");
            std::hint::black_box(r.rows.len());
        });
        let fb = db.query(&flag_sql).expect("flag runs").profile.scan.bytes_scanned;
        let jb = db.query(&join_sql).expect("join runs").profile.scan.bytes_scanned;
        rep.row([q.id.to_string(), fmt_secs(f), fmt_secs(j), fmt_bytes(fb), fmt_bytes(jb)]);
    }
    rep.note("the JOIN-based variant rescans inputs; the flag variant carries padding rows");
    rep
}

// ---- A2: future-work features (paper §V-B, §IV-E, §VII-B) -------------------

pub fn futurework(cfg: &Config) -> Report {
    use jsoniq_core::cache::CachingTranslator;
    let db = adl_db(cfg.adl_events.min(8192));
    let mut rep = Report::new(
        "futurework",
        "Future-work features implemented: translation cache, native ARRAY_FILTER, order preservation",
        &["feature", "without", "with", "effect"],
    );

    // Translation cache (paper §V-B): repeated translation of Q8.
    let q8 = adl::queries::q8("hep");
    let cold = time_mean(20, 2, || {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        std::hint::black_box(t.translate(&q8.jsoniq).expect("translates").sql().len());
    });
    let cache = CachingTranslator::new(Session::new(db.clone()));
    cache.translate(&q8.jsoniq, NestedStrategy::FlagColumn).expect("translates");
    let warm = time_mean(20, 2, || {
        std::hint::black_box(
            cache
                .translate(&q8.jsoniq, NestedStrategy::FlagColumn)
                .expect("translates")
                .sql()
                .len(),
        );
    });
    rep.row([
        "translation cache (q8)".to_string(),
        fmt_secs(cold),
        fmt_secs(warm),
        format!("{:.0}x faster retranslation", cold / warm.max(1e-9)),
    ]);

    // Native ARRAY_FILTER (paper §VII-B): Q4's inner nested query qualifies.
    let q4 = adl::queries::q4("hep");
    let sql_plain = {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        t.translate(&q4.jsoniq).expect("translates").sql().to_string()
    };
    let sql_native = {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
            .with_native_array_filter(true);
        t.translate(&q4.jsoniq).expect("translates").sql().to_string()
    };
    let plain = time_mean(cfg.runs, cfg.warmup, || {
        std::hint::black_box(db.query(&sql_plain).expect("runs").rows.len());
    });
    let native = time_mean(cfg.runs, cfg.warmup, || {
        std::hint::black_box(db.query(&sql_native).expect("runs").rows.len());
    });
    rep.row([
        "native ARRAY_FILTER (q4)".to_string(),
        fmt_secs(plain),
        fmt_secs(native),
        format!("{:.1}x execution", plain / native.max(1e-9)),
    ]);

    // Order preservation (paper §IV-E): overhead of the injected sort on Q3.
    let q3 = adl::queries::q3("hep");
    let sql_base = {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        t.translate(&q3.jsoniq).expect("translates").sql().to_string()
    };
    let sql_ordered = {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn)
            .with_order_preservation(true);
        t.translate(&q3.jsoniq).expect("translates").sql().to_string()
    };
    let base = time_mean(cfg.runs, cfg.warmup, || {
        std::hint::black_box(db.query(&sql_base).expect("runs").rows.len());
    });
    let ordered = time_mean(cfg.runs, cfg.warmup, || {
        std::hint::black_box(db.query(&sql_ordered).expect("runs").rows.len());
    });
    rep.row([
        "order preservation (q3)".to_string(),
        fmt_secs(base),
        fmt_secs(ordered),
        format!("{:.2}x overhead", ordered / base.max(1e-9)),
    ]);
    rep.note("all three features are off by default, matching the paper's deployed system");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_query_columns() {
        let rep = table2_iterator_counts();
        assert_eq!(rep.headers.len(), 9);
        assert_eq!(rep.rows.len(), 3);
        // Totals are consistent and grow toward the complex queries.
        let parse =
            |r: &Vec<String>, i: usize| -> usize { r[i].parse().expect("numeric cell") };
        for i in 1..9 {
            assert_eq!(
                parse(&rep.rows[0], i) + parse(&rep.rows[1], i),
                parse(&rep.rows[2], i)
            );
        }
        assert!(parse(&rep.rows[2], 8) > parse(&rep.rows[2], 1), "q8 > q1");
        assert!(parse(&rep.rows[2], 6) > parse(&rep.rows[2], 2), "q6 > q2");
    }

    #[test]
    fn quick_fig6_runs() {
        let rep = fig6_translation_time(&Config::quick());
        assert_eq!(rep.rows.len(), 8);
    }

    #[test]
    fn quick_scanned_bytes_runs() {
        let mut cfg = Config::quick();
        cfg.adl_events = 512;
        let rep = scanned_bytes(&cfg);
        assert_eq!(rep.rows.len(), 8);
        // Q6's JOIN-based translation scans more than the handwritten version.
        let q6 = rep.rows.iter().find(|r| r[0] == "q6").unwrap();
        assert!(q6[3].ends_with('x'));
        let ratio: f64 = q6[3].trim_end_matches('x').parse().unwrap();
        assert!(ratio > 1.5, "expected Q6 rescan ratio > 1.5, got {ratio}");
    }

    #[test]
    fn time_mean_is_positive() {
        let t = time_mean(2, 1, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t >= 0.0);
    }
}
