//! `bench` — the harness that regenerates every table and figure of the
//! paper's evaluation (§V). See the `repro` binary and the Criterion benches.

pub mod experiments;
pub mod report;
