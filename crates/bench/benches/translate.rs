//! Criterion microbenchmark backing Fig. 6: JSONiq → SQL translation time per
//! ADL query (the full pipeline: parse, rewrite, iterator tree, Snowpark
//! composition).

use criterion::{criterion_group, criterion_main, Criterion};
use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowpark::Session;

fn bench_translate(c: &mut Criterion) {
    let db = bench::experiments::adl_db(64);
    let mut group = c.benchmark_group("translate");
    group.sample_size(20);
    for q in adl::queries::queries("hep") {
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        group.bench_function(q.id, |b| {
            b.iter(|| {
                let mut t = Translator::new(Session::new(db.clone()), strategy);
                let df = t.translate(&q.jsoniq).expect("translates");
                std::hint::black_box(df.sql().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
