//! SSB join-order benchmark: raw (unoptimized, cross-product) plans against
//! cost-ordered hash-join plans.
//!
//! Two scales, because the raw axis only terminates on small data:
//! - `tiny-raw` / `tiny-ordered`: the FK-closed tiny generator (12
//!   lineorders) where the unoptimized successive-`for` cross product is
//!   feasible — the direct raw-vs-ordered comparison;
//! - `sf-ordered`: the re-based SF database (4096 lineorders) with the
//!   cost-based reorderer on — raw is a ~10^13-row intermediate there, which
//!   is exactly the infeasibility the reorderer removes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use snowdb::{Database, QueryOptions};

fn tiny_db() -> Arc<Database> {
    let db = Database::new();
    ssb::load_ssb_tiny(&db, &ssb::SsbConfig { partition_rows: 8, ..Default::default() });
    Arc::new(db)
}

/// Representative multi-join queries: one per SSB flight with 2/3/4 joins.
const QUERY_IDS: &[&str] = &["q1.1", "q2.1", "q3.1", "q4.1"];

fn bench_join_order(c: &mut Criterion) {
    let tiny = tiny_db();
    let sf = bench::experiments::ssb_db(4096);
    let raw = QueryOptions { optimize: false, ..Default::default() };
    let ordered = QueryOptions::default();

    let mut group = c.benchmark_group("ssb-joins");
    group.sample_size(10);
    for id in QUERY_IDS {
        let q = ssb::query(id);
        group.bench_function(format!("{id}-tiny-raw"), |b| {
            b.iter(|| {
                std::hint::black_box(tiny.query_with(&q.sql, &raw).expect("runs").rows.len())
            })
        });
        group.bench_function(format!("{id}-tiny-ordered"), |b| {
            b.iter(|| {
                std::hint::black_box(tiny.query_with(&q.sql, &ordered).expect("runs").rows.len())
            })
        });
        group.bench_function(format!("{id}-sf-ordered"), |b| {
            b.iter(|| {
                std::hint::black_box(sf.query_with(&q.sql, &ordered).expect("runs").rows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_order);
criterion_main!(benches);
