//! Typed vectorized kernels vs the boxed row-at-a-time path.
//!
//! Same data, same plans, same thread count (1, to isolate kernel cost from
//! parallelism) — the only difference is `QueryOptions::vectorize`. The target
//! the vectorization work is held to: >= 2x on scan-heavy filter/arithmetic/
//! aggregate shapes over shredded typed columns.

use criterion::{criterion_group, criterion_main, Criterion};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::{Database, QueryOptions, Variant};

const ROWS: i64 = 262_144;
const PARTITION_ROWS: usize = 16_384;

/// A fully shredded typed table: the best case the kernels are built for.
fn typed_db() -> Database {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("A", ColumnType::Int),
            ColumnDef::new("B", ColumnType::Int),
            ColumnDef::new("X", ColumnType::Float),
        ],
        (0..ROWS).map(|i| {
            vec![
                Variant::Int(i % 1000),
                Variant::Int(i % 17),
                Variant::Float((i % 1000) as f64 * 0.25),
            ]
        }),
        PARTITION_ROWS,
    )
    .unwrap();
    db
}

/// The same table with every tenth value switching numeric class, so each
/// column promotes to boxed Variant: measures that the fallback path costs no
/// more than the pre-vectorization executor.
fn mixed_db() -> Database {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("A", ColumnType::Variant),
            ColumnDef::new("B", ColumnType::Variant),
            ColumnDef::new("X", ColumnType::Variant),
        ],
        (0..ROWS).map(|i| {
            let a = if i % 10 == 9 {
                Variant::Float((i % 1000) as f64)
            } else {
                Variant::Int(i % 1000)
            };
            let b =
                if i % 10 == 4 { Variant::Float((i % 17) as f64) } else { Variant::Int(i % 17) };
            vec![a, b, Variant::Float((i % 1000) as f64 * 0.25)]
        }),
        PARTITION_ROWS,
    )
    .unwrap();
    db
}

const QUERIES: &[(&str, &str)] = &[
    ("filter", "SELECT A FROM t WHERE A < 500 AND X >= 10.0"),
    ("arith", "SELECT A + B * 2 - (X + A) * 3.5 FROM t WHERE B + 1 > 0"),
    ("global-agg", "SELECT SUM(A), AVG(X), COUNT(B), MIN(A), MAX(X) FROM t"),
    ("group-agg", "SELECT B, SUM(A), COUNT(*) FROM t GROUP BY B"),
    ("join", "SELECT COUNT(*) FROM t l JOIN t r ON l.B = r.B WHERE l.A < 20 AND r.A < 20"),
];

fn run_pair(c: &mut Criterion, group_name: &str, db: &Database) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &(id, sql) in QUERIES {
        for (mode, vectorize) in [("vec", true), ("row", false)] {
            let opts = QueryOptions {
                optimize: true,
                threads: Some(1),
                vectorize: Some(vectorize),
                encode: None,
            };
            group.bench_function(format!("{id}-{mode}"), |b| {
                b.iter(|| std::hint::black_box(db.query_with(sql, &opts).expect("runs").rows.len()))
            });
        }
    }
    group.finish();
}

/// A low-cardinality string table ingested with encoding forced on, so every
/// string block is dictionary-coded and the int key column run-length-coded.
/// The dict-filter / dict-group-by target: >= 2x over the decoded path.
fn dict_db() -> Database {
    snowdb::storage::set_ingest_encoding(Some(true));
    let db = Database::new();
    let cities = ["tokyo", "lima", "oslo", "cairo", "quito", "seoul", "accra", "dakar"];
    db.load_table_with_partition_rows(
        "s",
        vec![
            ColumnDef::new("CITY", ColumnType::Str),
            ColumnDef::new("N", ColumnType::Int),
        ],
        (0..ROWS).map(|i| {
            vec![
                Variant::str(cities[(i % cities.len() as i64) as usize]),
                Variant::Int(i / 1000),
            ]
        }),
        PARTITION_ROWS,
    )
    .unwrap();
    snowdb::storage::set_ingest_encoding(None);
    db
}

const DICT_QUERIES: &[(&str, &str)] = &[
    ("dict-filter", "SELECT N FROM s WHERE CITY = 'oslo'"),
    ("dict-in", "SELECT N FROM s WHERE CITY IN ('lima', 'seoul', 'dakar')"),
    ("dict-group-by", "SELECT CITY, COUNT(*), SUM(N) FROM s GROUP BY CITY"),
];

fn bench_kernels_dict(c: &mut Criterion) {
    let db = dict_db();
    let mut group = c.benchmark_group("kernels-dict");
    group.sample_size(10);
    for &(id, sql) in DICT_QUERIES {
        for (mode, encode) in [("enc", true), ("dec", false)] {
            let opts = QueryOptions {
                optimize: true,
                threads: Some(1),
                vectorize: Some(true),
                encode: Some(encode),
            };
            group.bench_function(format!("{id}-{mode}"), |b| {
                b.iter(|| std::hint::black_box(db.query_with(sql, &opts).expect("runs").rows.len()))
            });
        }
    }
    group.finish();
}

fn bench_kernels_typed(c: &mut Criterion) {
    let db = typed_db();
    run_pair(c, "kernels-typed", &db);
}

fn bench_kernels_mixed(c: &mut Criterion) {
    let db = mixed_db();
    run_pair(c, "kernels-mixed", &db);
}

criterion_group!(benches, bench_kernels_typed, bench_kernels_mixed, bench_kernels_dict);
criterion_main!(benches);
