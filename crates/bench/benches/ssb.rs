//! Criterion benchmark backing Fig. 11: SSB translated vs handwritten total
//! time on a reduced dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowpark::Session;

fn bench_ssb(c: &mut Criterion) {
    let db = bench::experiments::ssb_db(4096);
    let mut group = c.benchmark_group("ssb");
    group.sample_size(10);
    for q in ssb::queries() {
        let mut t = Translator::new(Session::new(db.clone()), NestedStrategy::FlagColumn);
        let gen_sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
        group.bench_function(format!("{}-translated", q.id), |b| {
            b.iter(|| std::hint::black_box(db.query(&gen_sql).expect("runs").rows.len()))
        });
        group.bench_function(format!("{}-handwritten", q.id), |b| {
            b.iter(|| std::hint::black_box(db.query(&q.sql).expect("runs").rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssb);
criterion_main!(benches);
