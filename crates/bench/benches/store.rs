//! Criterion benchmarks for the persistent micro-partition store: cold scans
//! (buffer cache cleared every iteration, so `bytes_scanned` is real file
//! I/O) versus warm scans (cache resident, zero file bytes), plus the
//! pruning payoff — a selective scan that reads a fraction of the table's
//! blocks. The CI persistence job uploads this output as the cold/warm
//! comparison artifact.

use std::sync::Arc;

use adl::generator::AdlConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use snowdb::Database;

const EVENTS: usize = 4096;
const PARTITION_ROWS: usize = 256;

/// The staged ADL dataset split into many partitions so zone-map pruning has
/// something to prune (the default 4096-row partitions would hold the whole
/// benchmark table in one file).
fn staged_db() -> Arc<Database> {
    let db = Database::new();
    adl::generator::load_into(
        &db,
        "hep",
        &AdlConfig { events: EVENTS, seed: 42, partition_rows: PARTITION_ROWS },
    );
    Arc::new(db)
}

/// An on-disk ADL database in a scratch directory, reopened so every
/// partition is disk-backed.
fn disk_db(tag: &str) -> (Arc<Database>, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("snowq-bench-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    staged_db().persist_to(&dir).expect("persist");
    let db = Arc::new(Database::open(&dir).expect("reopen"));
    (db, dir)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let (db, dir) = disk_db("scan");
    let store = db.store().expect("store attached");
    let sql = "SELECT SUM(MET:PT) FROM hep";

    let mut group = c.benchmark_group("store_scan");
    group.sample_size(20);
    group.bench_function("cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(db.query(sql).expect("runs").profile.scan.bytes_scanned)
        })
    });
    // One priming run, then steady-state cache hits.
    db.query(sql).expect("primes");
    group.bench_function("warm", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).expect("runs").profile.scan.bytes_scanned))
    });
    // In-memory baseline: the same data without the store.
    let mem = staged_db();
    group.bench_function("memory", |b| {
        b.iter(|| std::hint::black_box(mem.query(sql).expect("runs").rows.len()))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_pruned_scan(c: &mut Criterion) {
    let (db, dir) = disk_db("prune");
    let store = db.store().expect("store attached");
    // EVENT is monotone across partitions, so the predicate prunes most of
    // the table; cold iterations therefore measure selective file I/O.
    let sql = format!("SELECT COUNT(*) FROM hep WHERE EVENT >= {}", EVENTS - EVENTS / 16);

    let mut group = c.benchmark_group("store_pruning");
    group.sample_size(20);
    group.bench_function("selective-cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(db.query(&sql).expect("runs").profile.scan.bytes_scanned)
        })
    });
    group.bench_function("full-cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(
                db.query("SELECT COUNT(MET:PT) FROM hep").expect("runs").profile.scan.bytes_scanned,
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// An on-disk SSB database ingested with encoding forced on or off, so the
/// partition files carry dictionary/run-length blocks (or plain ones).
fn ssb_disk_db(tag: &str, encode: bool) -> (Arc<Database>, std::path::PathBuf) {
    snowdb::storage::set_ingest_encoding(Some(encode));
    let staged = Database::new();
    ssb::generator::load_ssb(
        &staged,
        &ssb::generator::SsbConfig { lineorders: 8192, seed: 7, partition_rows: 512 },
    );
    snowdb::storage::set_ingest_encoding(None);
    let dir =
        std::env::temp_dir().join(format!("snowq-bench-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    staged.persist_to(&dir).expect("persist");
    let db = Arc::new(Database::open(&dir).expect("reopen"));
    (db, dir)
}

/// Recursive on-disk footprint of a database directory.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                total += dir_bytes(&p);
            } else {
                total += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Cold-scan file bytes and warm cache-hit rate, before vs. after encoding:
/// the same SSB data written plain and dictionary/run-length coded. The
/// printed byte and hit/miss figures are the artifact the CI encodings job
/// uploads alongside the timing comparison.
fn bench_encoded_store(c: &mut Criterion) {
    // On-disk footprint of the ADL corpus, plain vs. encoded, for the
    // EXPERIMENTS.md before/after table (SSB is printed inside the loop).
    for (mode, encode) in [("plain", false), ("encoded", true)] {
        snowdb::storage::set_ingest_encoding(Some(encode));
        let staged = staged_db();
        snowdb::storage::set_ingest_encoding(None);
        let dir = std::env::temp_dir()
            .join(format!("snowq-bench-store-adl-{mode}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        staged.persist_to(&dir).expect("persist");
        eprintln!("store_encoding/adl-{mode}: {} bytes on disk", dir_bytes(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }

    let sql = "SELECT LO_SHIPMODE, COUNT(*) FROM lineorder GROUP BY LO_SHIPMODE";
    let mut group = c.benchmark_group("store_encoding");
    group.sample_size(20);
    for (mode, encode) in [("plain", false), ("encoded", true)] {
        let (db, dir) = ssb_disk_db(&format!("enc-{mode}"), encode);
        let store = db.store().expect("store attached");
        eprintln!("store_encoding/{mode}: {} bytes on disk", dir_bytes(&dir));
        group.bench_function(format!("cold-{mode}"), |b| {
            b.iter(|| {
                store.cache().clear();
                std::hint::black_box(db.query(sql).expect("runs").profile.scan.bytes_scanned)
            })
        });
        // One priming run, then report the steady-state cache-hit rate.
        db.query(sql).expect("primes");
        let scan = db.query(sql).expect("runs").profile.scan;
        eprintln!(
            "store_encoding/{mode}: warm cache {} hit(s) / {} miss(es)",
            scan.cache_hits, scan.cache_misses
        );
        group.bench_function(format!("warm-{mode}"), |b| {
            b.iter(|| std::hint::black_box(db.query(sql).expect("runs").rows.len()))
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

/// Query latency while a streaming ingestor commits micro-batches in the
/// background — quiet vs. ingest-only vs. ingest + background compactor.
/// Readers pin a snapshot, so ingest churn should cost contention, not
/// correctness; the compactor variant shows whether merging the accumulated
/// micro-partitions wins back scan latency. The printed partition counts are
/// part of the CI persist artifact.
fn bench_ingest_while_querying(c: &mut Criterion) {
    use snowdb::store::{CompactionPolicy, Compactor};
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = std::env::temp_dir()
        .join(format!("snowq-bench-store-ingest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Arc::new(Database::open(&dir).expect("open"));
    db.execute("CREATE TABLE stream (k INT, x INT)").expect("create");
    let mut ing = db.stream_ingest("stream", 64).expect("ingest");
    for i in 0..4096i64 {
        ing.push_json(&format!("{{\"k\": {}, \"x\": {i}}}", i % 16)).expect("push");
    }
    ing.finish().expect("finish");
    let sql = "SELECT k, SUM(x) FROM stream GROUP BY k";

    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(20);
    group.bench_function("query-quiet", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).expect("runs").rows.len()))
    });

    // Continuous background ingest: micro-commits land while queries run.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (db, stop) = (db.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let mut ing = db.stream_ingest("stream", 32).expect("ingest");
                for _ in 0..32 {
                    ing.push_json(&format!("{{\"k\": {}, \"x\": 0}}", i % 16)).expect("push");
                    i += 1;
                }
                ing.finish().expect("finish");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };
    group.bench_function("query-during-ingest", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).expect("runs").rows.len()))
    });

    // Same churn plus the background compactor merging the micro-partitions.
    let compactor = Compactor::spawn(
        db.clone(),
        "stream",
        CompactionPolicy { cluster_by: Some("K".into()), ..CompactionPolicy::default() },
        std::time::Duration::from_millis(2),
    );
    group.bench_function("query-during-ingest-compacted", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).expect("runs").rows.len()))
    });
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    let parts_live = db.table("stream").expect("table").partitions().len();
    let stats = compactor.stop();
    eprintln!(
        "store_ingest: {parts_live} partition(s) live after churn; compactor \
         {} pass(es), {} compaction(s), {} conflict(s) lost",
        stats.passes, stats.compactions, stats.conflicts_lost
    );
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_cold_vs_warm,
    bench_pruned_scan,
    bench_encoded_store,
    bench_ingest_while_querying
);
criterion_main!(benches);
