//! Criterion benchmarks for the persistent micro-partition store: cold scans
//! (buffer cache cleared every iteration, so `bytes_scanned` is real file
//! I/O) versus warm scans (cache resident, zero file bytes), plus the
//! pruning payoff — a selective scan that reads a fraction of the table's
//! blocks. The CI persistence job uploads this output as the cold/warm
//! comparison artifact.

use std::sync::Arc;

use adl::generator::AdlConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use snowdb::Database;

const EVENTS: usize = 4096;
const PARTITION_ROWS: usize = 256;

/// The staged ADL dataset split into many partitions so zone-map pruning has
/// something to prune (the default 4096-row partitions would hold the whole
/// benchmark table in one file).
fn staged_db() -> Arc<Database> {
    let db = Database::new();
    adl::generator::load_into(
        &db,
        "hep",
        &AdlConfig { events: EVENTS, seed: 42, partition_rows: PARTITION_ROWS },
    );
    Arc::new(db)
}

/// An on-disk ADL database in a scratch directory, reopened so every
/// partition is disk-backed.
fn disk_db(tag: &str) -> (Arc<Database>, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("snowq-bench-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    staged_db().persist_to(&dir).expect("persist");
    let db = Arc::new(Database::open(&dir).expect("reopen"));
    (db, dir)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let (db, dir) = disk_db("scan");
    let store = db.store().expect("store attached");
    let sql = "SELECT SUM(MET:PT) FROM hep";

    let mut group = c.benchmark_group("store_scan");
    group.sample_size(20);
    group.bench_function("cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(db.query(sql).expect("runs").profile.scan.bytes_scanned)
        })
    });
    // One priming run, then steady-state cache hits.
    db.query(sql).expect("primes");
    group.bench_function("warm", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).expect("runs").profile.scan.bytes_scanned))
    });
    // In-memory baseline: the same data without the store.
    let mem = staged_db();
    group.bench_function("memory", |b| {
        b.iter(|| std::hint::black_box(mem.query(sql).expect("runs").rows.len()))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_pruned_scan(c: &mut Criterion) {
    let (db, dir) = disk_db("prune");
    let store = db.store().expect("store attached");
    // EVENT is monotone across partitions, so the predicate prunes most of
    // the table; cold iterations therefore measure selective file I/O.
    let sql = format!("SELECT COUNT(*) FROM hep WHERE EVENT >= {}", EVENTS - EVENTS / 16);

    let mut group = c.benchmark_group("store_pruning");
    group.sample_size(20);
    group.bench_function("selective-cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(db.query(&sql).expect("runs").profile.scan.bytes_scanned)
        })
    });
    group.bench_function("full-cold", |b| {
        b.iter(|| {
            store.cache().clear();
            std::hint::black_box(
                db.query("SELECT COUNT(MET:PT) FROM hep").expect("runs").profile.scan.bytes_scanned,
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_cold_vs_warm, bench_pruned_scan);
criterion_main!(benches);
