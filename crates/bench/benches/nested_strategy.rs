//! Criterion benchmark backing the §IV-C ablation: flag-column vs JOIN-based
//! nested-query handling on the nested-query-heavy ADL queries.

use criterion::{criterion_group, criterion_main, Criterion};
use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowpark::Session;

fn bench_strategies(c: &mut Criterion) {
    let db = bench::experiments::adl_db(2048);
    let mut group = c.benchmark_group("nested_strategy");
    group.sample_size(10);
    for q in adl::queries::queries("hep") {
        if !["q4", "q5", "q6", "q7", "q8"].contains(&q.id) {
            continue;
        }
        for (label, strategy) in [
            ("flag", NestedStrategy::FlagColumn),
            ("join", NestedStrategy::JoinBased),
        ] {
            let mut t = Translator::new(Session::new(db.clone()), strategy);
            let sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
            group.bench_function(format!("{}-{label}", q.id), |b| {
                b.iter(|| std::hint::black_box(db.query(&sql).expect("runs").rows.len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
