//! Criterion benchmarks backing Figs. 7–9: per-query compile time, execution
//! time, and end-to-end time of the generated vs handwritten SQL on a reduced
//! ADL dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use jsoniq_core::snowflake::{NestedStrategy, Translator};
use snowpark::Session;

const EVENTS: usize = 2048;

fn bench_compile(c: &mut Criterion) {
    let db = bench::experiments::adl_db(EVENTS);
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    for q in adl::queries::queries("hep") {
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        let mut t = Translator::new(Session::new(db.clone()), strategy);
        let gen_sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
        group.bench_function(format!("{}-generated", q.id), |b| {
            b.iter(|| std::hint::black_box(db.compile(&gen_sql).expect("compiles").node_count()))
        });
        group.bench_function(format!("{}-handwritten", q.id), |b| {
            b.iter(|| {
                std::hint::black_box(db.compile(&q.handwritten_sql).expect("compiles").node_count())
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let db = bench::experiments::adl_db(EVENTS);
    let mut group = c.benchmark_group("endtoend");
    group.sample_size(10);
    for q in adl::queries::queries("hep") {
        let strategy = if q.join_based {
            NestedStrategy::JoinBased
        } else {
            NestedStrategy::FlagColumn
        };
        let mut t = Translator::new(Session::new(db.clone()), strategy);
        let gen_sql = t.translate(&q.jsoniq).expect("translates").sql().to_string();
        group.bench_function(format!("{}-generated", q.id), |b| {
            b.iter(|| std::hint::black_box(db.query(&gen_sql).expect("runs").rows.len()))
        });
        group.bench_function(format!("{}-handwritten", q.id), |b| {
            b.iter(|| std::hint::black_box(db.query(&q.handwritten_sql).expect("runs").rows.len()))
        });
    }
    group.finish();
}

/// Serial vs morsel-parallel executor on the handwritten ADL queries. With
/// `threads = 1` the pipeline runs fully inline (no threads spawned), so the
/// delta isolates the work-stealing dispatcher plus batch plumbing overhead;
/// speedups require `available_parallelism() > 1`.
fn bench_executor_threads(c: &mut Criterion) {
    let db = bench::experiments::adl_db(EVENTS);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    for q in adl::queries::queries("hep") {
        group.bench_function(format!("{}-serial", q.id), |b| {
            db.set_threads(Some(1));
            b.iter(|| std::hint::black_box(db.query(&q.handwritten_sql).expect("runs").rows.len()))
        });
        group.bench_function(format!("{}-parallel-{threads}t", q.id), |b| {
            db.set_threads(Some(threads));
            b.iter(|| std::hint::black_box(db.query(&q.handwritten_sql).expect("runs").rows.len()))
        });
        db.set_threads(None);
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_end_to_end, bench_executor_threads);
criterion_main!(benches);
