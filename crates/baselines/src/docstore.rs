//! Document-store engine: the AsterixDB stand-in.
//!
//! The defining architectural property captured here is *parse-on-scan*:
//! collections are stored as serialized JSON text, and every query pays the
//! cost of parsing each document before evaluating the query tree over it row
//! at a time — the document-centric design the paper contrasts against
//! Snowflake's transparently columnarized `VARIANT` storage (§II-B, §VI).

use std::collections::HashMap;
use std::time::Instant;

use jsoniq_core::ast::{Item, JResult, JsoniqError};
use jsoniq_core::interp::{CollectionProvider, Interpreter};
use snowdb::variant::{parse_json, to_json, Object};
use snowdb::{Database, Variant};

/// A document store holding serialized JSON collections.
#[derive(Default)]
pub struct DocStore {
    collections: HashMap<String, Vec<String>>,
}

impl DocStore {
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// Loads a collection from items, serializing each to JSON text.
    pub fn load<I>(&mut self, name: &str, items: I)
    where
        I: IntoIterator<Item = Item>,
    {
        let docs = items.into_iter().map(|v| to_json(&v)).collect();
        self.collections.insert(name.to_string(), docs);
    }

    /// Copies a `snowdb` table into the store: each row becomes one JSON
    /// document keyed by column names, so all engines see identical data.
    pub fn load_from_table(&mut self, db: &Database, table: &str) {
        let t = db.table(table).unwrap_or_else(|| panic!("unknown table {table}"));
        let names: Vec<&str> = t.schema().iter().map(|c| c.name.as_str()).collect();
        let mut docs = Vec::with_capacity(t.row_count());
        for part in t.partitions() {
            let mem = part.to_mem().unwrap_or_else(|e| panic!("table {table}: {e}"));
            for r in 0..mem.row_count() {
                let mut obj = Object::with_capacity(names.len());
                for (i, n) in names.iter().enumerate() {
                    obj.insert(*n, mem.column(i).get(r));
                }
                docs.push(to_json(&Variant::object(obj)));
            }
        }
        self.collections.insert(table.to_ascii_uppercase(), docs);
    }

    /// Total serialized bytes of a collection.
    pub fn collection_bytes(&self, name: &str) -> u64 {
        self.collections
            .get(&name.to_ascii_uppercase())
            .map(|docs| docs.iter().map(|d| d.len() as u64).sum())
            .unwrap_or(0)
    }

    /// Number of documents.
    pub fn len(&self, name: &str) -> usize {
        self.collections.get(&name.to_ascii_uppercase()).map_or(0, Vec::len)
    }

    /// Runs a JSONiq query over the store, parsing documents on the scan path.
    pub fn query(&self, src: &str) -> JResult<Vec<Item>> {
        Interpreter::new(&ParseOnScan { store: self }).eval_query(src)
    }

    /// Like [`DocStore::query`] with a wall-clock deadline (the benchmark
    /// cutoff of the paper's §V-A).
    pub fn query_with_deadline(&self, src: &str, deadline: Instant) -> JResult<Vec<Item>> {
        Interpreter::with_deadline(&ParseOnScan { store: self }, deadline).eval_query(src)
    }
}

struct ParseOnScan<'a> {
    store: &'a DocStore,
}

impl CollectionProvider for ParseOnScan<'_> {
    fn collection(&self, name: &str) -> JResult<Vec<Item>> {
        let docs = self
            .store
            .collections
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| JsoniqError::Dynamic(format!("unknown collection '{name}'")))?;
        // The scan path parses every document — the cost that separates a
        // document store from a columnar engine.
        docs.iter()
            .map(|d| parse_json(d).map_err(|e| JsoniqError::Dynamic(e.to_string())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_query() {
        let mut ds = DocStore::new();
        ds.load(
            "T",
            (0..10).map(|i| {
                let mut o = Object::new();
                o.insert("X", Variant::Int(i));
                Variant::object(o)
            }),
        );
        let r = ds.query(r#"for $t in collection("T") where $t.X ge 8 return $t.X"#).unwrap();
        assert_eq!(r, vec![Variant::Int(8), Variant::Int(9)]);
    }

    #[test]
    fn mirrors_database_table() {
        use snowdb::storage::{ColumnDef, ColumnType};
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Int)],
            (0..5).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        let mut ds = DocStore::new();
        ds.load_from_table(&db, "T");
        assert_eq!(ds.len("T"), 5);
        assert!(ds.collection_bytes("T") > 0);
        let r = ds.query(r#"count(for $t in collection("T") return $t)"#).unwrap();
        assert_eq!(r, vec![Variant::Int(5)]);
    }

    #[test]
    fn deadline_aborts_long_queries() {
        let mut ds = DocStore::new();
        ds.load(
            "big",
            (0..2000).map(|i| {
                let mut o = Object::new();
                o.insert("X", Variant::Int(i));
                Variant::object(o)
            }),
        );
        // Quadratic self-join query with an already-expired deadline.
        let res = ds.query_with_deadline(
            r#"count(for $a in collection("big") for $b in collection("big")
                     where $a.X eq $b.X return 1)"#,
            Instant::now(),
        );
        assert!(matches!(res, Err(JsoniqError::Timeout)));
    }
}
