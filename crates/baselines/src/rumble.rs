//! RumbleDB-like runner: the paper's RumbleDB-on-Spark stand-in.
//!
//! Executes the same iterator tree as the translation layer, but locally and
//! row at a time, with collections pre-parsed into memory (the analogue of
//! Parquet-backed Spark RDDs: no parse cost on the scan path, but per-row
//! interpretation and full materialization between FLWOR clauses — the
//! overheads §V-D attributes to the Spark backend's UDF fallback).

use std::collections::HashMap;
use std::time::Instant;

use jsoniq_core::ast::{Item, JResult, JsoniqError};
use jsoniq_core::interp::{CollectionProvider, Interpreter};
use snowdb::variant::Object;
use snowdb::{Database, Variant};

/// In-memory, pre-parsed collections plus the interpreting executor.
#[derive(Default)]
pub struct RumbleRunner {
    collections: HashMap<String, Vec<Item>>,
}

impl RumbleRunner {
    pub fn new() -> RumbleRunner {
        RumbleRunner::default()
    }

    /// Loads a collection of pre-parsed items.
    pub fn load<I>(&mut self, name: &str, items: I)
    where
        I: IntoIterator<Item = Item>,
    {
        self.collections.insert(name.to_ascii_uppercase(), items.into_iter().collect());
    }

    /// Copies a `snowdb` table (one object per row) so all engines see
    /// identical data.
    pub fn load_from_table(&mut self, db: &Database, table: &str) {
        let t = db.table(table).unwrap_or_else(|| panic!("unknown table {table}"));
        let names: Vec<&str> = t.schema().iter().map(|c| c.name.as_str()).collect();
        let mut items = Vec::with_capacity(t.row_count());
        for part in t.partitions() {
            let mem = part.to_mem().unwrap_or_else(|e| panic!("table {table}: {e}"));
            for r in 0..mem.row_count() {
                let mut obj = Object::with_capacity(names.len());
                for (i, n) in names.iter().enumerate() {
                    obj.insert(*n, mem.column(i).get(r));
                }
                items.push(Variant::object(obj));
            }
        }
        self.collections.insert(table.to_ascii_uppercase(), items);
    }

    /// Runs a JSONiq query with the Spark-boundary simulation on: every value
    /// bound by a FLWOR clause crosses a serialization boundary, as it does
    /// between RumbleDB's Java iterators and Spark (paper §III-A3).
    pub fn query(&self, src: &str) -> JResult<Vec<Item>> {
        Interpreter::new(&Mem { runner: self })
            .with_serialization_boundaries(true)
            .eval_query(src)
    }

    /// Runs with a wall-clock cutoff (paper §V-A imposes a 10-minute limit).
    pub fn query_with_deadline(&self, src: &str, deadline: Instant) -> JResult<Vec<Item>> {
        Interpreter::with_deadline(&Mem { runner: self }, deadline)
            .with_serialization_boundaries(true)
            .eval_query(src)
    }
}

struct Mem<'a> {
    runner: &'a RumbleRunner,
}

impl CollectionProvider for Mem<'_> {
    fn collection(&self, name: &str) -> JResult<Vec<Item>> {
        self.runner
            .collections
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| JsoniqError::Dynamic(format!("unknown collection '{name}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_queries_over_loaded_collections() {
        let mut r = RumbleRunner::new();
        r.load("nums", (1..=4).map(Variant::Int));
        let out = r
            .query(r#"sum(for $x in collection("nums") where $x mod 2 eq 0 return $x)"#)
            .unwrap();
        assert_eq!(out, vec![Variant::Int(6)]);
    }

    #[test]
    fn matches_docstore_results() {
        use crate::docstore::DocStore;
        use snowdb::storage::{ColumnDef, ColumnType};
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Int)],
            (0..20).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        let mut rb = RumbleRunner::new();
        rb.load_from_table(&db, "T");
        let mut ds = DocStore::new();
        ds.load_from_table(&db, "T");
        let q = r#"for $t in collection("T") where $t.A lt 3 return $t.A"#;
        assert_eq!(rb.query(q).unwrap(), ds.query(q).unwrap());
    }
}
