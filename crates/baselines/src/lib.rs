//! `baselines` — comparator engines for the paper's Fig. 9/10 evaluation:
//! a document-store engine (AsterixDB stand-in) that re-parses serialized JSON
//! documents on every scan, and a RumbleDB-like runner that executes the JSONiq
//! iterator tree row at a time.

pub mod docstore;
pub mod rumble;

pub use docstore::DocStore;
pub use rumble::RumbleRunner;
