//! Property tests for the dataframe layer: every SQL string the API composes
//! must be accepted by the engine's parser, and identifier/string quoting must
//! round-trip arbitrary content.

use proptest::prelude::*;
use snowpark::functions as f;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Identifier quoting survives embedded quotes and unicode.
    #[test]
    fn column_references_always_parse(name in "[a-zA-Z\"'%_ \u{e9}]{1,12}") {
        let sql = format!("SELECT {} FROM T", f::col(&name).sql());
        // The reference must lex as exactly one identifier token.
        let toks = snowdb::sql::lexer::tokenize(f::col(&name).sql()).unwrap();
        prop_assert_eq!(toks.len(), 2, "ident + EOF for {:?}", name);
        let _ = sql;
    }

    /// String literals survive arbitrary content.
    #[test]
    fn string_literals_always_lex(value in "\\PC{0,20}") {
        let toks = snowdb::sql::lexer::tokenize(f::lit_s(&value).sql());
        // Characters the SQL lexer cannot represent outside strings are fine
        // inside one; the literal must come back intact.
        let toks = toks.unwrap();
        match &toks[0] {
            snowdb::sql::lexer::Token::Str(s) => prop_assert_eq!(s, &value),
            other => prop_assert!(false, "expected string, got {:?}", other),
        }
    }

    /// Composed float literals parse back to the same value.
    #[test]
    fn float_literals_roundtrip(v in -1e12f64..1e12) {
        let sql = f::lit_f(v).sql().to_string();
        let toks = snowdb::sql::lexer::tokenize(&sql).unwrap();
        match &toks[..2] {
            [snowdb::sql::lexer::Token::Float(x), _] => {
                prop_assert_eq!(*x, v);
            }
            // Negative values lex as '-' + number.
            [snowdb::sql::lexer::Token::Sym("-"), snowdb::sql::lexer::Token::Float(x)] => {
                prop_assert_eq!(-*x, v);
            }
            other => prop_assert!(false, "unexpected tokens {:?} for {}", other, sql),
        }
    }

    /// Arbitrary nesting of column operators still yields parseable SQL.
    #[test]
    fn operator_compositions_parse(depth in 1usize..6, seed in 0u64..1000) {
        let mut c = f::col("A");
        let mut x = seed;
        for _ in 0..depth {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            c = match x % 7 {
                0 => c.add(&f::lit((x % 100) as i64)),
                1 => c.mul(&f::col("B")),
                2 => c.gt(&f::lit(5)).and(&f::col("C").is_not_null()),
                3 => f::iff(&c.eq(&f::lit(1)), &f::lit(2), &c),
                4 => c.subfield("F"),
                5 => f::abs(&c),
                _ => c.cast("DOUBLE"),
            };
        }
        let sql = format!("SELECT {} FROM T", c.sql());
        snowdb::sql::parse_query(&sql).unwrap();
    }
}
