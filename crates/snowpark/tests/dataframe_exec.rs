//! Executes dataframe pipelines end to end against an embedded engine,
//! including the paper's Fig. 2 example.

use std::sync::Arc;

use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::parse_json;
use snowdb::{Database, Variant};
use snowpark::functions as f;
use snowpark::{JoinType, Session, SortOrder};

fn orders_session() -> Session {
    let db = Database::new();
    db.load_table(
        "orders",
        vec![
            ColumnDef::new("O_TOTALPRICE", ColumnType::Float),
            ColumnDef::new("O_CLERK", ColumnType::Str),
        ],
        vec![
            vec![Variant::Float(95000.0), Variant::str("clerk1")],
            vec![Variant::Float(100000.0), Variant::str("clerk1")],
            vec![Variant::Float(110000.0), Variant::str("clerk2")],
            vec![Variant::Float(50000.0), Variant::str("clerk3")],
        ],
    )
    .unwrap();
    Session::new(Arc::new(db))
}

#[test]
fn fig2_snowpark_example() {
    // The paper's Fig. 2a pipeline, expressed with this crate's API.
    let session = orders_session();
    let df = session.table("orders");
    let lower = f::lit(90000);
    let upper = f::lit(120000);
    let total_price = f::col("O_TOTALPRICE");
    let clerks = f::col("O_CLERK");
    let out = df
        .where_(&total_price.between(&lower, &upper))
        .select([f::count_distinct(&clerks)])
        .collect()
        .unwrap();
    assert_eq!(out.rows[0][0], Variant::Int(2));
}

#[test]
fn lazy_composition_is_a_single_query() {
    let session = orders_session();
    let df = session
        .table("orders")
        .where_(&f::col("O_TOTALPRICE").gt(&f::lit(60000)))
        .select([f::col("O_CLERK").alias("C")])
        .distinct()
        .sort(&[(f::col("C"), SortOrder::Asc)]);
    // Still no execution; the SQL is one self-contained statement.
    assert!(df.sql().starts_with("SELECT"));
    let res = df.collect().unwrap();
    assert_eq!(res.rows.len(), 2);
    assert_eq!(res.rows[0][0], Variant::str("clerk1"));
}

#[test]
fn flatten_group_by_reaggregate() {
    let db = Database::new();
    db.load_table(
        "events",
        vec![
            ColumnDef::new("EVENT", ColumnType::Int),
            ColumnDef::new("JET", ColumnType::Variant),
        ],
        vec![
            vec![Variant::Int(1), parse_json(r#"[{"PT": 10.0}, {"PT": 50.0}]"#).unwrap()],
            vec![Variant::Int(2), parse_json(r#"[]"#).unwrap()],
        ],
    )
    .unwrap();
    let session = Session::new(Arc::new(db));
    let df = session
        .table("events")
        .with_column("RID", &f::seq8())
        .flatten(&f::col("JET"), "F", true)
        .group_by(&[f::col("RID")])
        .agg([
            f::any_value(&f::col("EVENT")).alias("EVENT"),
            f::array_agg(&f::col_of("F", "VALUE").subfield("PT")).alias("PTS"),
        ])
        .sort(&[(f::col("EVENT"), SortOrder::Asc)]);
    let res = df.collect().unwrap();
    assert_eq!(res.rows.len(), 2);
    // Event 1 keeps both jets; event 2 (empty array, outer flatten) gets [].
    assert_eq!(
        res.rows[0][2],
        Variant::array(vec![Variant::Float(10.0), Variant::Float(50.0)])
    );
    assert_eq!(res.rows[1][2], Variant::array(vec![]));
}

#[test]
fn join_with_aliases() {
    let session = orders_session();
    let left = session.table("orders").select([
        f::col("O_CLERK").alias("CK"),
        f::col("O_TOTALPRICE").alias("P"),
    ]);
    let right = session
        .table("orders")
        .group_by(&[f::col("O_CLERK")])
        .agg([f::sum(&f::col("O_TOTALPRICE")).alias("TOTAL")]);
    let joined = left.join(
        &right,
        JoinType::Inner,
        "L",
        "R",
        Some(&f::col_of("L", "CK").eq(&f::col_of("R", "O_CLERK"))),
    );
    let res = joined.collect().unwrap();
    assert_eq!(res.rows.len(), 4);
}

#[test]
fn union_all_and_limit() {
    let session = orders_session();
    let a = session.table("orders").select([f::col("O_CLERK")]);
    let b = session.table("orders").select([f::col("O_CLERK")]);
    let res = a.union_all(&b).limit(5).collect().unwrap();
    assert_eq!(res.rows.len(), 5);
}

#[test]
fn count_convenience() {
    let session = orders_session();
    assert_eq!(session.table("orders").count().unwrap(), 4);
}

#[test]
fn drop_columns_excludes() {
    let session = orders_session();
    let res = session.table("orders").drop_columns(&["O_TOTALPRICE"]).collect().unwrap();
    assert_eq!(res.columns, vec!["O_CLERK"]);
}

#[test]
fn session_parameters_govern_dataframe_execution() {
    let session = orders_session();
    // An impossibly small memory budget must trip a typed ResourceExhausted
    // on the next collect; clearing it restores execution.
    session.set_parameter("STATEMENT_MEMORY_LIMIT", 1).unwrap();
    let err = session.table("orders").count().unwrap_err();
    assert!(
        matches!(err, snowdb::SnowError::ResourceExhausted { .. }),
        "expected ResourceExhausted, got {err:?}"
    );
    session.unset_parameter("STATEMENT_MEMORY_LIMIT").unwrap();
    assert_eq!(session.table("orders").count().unwrap(), 4);
    // Unknown parameters are rejected, mirroring Snowflake.
    assert!(session.set_parameter("NOT_A_PARAMETER", 1).is_err());
}

#[test]
fn session_async_execution_returns_a_cancellable_handle() {
    let session = orders_session();
    let handle = session.execute_async("SELECT COUNT(*) FROM orders");
    let result = handle.join().unwrap();
    assert_eq!(result.rows[0][0], Variant::Int(4));
}
