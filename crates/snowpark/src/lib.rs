//! `snowpark` — a lazy, dataframe-based client library for `snowdb`.
//!
//! This crate mirrors the Snowpark API surface the paper's translation layer
//! uses (§II-D): a [`DataFrame`] logically encapsulates a fully executable SQL
//! query, a [`Col`] represents a partial sub-expression that is meaningless
//! until attached to a dataframe method, and [`functions`] holds the static
//! constructors (`col`, `lit`, `array_agg`, `object_construct`, ...).
//!
//! Every transformation is lazy and composes SQL *text*: calling
//! [`DataFrame::collect`] sends exactly one native SQL query to the engine, the
//! property the paper's whole design rests on (no UDFs, no round trips, full
//! optimizer visibility). The generated SQL is intentionally verbose nested
//! `SELECT`s, matching the shape shown in the paper's Fig. 2b.

mod column;
mod dataframe;
pub mod functions;
mod session;

pub use column::{Col, SortOrder};
pub use dataframe::{DataFrame, GroupedFrame, JoinType};
pub use session::Session;

/// Quotes an identifier for SQL emission.
pub(crate) fn quote_ident(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 2);
    s.push('"');
    for c in name.chars() {
        if c == '"' {
            s.push('"');
        }
        s.push(c);
    }
    s.push('"');
    s
}

/// Quotes a string literal for SQL emission.
pub(crate) fn quote_str(value: &str) -> String {
    let mut s = String::with_capacity(value.len() + 2);
    s.push('\'');
    for c in value.chars() {
        if c == '\'' {
            s.push('\'');
        }
        s.push(c);
    }
    s.push('\'');
    s
}
