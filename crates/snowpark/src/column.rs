//! [`Col`]: a partial SQL sub-expression.

use crate::{quote_ident, quote_str};

/// A column expression. Like Snowpark's `Column`, a `Col` is not bound to any
/// dataset: it is a fragment of SQL logic that becomes meaningful when plugged
/// into a [`crate::DataFrame`] method (paper §III-B1).
#[derive(Clone, Debug)]
pub struct Col {
    /// Rendered SQL for the expression (already parenthesized where needed).
    sql: String,
    /// Whether the expression is a plain (possibly qualified) column reference
    /// or a `:`-path rooted at one; such expressions can be extended with
    /// Snowflake path syntax instead of `GET` calls.
    pathable: bool,
}

/// Sort direction for [`crate::DataFrame::sort`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

impl Col {
    pub(crate) fn raw(sql: impl Into<String>) -> Col {
        Col { sql: sql.into(), pathable: false }
    }

    pub(crate) fn reference(sql: impl Into<String>) -> Col {
        Col { sql: sql.into(), pathable: true }
    }

    /// The rendered SQL of this expression.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    fn binary(&self, op: &str, rhs: &Col) -> Col {
        Col::raw(format!("({} {op} {})", self.sql, rhs.sql))
    }

    // ---- arithmetic ----

    pub fn add(&self, rhs: &Col) -> Col {
        self.binary("+", rhs)
    }

    pub fn sub(&self, rhs: &Col) -> Col {
        self.binary("-", rhs)
    }

    pub fn mul(&self, rhs: &Col) -> Col {
        self.binary("*", rhs)
    }

    pub fn div(&self, rhs: &Col) -> Col {
        self.binary("/", rhs)
    }

    pub fn rem(&self, rhs: &Col) -> Col {
        self.binary("%", rhs)
    }

    pub fn neg(&self) -> Col {
        Col::raw(format!("(- {})", self.sql))
    }

    // ---- comparison ----

    pub fn eq(&self, rhs: &Col) -> Col {
        self.binary("=", rhs)
    }

    pub fn neq(&self, rhs: &Col) -> Col {
        self.binary("<>", rhs)
    }

    pub fn lt(&self, rhs: &Col) -> Col {
        self.binary("<", rhs)
    }

    pub fn le(&self, rhs: &Col) -> Col {
        self.binary("<=", rhs)
    }

    pub fn gt(&self, rhs: &Col) -> Col {
        self.binary(">", rhs)
    }

    pub fn ge(&self, rhs: &Col) -> Col {
        self.binary(">=", rhs)
    }

    pub fn between(&self, low: &Col, high: &Col) -> Col {
        Col::raw(format!("({} BETWEEN {} AND {})", self.sql, low.sql, high.sql))
    }

    pub fn in_list(&self, items: &[Col]) -> Col {
        let list: Vec<&str> = items.iter().map(|c| c.sql()).collect();
        Col::raw(format!("({} IN ({}))", self.sql, list.join(", ")))
    }

    pub fn is_null(&self) -> Col {
        Col::raw(format!("({} IS NULL)", self.sql))
    }

    pub fn is_not_null(&self) -> Col {
        Col::raw(format!("({} IS NOT NULL)", self.sql))
    }

    // ---- boolean ----

    pub fn and(&self, rhs: &Col) -> Col {
        self.binary("AND", rhs)
    }

    pub fn or(&self, rhs: &Col) -> Col {
        self.binary("OR", rhs)
    }

    pub fn not(&self) -> Col {
        Col::raw(format!("(NOT {})", self.sql))
    }

    // ---- nested data access ----

    /// Accesses a sub-field of a variant value (paper §IV-A).
    ///
    /// Emits Snowflake `:`/`.` path syntax when rooted at a column reference
    /// and a `GET` call otherwise.
    pub fn subfield(&self, name: &str) -> Col {
        if self.pathable {
            let sep = if self.sql.contains(':') { "." } else { ":" };
            Col { sql: format!("{}{sep}{}", self.sql, quote_ident(name)), pathable: true }
        } else {
            Col::raw(format!("GET({}, {})", self.sql, quote_str(name)))
        }
    }

    /// Accesses an array element by position.
    pub fn element(&self, index: i64) -> Col {
        if self.pathable && self.sql.contains(':') {
            Col { sql: format!("{}[{index}]", self.sql), pathable: true }
        } else {
            Col::raw(format!("GET({}, {index})", self.sql))
        }
    }

    // ---- misc ----

    /// `expr :: TYPE`
    pub fn cast(&self, ty: &str) -> Col {
        Col::raw(format!("({} :: {ty})", self.sql))
    }

    /// Renders `expr AS alias` for select lists.
    pub fn alias(&self, name: &str) -> AliasedCol {
        AliasedCol { col: self.clone(), alias: Some(name.to_string()) }
    }
}

/// A select-list item: expression plus optional alias.
#[derive(Clone, Debug)]
pub struct AliasedCol {
    pub(crate) col: Col,
    pub(crate) alias: Option<String>,
}

impl AliasedCol {
    pub(crate) fn render(&self) -> String {
        match &self.alias {
            Some(a) => format!("{} AS {}", self.col.sql(), quote_ident(a)),
            None => self.col.sql().to_string(),
        }
    }
}

impl From<Col> for AliasedCol {
    fn from(col: Col) -> AliasedCol {
        AliasedCol { col, alias: None }
    }
}

impl From<&Col> for AliasedCol {
    fn from(col: &Col) -> AliasedCol {
        AliasedCol { col: col.clone(), alias: None }
    }
}

#[cfg(test)]
mod tests {
    use crate::functions as f;

    #[test]
    fn operators_parenthesize() {
        let e = f::col("A").add(&f::col("B")).mul(&f::lit(2));
        assert_eq!(e.sql(), r#"(("A" + "B") * 2)"#);
    }

    #[test]
    fn subfield_uses_path_syntax_on_references() {
        let e = f::col("V").subfield("MUON").element(0).subfield("PT");
        assert_eq!(e.sql(), r#""V":"MUON"[0]."PT""#);
    }

    #[test]
    fn subfield_falls_back_to_get() {
        let e = f::lit(1).add(&f::lit(2)).subfield("X");
        assert_eq!(e.sql(), "GET((1 + 2), 'X')");
    }

    #[test]
    fn comparison_and_logic() {
        let e = f::col("A").ge(&f::lit(1)).and(&f::col("B").is_not_null().not());
        assert_eq!(e.sql(), r#"(("A" >= 1) AND (NOT ("B" IS NOT NULL)))"#);
    }

    #[test]
    fn cast_and_between() {
        let e = f::col("X").cast("INT").between(&f::lit(1), &f::lit(5));
        assert_eq!(e.sql(), r#"(("X" :: INT) BETWEEN 1 AND 5)"#);
    }
}
