//! Static column constructors, mirroring Snowpark's `Functions` class (Table I
//! of the paper).

use crate::column::Col;
use crate::{quote_ident, quote_str};

/// Reference to a column by name.
pub fn col(name: &str) -> Col {
    Col::reference(quote_ident(name))
}

/// Reference to a column qualified by a relation alias (`t."X"`).
pub fn col_of(relation: &str, name: &str) -> Col {
    Col::reference(format!("{}.{}", quote_ident(relation), quote_ident(name)))
}

/// Integer literal.
pub fn lit(v: i64) -> Col {
    Col::raw(v.to_string())
}

/// Double literal.
pub fn lit_f(v: f64) -> Col {
    if v.fract() == 0.0 && v.is_finite() {
        Col::raw(format!("{v:.1}"))
    } else {
        Col::raw(format!("{v}"))
    }
}

/// String literal.
pub fn lit_s(v: &str) -> Col {
    Col::raw(quote_str(v))
}

/// Boolean literal.
pub fn lit_b(v: bool) -> Col {
    Col::raw(if v { "TRUE" } else { "FALSE" })
}

/// SQL NULL.
pub fn null() -> Col {
    Col::raw("NULL")
}

fn call(name: &str, args: &[&Col]) -> Col {
    let rendered: Vec<&str> = args.iter().map(|c| c.sql()).collect();
    Col::raw(format!("{name}({})", rendered.join(", ")))
}

macro_rules! fn1 {
    ($(#[$doc:meta])* $rust:ident, $sql:literal) => {
        $(#[$doc])*
        pub fn $rust(x: &Col) -> Col {
            call($sql, &[x])
        }
    };
}

macro_rules! fn2 {
    ($(#[$doc:meta])* $rust:ident, $sql:literal) => {
        $(#[$doc])*
        pub fn $rust(a: &Col, b: &Col) -> Col {
            call($sql, &[a, b])
        }
    };
}

// ---- scalar functions ----
fn1!(abs, "ABS");
fn1!(sqrt, "SQRT");
fn1!(exp, "EXP");
fn1!(ln, "LN");
fn1!(floor, "FLOOR");
fn1!(ceil, "CEIL");
fn1!(round, "ROUND");
fn1!(sign, "SIGN");
fn1!(sin, "SIN");
fn1!(cos, "COS");
fn1!(tan, "TAN");
fn1!(asin, "ASIN");
fn1!(acos, "ACOS");
fn1!(atan, "ATAN");
fn1!(sinh, "SINH");
fn1!(cosh, "COSH");
fn1!(tanh, "TANH");
fn1!(to_double, "TO_DOUBLE");
fn1!(upper, "UPPER");
fn1!(lower, "LOWER");
fn1!(length, "LENGTH");
fn1!(typeof_, "TYPEOF");
fn2!(pow, "POWER");
fn2!(atan2, "ATAN2");
fn2!(nvl, "NVL");
fn2!(nullif, "NULLIF");
fn2!(
    /// `ARRAY_CAT(a, b)` — array concatenation.
    array_cat,
    "ARRAY_CAT"
);
fn2!(
    /// `ARRAY_CONTAINS(value, array)`.
    array_contains,
    "ARRAY_CONTAINS"
);
fn2!(get, "GET");
fn1!(array_size, "ARRAY_SIZE");

/// `ARRAY_FILTER(arr, field_or_null, op, literal)` — the engine's restricted
/// native array filter (paper §VII-B future work).
pub fn array_filter(arr: &Col, field: &Col, op: &Col, literal: &Col) -> Col {
    call("ARRAY_FILTER", &[arr, field, op, literal])
}

/// `PI()`
pub fn pi() -> Col {
    Col::raw("PI()")
}

/// `SEQ8()` — per-query unique row number; the translation layer uses it to tag
/// rows with identifiers before entering nested queries (paper §IV-B).
pub fn seq8() -> Col {
    Col::raw("SEQ8()")
}

/// `IFF(cond, then, else)`
pub fn iff(cond: &Col, then: &Col, otherwise: &Col) -> Col {
    call("IFF", &[cond, then, otherwise])
}

/// `COALESCE(...)`
pub fn coalesce(args: &[&Col]) -> Col {
    call("COALESCE", args)
}

/// `GREATEST(...)`
pub fn greatest(args: &[&Col]) -> Col {
    call("GREATEST", args)
}

/// `LEAST(...)`
pub fn least(args: &[&Col]) -> Col {
    call("LEAST", args)
}

/// `OBJECT_CONSTRUCT('k1', v1, 'k2', v2, ...)` with keep-null semantics.
pub fn object_construct(pairs: &[(&str, Col)]) -> Col {
    let mut parts = Vec::with_capacity(pairs.len() * 2);
    for (k, v) in pairs {
        parts.push(quote_str(k));
        parts.push(v.sql().to_string());
    }
    Col::raw(format!("OBJECT_CONSTRUCT({})", parts.join(", ")))
}

/// `ARRAY_CONSTRUCT(...)`
pub fn array_construct(items: &[&Col]) -> Col {
    call("ARRAY_CONSTRUCT", items)
}

// ---- aggregates ----
fn1!(sum, "SUM");
fn1!(min, "MIN");
fn1!(max, "MAX");
fn1!(avg, "AVG");
fn1!(array_agg, "ARRAY_AGG");
fn1!(any_value, "ANY_VALUE");
fn1!(booland_agg, "BOOLAND_AGG");
fn1!(boolor_agg, "BOOLOR_AGG");
fn1!(count, "COUNT");

/// `COUNT(*)`
pub fn count_star() -> Col {
    Col::raw("COUNT(*)")
}

/// `COUNT(DISTINCT x)`
pub fn count_distinct(x: &Col) -> Col {
    Col::raw(format!("COUNT(DISTINCT {})", x.sql()))
}

/// `CONCAT(a, b)`
pub fn concat2(a: &Col, b: &Col) -> Col {
    call("CONCAT", &[a, b])
}

/// `SUBSTR(s, start)` (1-based).
pub fn substr2(s: &Col, start: &Col) -> Col {
    call("SUBSTR", &[s, start])
}

/// `SUBSTR(s, start, len)` (1-based).
pub fn substr3(s: &Col, start: &Col, len: &Col) -> Col {
    call("SUBSTR", &[s, start, len])
}

/// Reference to the `VALUE` column produced by a flatten with the given alias.
pub fn flatten_value(alias: &str) -> Col {
    col_of(alias, "VALUE")
}

/// Reference to the `INDEX` column produced by a flatten with the given alias.
pub fn flatten_index(alias: &str) -> Col {
    col_of(alias, "INDEX")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_calls() {
        assert_eq!(abs(&col("X")).sql(), r#"ABS("X")"#);
        assert_eq!(count_star().sql(), "COUNT(*)");
        assert_eq!(count_distinct(&col("C")).sql(), r#"COUNT(DISTINCT "C")"#);
        assert_eq!(
            object_construct(&[("A", lit(1)), ("B", lit_s("x"))]).sql(),
            "OBJECT_CONSTRUCT('A', 1, 'B', 'x')"
        );
    }

    #[test]
    fn literals_render() {
        assert_eq!(lit_f(2.0).sql(), "2.0");
        assert_eq!(lit_f(2.5).sql(), "2.5");
        assert_eq!(lit_s("it's").sql(), "'it''s'");
        assert_eq!(lit_b(false).sql(), "FALSE");
    }
}
