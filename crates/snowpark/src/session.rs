//! [`Session`]: the connection between dataframes and an engine.

use std::sync::Arc;

use snowdb::Database;

use crate::dataframe::DataFrame;
use crate::quote_ident;

/// A handle to a `snowdb` database through which dataframes execute.
///
/// In the real Snowpark a session wraps a network connection to the Snowflake
/// service; here it wraps a shared handle to the embedded engine. Cloning is
/// cheap and all clones address the same catalog.
#[derive(Clone)]
pub struct Session {
    db: Arc<Database>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

impl Session {
    /// Opens a session over a database.
    pub fn new(db: Arc<Database>) -> Session {
        Session { db }
    }

    /// The underlying engine handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The engine's schema generation counter; bumps whenever a table is
    /// loaded, re-ingested, or dropped. Translation caches key on it so SQL
    /// bound to an old schema is never served after the schema changes.
    pub fn schema_generation(&self) -> u64 {
        self.db.schema_generation()
    }

    /// A dataframe scanning a whole table, like Snowpark's `session.table(...)`.
    /// Emits `SELECT * FROM (name)` — the same shape the paper's Fig. 2b shows.
    pub fn table(&self, name: &str) -> DataFrame {
        DataFrame::new(
            self.clone(),
            format!("SELECT * FROM ({})", quote_ident(&name.to_ascii_uppercase())),
        )
    }

    /// A dataframe over a raw SQL query.
    pub fn sql(&self, sql: &str) -> DataFrame {
        DataFrame::new(self.clone(), sql.to_string())
    }
}
