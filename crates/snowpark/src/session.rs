//! [`Session`]: the connection between dataframes and an engine.

use std::sync::Arc;

use snowdb::Database;

use crate::dataframe::DataFrame;
use crate::quote_ident;

/// A handle to a `snowdb` database through which dataframes execute.
///
/// In the real Snowpark a session wraps a network connection to the Snowflake
/// service; here it wraps a shared handle to the embedded engine. Cloning is
/// cheap and all clones address the same catalog.
#[derive(Clone)]
pub struct Session {
    db: Arc<Database>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

impl Session {
    /// Opens a session over a database.
    pub fn new(db: Arc<Database>) -> Session {
        Session { db }
    }

    /// Connects to a persistent on-disk database (opening or initializing the
    /// directory) — the embedded analogue of Snowpark's
    /// `Session.builder.configs(...).create()` connecting to a warehouse.
    /// Committed tables are available immediately; their data is read lazily,
    /// per column block, through the store's shared buffer cache.
    pub fn open(dir: impl AsRef<std::path::Path>) -> snowdb::Result<Session> {
        Ok(Session { db: Arc::new(Database::open(dir)?) })
    }

    /// The underlying engine handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The engine's schema generation counter; bumps whenever a table is
    /// loaded, re-ingested, or dropped. Translation caches key on it so SQL
    /// bound to an old schema is never served after the schema changes.
    pub fn schema_generation(&self) -> u64 {
        self.db.schema_generation()
    }

    /// A dataframe scanning a whole table, like Snowpark's `session.table(...)`.
    /// Emits `SELECT * FROM (name)` — the same shape the paper's Fig. 2b shows.
    pub fn table(&self, name: &str) -> DataFrame {
        DataFrame::new(
            self.clone(),
            format!("SELECT * FROM ({})", quote_ident(&name.to_ascii_uppercase())),
        )
    }

    /// A dataframe over a raw SQL query.
    pub fn sql(&self, sql: &str) -> DataFrame {
        DataFrame::new(self.clone(), sql.to_string())
    }

    /// Sets a session parameter, mirroring Snowpark's
    /// `session.sql("ALTER SESSION SET ...")` / connection parameter surface.
    /// Recognized: `STATEMENT_TIMEOUT_IN_SECONDS`, `STATEMENT_MEMORY_LIMIT`,
    /// `MAX_BYTES_SCANNED`; a value of `0` clears the limit. Every statement
    /// the session's dataframes execute afterwards runs under the resulting
    /// governor.
    pub fn set_parameter(&self, name: &str, value: u64) -> snowdb::Result<()> {
        self.db.set_session_param(name, value).map(|_| ())
    }

    /// Clears a session parameter previously set with
    /// [`Session::set_parameter`].
    pub fn unset_parameter(&self, name: &str) -> snowdb::Result<()> {
        self.db.unset_session_param(name).map(|_| ())
    }

    /// Launches `sql` on a worker thread under the session's parameters and
    /// returns a [`snowdb::QueryHandle`] that can be cancelled or joined —
    /// the embedded analogue of Snowpark's async job handle.
    pub fn execute_async(&self, sql: &str) -> snowdb::QueryHandle {
        self.db.execute_governed(sql)
    }
}
