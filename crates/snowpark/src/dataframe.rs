//! [`DataFrame`]: a lazy, composable SQL query.

use snowdb::error::Result;
use snowdb::QueryResult;

use crate::column::{AliasedCol, Col, SortOrder};
use crate::session::Session;
use crate::quote_ident;

/// Join kinds exposed by the dataframe API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
    Cross,
}

/// A logical query plan rendered as SQL text. All transformations are lazy and
/// return a new `DataFrame`; execution happens only on [`DataFrame::collect`]
/// (paper §II-D).
#[derive(Clone, Debug)]
pub struct DataFrame {
    session: Session,
    sql: String,
}

impl DataFrame {
    pub(crate) fn new(session: Session, sql: String) -> DataFrame {
        DataFrame { session, sql }
    }

    /// The single native SQL query this dataframe denotes.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    fn derive(&self, sql: String) -> DataFrame {
        DataFrame { session: self.session.clone(), sql }
    }

    /// Projects the given expressions.
    pub fn select<I, T>(&self, items: I) -> DataFrame
    where
        I: IntoIterator<Item = T>,
        T: Into<AliasedCol>,
    {
        let list: Vec<String> = items.into_iter().map(|c| c.into().render()).collect();
        self.derive(format!("SELECT {} FROM ({})", list.join(", "), self.sql))
    }

    /// Keeps all columns and appends one computed column.
    pub fn with_column(&self, name: &str, expr: &Col) -> DataFrame {
        self.derive(format!(
            "SELECT *, {} AS {} FROM ({})",
            expr.sql(),
            quote_ident(name),
            self.sql
        ))
    }

    /// Drops columns by name (Snowflake `* EXCLUDE`).
    pub fn drop_columns(&self, names: &[&str]) -> DataFrame {
        let list: Vec<String> = names.iter().map(|n| quote_ident(n)).collect();
        self.derive(format!("SELECT * EXCLUDE ({}) FROM ({})", list.join(", "), self.sql))
    }

    /// Filters rows by a boolean expression.
    pub fn filter(&self, cond: &Col) -> DataFrame {
        self.derive(format!("SELECT * FROM ({}) WHERE {}", self.sql, cond.sql()))
    }

    /// Alias for [`DataFrame::filter`], matching Snowpark's `where`.
    pub fn where_(&self, cond: &Col) -> DataFrame {
        self.filter(cond)
    }

    /// `LATERAL FLATTEN` over an expression (paper §IV-A): unboxes an array (or
    /// object), exposing `alias.VALUE`, `alias.INDEX`, `alias.KEY`, `alias.SEQ`,
    /// and `alias.THIS`, and replicating all other columns per produced row.
    pub fn flatten(&self, input: &Col, alias: &str, outer: bool) -> DataFrame {
        let outer_arg = if outer { ", OUTER => TRUE" } else { "" };
        self.derive(format!(
            "SELECT * FROM ({}), LATERAL FLATTEN(INPUT => {}{outer_arg}) AS {}",
            self.sql,
            input.sql(),
            quote_ident(alias),
        ))
    }

    /// Starts a grouped aggregation.
    pub fn group_by(&self, keys: &[Col]) -> GroupedFrame {
        GroupedFrame { df: self.clone(), keys: keys.to_vec() }
    }

    /// Global aggregation (no grouping keys).
    pub fn agg<I, T>(&self, aggs: I) -> DataFrame
    where
        I: IntoIterator<Item = T>,
        T: Into<AliasedCol>,
    {
        self.group_by(&[]).agg(aggs)
    }

    /// Joins two dataframes. Each side receives an explicit relation alias so
    /// the ON condition (and downstream projections) can disambiguate columns
    /// with [`crate::functions::col_of`].
    pub fn join(
        &self,
        other: &DataFrame,
        kind: JoinType,
        self_alias: &str,
        other_alias: &str,
        on: Option<&Col>,
    ) -> DataFrame {
        let kw = match kind {
            JoinType::Inner => "INNER JOIN",
            JoinType::LeftOuter => "LEFT OUTER JOIN",
            JoinType::Cross => "CROSS JOIN",
        };
        let on_sql = match on {
            Some(c) => format!(" ON {}", c.sql()),
            None => String::new(),
        };
        self.derive(format!(
            "SELECT * FROM ({}) AS {} {kw} ({}) AS {}{on_sql}",
            self.sql,
            quote_ident(self_alias),
            other.sql,
            quote_ident(other_alias),
        ))
    }

    /// Cross join without relation aliases: both sides' columns stay
    /// addressable by their own names. Used for JSONiq's successive
    /// `for`-over-collection clauses, whose join predicates arrive later as
    /// `where` conjuncts and are converted to hash-join conditions by the
    /// engine optimizer.
    pub fn cross_join(&self, other: &DataFrame) -> DataFrame {
        self.derive(format!("SELECT * FROM ({}) CROSS JOIN ({})", self.sql, other.sql))
    }

    /// Concatenates two dataframes (`UNION ALL`).
    pub fn union_all(&self, other: &DataFrame) -> DataFrame {
        self.derive(format!("({}) UNION ALL ({})", self.sql, other.sql))
    }

    /// Sorts by the given keys.
    pub fn sort(&self, keys: &[(Col, SortOrder)]) -> DataFrame {
        let list: Vec<String> = keys
            .iter()
            .map(|(c, o)| {
                format!("{} {}", c.sql(), if *o == SortOrder::Desc { "DESC" } else { "ASC" })
            })
            .collect();
        self.derive(format!("SELECT * FROM ({}) ORDER BY {}", self.sql, list.join(", ")))
    }

    /// Keeps at most `n` rows.
    pub fn limit(&self, n: u64) -> DataFrame {
        self.derive(format!("SELECT * FROM ({}) LIMIT {n}", self.sql))
    }

    /// Removes duplicate rows.
    pub fn distinct(&self) -> DataFrame {
        self.derive(format!("SELECT DISTINCT * FROM ({})", self.sql))
    }

    /// Triggers execution: ships the single SQL query to the engine and
    /// materializes the result.
    pub fn collect(&self) -> Result<QueryResult> {
        self.session.database().query(&self.sql)
    }

    /// Convenience: `COUNT(*)` over this dataframe.
    pub fn count(&self) -> Result<i64> {
        let res = self
            .session
            .database()
            .query(&format!("SELECT COUNT(*) FROM ({})", self.sql))?;
        Ok(res.scalar().and_then(snowdb::Variant::as_i64).unwrap_or(0))
    }
}

/// A dataframe with pending grouping keys; `agg` completes the aggregation.
#[derive(Clone, Debug)]
pub struct GroupedFrame {
    df: DataFrame,
    keys: Vec<Col>,
}

impl GroupedFrame {
    /// Completes the aggregation. Grouping keys appear first in the output,
    /// followed by the aggregate expressions, mirroring Snowpark.
    pub fn agg<I, T>(&self, aggs: I) -> DataFrame
    where
        I: IntoIterator<Item = T>,
        T: Into<AliasedCol>,
    {
        let mut select: Vec<String> = self.keys.iter().map(|k| k.sql().to_string()).collect();
        select.extend(aggs.into_iter().map(|c| c.into().render()));
        let group = if self.keys.is_empty() {
            String::new()
        } else {
            let keys: Vec<&str> = self.keys.iter().map(|k| k.sql()).collect();
            format!(" GROUP BY {}", keys.join(", "))
        };
        self.df.derive(format!(
            "SELECT {} FROM ({}){group}",
            select.join(", "),
            self.df.sql
        ))
    }
}
