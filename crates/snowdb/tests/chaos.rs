//! Chaos harness: drives the ADL + SSB corpus through seeded fault-injection
//! schedules and checks the governance soundness property end to end.
//!
//! For every schedule the query must finish in one of exactly two ways — the
//! correct result, or a typed [`snowdb::SnowError`] — and the engine must
//! answer an un-faulted follow-up correctly. A hang, abort, or wrong answer
//! is a governance bug. Schedules are pure functions of their seed, so every
//! failure report names the seed; replay it with `ChaosSchedule::new(seed)`
//! and `SNOWDB_THREADS=1`.
//!
//! `SNOWQ_CHAOS_SCHEDULES` overrides the total number of schedules spread
//! over the corpus (default 24; the CI chaos job runs 200). On failure the
//! rendered repro is appended to the file named by `SNOWQ_CHAOS_REPORT`
//! (when set) so CI can upload it as an artifact.

use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use snowdb::govern::chaos::{ChaosSchedule, CHAOS_PANIC_MARKER};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::verify::{verify_sql_chaos, ChaosReport, DEFAULT_EPSILON};
use snowdb::{Database, QueryGovernor, QueryOptions, SnowError, Variant};

/// Silences the default panic printout for *injected* chaos panics only —
/// they are expected by the hundreds — while real panics keep reporting
/// through the previous hook.
fn install_chaos_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MARKER) {
                prev(info);
            }
        }));
    });
}

/// Asserts soundness; on violation persists the report for CI artifacts and
/// panics with the rendered repro (seed included).
fn assert_sound(tag: &str, report: &ChaosReport) {
    if report.sound() {
        return;
    }
    let rendered = format!("==== {tag} ====\n{}\n", report.render());
    if let Ok(path) = std::env::var("SNOWQ_CHAOS_REPORT") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = f.write_all(rendered.as_bytes());
        }
    }
    panic!("{rendered}");
}

fn schedule_budget() -> usize {
    std::env::var("SNOWQ_CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn adl_db(events: usize) -> Arc<Database> {
    let d = Database::new();
    adl::generator::load_into(
        &d,
        "hep",
        &adl::AdlConfig { events, seed: 1234, partition_rows: 64 },
    );
    Arc::new(d)
}

fn ssb_db(lineorders: usize) -> Arc<Database> {
    let d = Database::new();
    ssb::load_ssb(&d, &ssb::SsbConfig { lineorders, seed: 11, partition_rows: 256 });
    Arc::new(d)
}

/// Translates the corpus to SQL as `(tag, sql)` pairs.
fn corpus_sql(db: &Arc<Database>, queries: Vec<(String, String)>) -> Vec<(String, String)> {
    queries
        .into_iter()
        .map(|(id, jsoniq)| {
            let df = translate_query(db.clone(), &jsoniq, NestedStrategy::FlagColumn)
                .unwrap_or_else(|e| panic!("{id} fails to translate: {e}"));
            (id, df.sql().to_string())
        })
        .collect()
}

/// The tentpole soundness sweep: the whole ADL + SSB corpus, every query
/// under a distinct slice of the seeded-schedule budget, four worker threads
/// (the racy regime).
#[test]
fn chaos_corpus_is_sound() {
    install_chaos_hook();
    let budget = schedule_budget();

    let adl = adl_db(80);
    let mut corpus: Vec<(Arc<Database>, String, String)> =
        corpus_sql(&adl, adl::queries::queries("hep").into_iter().map(|q| (q.id.to_string(), q.jsoniq)).collect())
            .into_iter()
            .map(|(id, sql)| (adl.clone(), format!("adl {id}"), sql))
            .collect();
    let ssb = ssb_db(600);
    corpus.extend(
        corpus_sql(&ssb, ssb::queries().into_iter().map(|q| (q.id.to_string(), q.jsoniq)).collect())
            .into_iter()
            .map(|(id, sql)| (ssb.clone(), format!("ssb {id}"), sql)),
    );

    let per_query = budget.div_ceil(corpus.len()).max(1);
    let mut next_seed = 0x5eed_0000u64;
    let mut total = 0usize;
    for (db, tag, sql) in &corpus {
        let seeds: Vec<u64> = (0..per_query).map(|i| next_seed + i as u64).collect();
        next_seed += 1000;
        total += seeds.len();
        let report = verify_sql_chaos(db, sql, &seeds, 4, DEFAULT_EPSILON).unwrap();
        assert_sound(tag, &report);
    }
    assert!(total >= budget, "ran {total} schedules, budget {budget}");
}

/// The engine must survive injected faults — including real panics — at both
/// the serial and the parallel thread counts, and keep answering correctly.
/// (`verify_sql_chaos` re-runs the query un-faulted after every schedule.)
#[test]
fn engine_survives_injected_failures_across_thread_counts() {
    install_chaos_hook();
    let db = adl_db(60);
    let sql = translate_query(
        db.clone(),
        "for $e in collection(\"hep\") where $e.MET.PT gt 10.0 \
         group by $b := floor($e.MET.PT div 20.0) order by $b \
         return {\"bin\": $b, \"n\": count($e)}",
        NestedStrategy::FlagColumn,
    )
    .unwrap()
    .sql()
    .to_string();
    for threads in [1usize, 4] {
        let seeds: Vec<u64> = (0..12).map(|i| 0xFA11 + i).collect();
        let report = verify_sql_chaos(&db, &sql, &seeds, threads, DEFAULT_EPSILON).unwrap();
        assert_sound(&format!("survival threads={threads}"), &report);
    }
}

/// A table big enough that its cross-join query runs for many seconds in any
/// build profile — the canvas for the cancellation and deadline tests.
fn heavy_db() -> (Arc<Database>, &'static str) {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "n",
        vec![ColumnDef::new("ID", ColumnType::Int)],
        (0..3000).map(|i| vec![Variant::Int(i)]),
        256,
    )
    .unwrap();
    (
        Arc::new(d),
        "SELECT COUNT(*) FROM n a CROSS JOIN n b WHERE (a.ID * b.ID) % 7 < 5",
    )
}

/// Cancellation is observed at a batch boundary: a long-running query aborts
/// promptly after `cancel()` with a typed `Cancelled` error — at one worker
/// thread and at four.
#[test]
fn cancellation_is_prompt_and_typed() {
    install_chaos_hook();
    let (db, sql) = heavy_db();
    for threads in [1usize, 4] {
        let gov = Arc::new(QueryGovernor::unbounded());
        let opts = QueryOptions { optimize: true, threads: Some(threads), vectorize: None, encode: None };
        let worker = {
            let (db, gov) = (db.clone(), gov.clone());
            let sql = sql.to_string();
            std::thread::spawn(move || db.query_governed(&sql, &opts, gov).map_err(Box::new))
        };
        // Let the query get in flight, then cancel.
        std::thread::sleep(Duration::from_millis(150));
        gov.cancel();
        let cancelled_at = Instant::now();
        let result = worker.join().expect("query thread must not panic");
        let latency = cancelled_at.elapsed();
        match result {
            Err(failure) => {
                assert!(
                    matches!(failure.error, SnowError::Cancelled { .. }),
                    "threads={threads}: expected Cancelled, got {:?}",
                    failure.error
                );
                assert!(failure.summary.cancelled);
            }
            Ok(_) => {
                // The query beat the cancel to the finish line; legal but the
                // fixture is sized to make it practically impossible.
                panic!("threads={threads}: heavy query finished before cancellation");
            }
        }
        // "Prompt" = a few batch boundaries, not the query's natural
        // multi-second runtime. The bound is generous for slow CI machines.
        assert!(
            latency < Duration::from_secs(5),
            "threads={threads}: cancellation took {latency:?}"
        );
        // The engine stays usable afterwards.
        let ok = db.query("SELECT COUNT(*) FROM n").unwrap();
        assert_eq!(ok.rows[0][0], Variant::Int(3000));
    }
}

/// A wall-clock deadline trips with a typed `DeadlineExceeded` carrying the
/// limit, long before the query's natural runtime.
#[test]
fn deadline_is_prompt_and_typed() {
    install_chaos_hook();
    let (db, sql) = heavy_db();
    for threads in [1usize, 4] {
        let gov = Arc::new(QueryGovernor::unbounded().with_deadline(Duration::from_millis(100)));
        let opts = QueryOptions { optimize: true, threads: Some(threads), vectorize: None, encode: None };
        let started = Instant::now();
        let failure = db.query_governed(sql, &opts, gov).unwrap_err();
        let elapsed = started.elapsed();
        match failure.error {
            SnowError::DeadlineExceeded(ref t) => assert_eq!(t.limit_ms, 100),
            other => panic!("threads={threads}: expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "threads={threads}: deadline enforcement took {elapsed:?}"
        );
    }
}

/// Memory budgets account *cumulative* intermediate bytes, so an exhausted
/// budget is deterministic: the same limit trips the same way at every
/// thread count.
#[test]
fn memory_budget_trips_deterministically_across_thread_counts() {
    install_chaos_hook();
    let (db, sql) = heavy_db();
    for threads in [1usize, 2, 4] {
        let gov = Arc::new(QueryGovernor::unbounded().with_memory_limit(64 * 1024));
        let opts = QueryOptions { optimize: true, threads: Some(threads), vectorize: None, encode: None };
        let failure = db.query_governed(sql, &opts, gov).unwrap_err();
        match failure.error {
            SnowError::ResourceExhausted(ref t) => {
                assert_eq!(t.resource, "memory");
                assert_eq!(t.limit, 64 * 1024);
            }
            ref other => panic!("threads={threads}: expected ResourceExhausted, got {other:?}"),
        }
        // The failure carries the partial metrics tree for post-mortems.
        assert!(failure.partial_metrics.is_some());
    }
}

/// Injected faults never leave the governor's accounting poisoned: after a
/// chaotic run the same database executes a governed query that stays within
/// budget.
#[test]
fn governance_state_is_per_query_not_per_engine() {
    install_chaos_hook();
    let db = adl_db(40);
    let sql = "SELECT COUNT(*) FROM hep";
    // A run with an absurd schedule (inject on every hit).
    let gov = Arc::new(
        QueryGovernor::unbounded().with_chaos(ChaosSchedule::with_period(99, 1)),
    );
    let opts = QueryOptions::default();
    let _ = db.query_governed(sql, &opts, gov.clone());
    // Fresh governor, fresh budget: unaffected by the chaotic predecessor.
    let fresh = Arc::new(QueryGovernor::unbounded().with_memory_limit(u64::MAX));
    let ok = db.query_governed(sql, &opts, fresh.clone()).unwrap();
    assert_eq!(ok.rows[0][0], Variant::Int(40));
    assert!(fresh.summary().memory_charged > 0);
    assert!(!fresh.is_cancelled());
}
