//! Property-based tests for the engine's core data structures and invariants.

use proptest::prelude::*;

use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::{cmp_variants, parse_json, to_json, Key, Object};
use snowdb::verify::canonical_rows;
use snowdb::{Database, QueryOptions, Variant};

/// Strategy producing arbitrary JSON-representable variants.
fn arb_variant() -> impl Strategy<Value = Variant> {
    let leaf = prop_oneof![
        Just(Variant::Null),
        any::<bool>().prop_map(Variant::Bool),
        any::<i64>().prop_map(Variant::Int),
        // Finite doubles only: JSON cannot carry NaN/inf.
        (-1e15f64..1e15).prop_map(Variant::Float),
        "[a-zA-Z0-9 _\\-\\.\"\\\\/\u{e9}\u{4e16}]{0,12}".prop_map(|s| Variant::str(&s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Variant::array),
            prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,6}", inner), 0..4).prop_map(
                |pairs| {
                    let mut o = Object::new();
                    for (k, v) in pairs {
                        o.insert(k.as_str(), v);
                    }
                    Variant::object(o)
                }
            ),
        ]
    })
}

/// Strategy producing scalar cells weighted toward the shapes that stress the
/// typed kernels: homogeneous typed runs, nulls dense enough to exercise
/// validity bitmaps, numeric boundary values (±2^53, near ±2^63), and the
/// occasional string or boolean that forces a column to promote to Variant.
fn arb_cell() -> impl Strategy<Value = Variant> {
    // The vendored proptest has no weighted arms; duplicated arms approximate
    // the intended skew toward small ints/floats and nulls.
    prop_oneof![
        Just(Variant::Null),
        Just(Variant::Null),
        (-100i64..100).prop_map(Variant::Int),
        (-100i64..100).prop_map(Variant::Int),
        (-100i64..100).prop_map(Variant::Int),
        prop_oneof![
            Just(Variant::Int((1 << 53) - 1)),
            Just(Variant::Int(1 << 53)),
            Just(Variant::Int((1 << 53) + 1)),
            Just(Variant::Int(i64::MAX)),
            Just(Variant::Int(i64::MIN)),
            any::<i64>().prop_map(Variant::Int),
        ],
        (-100.0f64..100.0).prop_map(Variant::Float),
        (-100.0f64..100.0).prop_map(Variant::Float),
        prop_oneof![
            Just(Variant::Float((1u64 << 53) as f64)),
            Just(Variant::Float(9.223372036854776e18)),
            Just(Variant::Float(-9.223372036854776e18)),
            Just(Variant::Float(-0.0)),
            Just(Variant::Float(0.5)),
        ],
        any::<bool>().prop_map(Variant::Bool),
        "[a-z]{0,4}".prop_map(|s| Variant::str(&s)),
    ]
}

/// Strategy producing string-or-null cells spanning the encoding spectrum:
/// heavy repetition from a two-token alphabet (dictionary- and run-friendly),
/// a wider alphabet (high cardinality, where encode-if-smaller declines), and
/// enough nulls to exercise the NULL code paths.
fn arb_str_cell() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Null),
        Just(Variant::str("a")),
        Just(Variant::str("a")),
        Just(Variant::str("aa")),
        Just(Variant::str("bb")),
        "[a-z]{0,6}".prop_map(|s| Variant::str(&s)),
    ]
}

/// Renders an execution outcome so that comparison is *stricter* than Variant
/// equality: `Variant::PartialEq` unifies `Int(1)` with `Float(1.0)`, which
/// would mask exactly the type drift the typed kernels could introduce.
fn outcome_repr(r: Result<Vec<Vec<Variant>>, String>) -> String {
    match r {
        Ok(rows) => format!("{:?}", canonical_rows(rows)),
        Err(e) => format!("error: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Vectorized execution is indistinguishable from the row-at-a-time path:
    /// same rows (down to the numeric type), same errors, on random
    /// typed/mixed/null-dense tables across partition layouts.
    #[test]
    fn vectorized_matches_row_path(
        rows in prop::collection::vec((arb_cell(), arb_cell()), 1..50),
        part in 1usize..9,
    ) {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![
                ColumnDef::new("A", ColumnType::Variant),
                ColumnDef::new("B", ColumnType::Variant),
            ],
            rows.iter().map(|(a, b)| vec![a.clone(), b.clone()]),
            part,
        ).unwrap();
        let queries = [
            "SELECT a, b FROM t WHERE a < b",
            "SELECT a FROM t WHERE a = b",
            "SELECT a + b FROM t",
            "SELECT a * 2 - b FROM t WHERE b >= 0 AND NOT a = 3",
            "SELECT a, COUNT(*), SUM(b), MIN(b), MAX(b) FROM t GROUP BY a",
            "SELECT DISTINCT a FROM t",
            "SELECT a, b FROM t ORDER BY a, b",
            "SELECT SUM(a), AVG(a), COUNT(b), COUNT(DISTINCT a), ANY_VALUE(b) FROM t",
            "SELECT BOOLAND_AGG(a), ARRAY_AGG(b) FROM t",
            "SELECT l.a, r.b FROM t l JOIN t r ON l.a = r.a WHERE l.b > r.b",
        ];
        for sql in queries {
            let run = |vectorize: bool| {
                let opts = QueryOptions {
                    optimize: true,
                    threads: Some(1),
                    vectorize: Some(vectorize),
                    encode: None,
                };
                outcome_repr(
                    db.query_with(sql, &opts)
                        .map(|r| r.rows)
                        .map_err(|e| e.to_string()),
                )
            };
            let vec_out = run(true);
            let row_out = run(false);
            prop_assert_eq!(&vec_out, &row_out, "query diverged: {}", sql);
        }
    }

    /// Compressed execution is indistinguishable from the decoded
    /// row-at-a-time path: same rows (down to the numeric type), same errors,
    /// on random low-cardinality, high-cardinality and null-dense string
    /// tables across partition layouts. Ingest encoding is forced on so the
    /// encoded side really exercises dictionary and run-length blocks.
    #[test]
    fn encoded_matches_decoded(
        rows in prop::collection::vec((arb_str_cell(), -5i64..5), 1..60),
        part in 1usize..9,
    ) {
        snowdb::storage::set_ingest_encoding(Some(true));
        let db = Database::new();
        let loaded = db.load_table_with_partition_rows(
            "t",
            vec![
                ColumnDef::new("S", ColumnType::Str),
                ColumnDef::new("N", ColumnType::Int),
            ],
            rows.iter().map(|(s, n)| vec![s.clone(), Variant::Int(*n)]),
            part,
        );
        snowdb::storage::set_ingest_encoding(None);
        loaded.unwrap();
        let queries = [
            "SELECT s, n FROM t WHERE s = 'aa'",
            "SELECT n FROM t WHERE s IN ('a', 'bb', 'zq')",
            "SELECT n FROM t WHERE s NOT IN ('b', NULL)",
            "SELECT s, COUNT(*), SUM(n) FROM t GROUP BY s",
            "SELECT DISTINCT s FROM t",
            "SELECT s || '!' FROM t ORDER BY s, n",
            "SELECT MIN(s), MAX(s), COUNT(s), COUNT(DISTINCT s), ANY_VALUE(s) FROM t",
            "SELECT l.s, r.n FROM t l JOIN t r ON l.s = r.s WHERE l.n > r.n",
        ];
        for sql in queries {
            let run = |encode: bool| {
                let opts = QueryOptions {
                    optimize: true,
                    threads: Some(1),
                    vectorize: Some(encode),
                    encode: Some(encode),
                };
                outcome_repr(
                    db.query_with(sql, &opts)
                        .map(|r| r.rows)
                        .map_err(|e| e.to_string()),
                )
            };
            let enc_out = run(true);
            let dec_out = run(false);
            prop_assert_eq!(&enc_out, &dec_out, "query diverged: {}", sql);
        }
    }

    /// JSON serialization round-trips every representable value.
    #[test]
    fn json_roundtrip(v in arb_variant()) {
        let text = to_json(&v);
        let back = parse_json(&text).expect("serialized JSON re-parses");
        prop_assert_eq!(&v, &back);
        // And serialization is stable across one round trip.
        prop_assert_eq!(to_json(&back), text);
    }

    /// `cmp_variants` is a total order: antisymmetric and transitive on samples.
    #[test]
    fn cmp_is_total_order(a in arb_variant(), b in arb_variant(), c in arb_variant()) {
        use std::cmp::Ordering::*;
        let ab = cmp_variants(&a, &b);
        let ba = cmp_variants(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        if cmp_variants(&a, &b) != Greater && cmp_variants(&b, &c) != Greater {
            prop_assert_ne!(cmp_variants(&a, &c), Greater);
        }
    }

    /// Canonical keys agree with equality: equal variants hash-key equally.
    #[test]
    fn key_respects_equality(v in arb_variant()) {
        prop_assert_eq!(Key::of(&v), Key::of(&v.clone()));
        // Int/Float unification.
        if let Variant::Int(i) = &v {
            if i.unsigned_abs() < (1u64 << 52) {
                prop_assert_eq!(Key::of(&v), Key::of(&Variant::Float(*i as f64)));
            }
        }
    }

    /// Storage round-trip: values written to a VARIANT column come back equal,
    /// regardless of partitioning.
    #[test]
    fn table_roundtrip(values in prop::collection::vec(arb_variant(), 1..40),
                       part in 1usize..8) {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("V", ColumnType::Variant)],
            values.iter().cloned().map(|v| vec![v]),
            part,
        ).unwrap();
        let r = db.query("SELECT v FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), values.len());
        for (row, v) in r.rows.iter().zip(&values) {
            prop_assert_eq!(&row[0], v);
        }
    }

    /// The SQL lexer never panics, whatever the input.
    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = snowdb::sql::lexer::tokenize(&s);
    }

    /// The SQL parser never panics on arbitrary token soup.
    #[test]
    fn parser_never_panics(s in "[a-zA-Z0-9_ ,.()*'\"<>=:\\[\\]+-]*") {
        let _ = snowdb::sql::parse_query(&s);
    }

    /// Zone-map pruning never changes results: a partitioned table filtered by
    /// a range predicate returns the same rows as an unpartitioned one.
    #[test]
    fn pruning_preserves_results(values in prop::collection::vec(-1000i64..1000, 1..60),
                                 lo in -1000i64..1000) {
        let mk = |part: usize| {
            let db = Database::new();
            db.load_table_with_partition_rows(
                "t",
                vec![ColumnDef::new("X", ColumnType::Int)],
                values.iter().map(|&v| vec![Variant::Int(v)]),
                part,
            ).unwrap();
            let mut rows = db
                .query(&format!("SELECT x FROM t WHERE x >= {lo}"))
                .unwrap()
                .rows;
            rows.sort_by(|a, b| cmp_variants(&a[0], &b[0]));
            rows
        };
        prop_assert_eq!(mk(4), mk(1000));
    }

    /// Aggregation invariant: COUNT(*) equals the sum of per-group COUNTs.
    #[test]
    fn group_counts_partition_the_table(values in prop::collection::vec(0i64..10, 1..60)) {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            values.iter().map(|&v| vec![Variant::Int(v)]),
        ).unwrap();
        let total = db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0]
            .as_i64().unwrap();
        let per_group: i64 = db
            .query("SELECT x, COUNT(*) AS c FROM t GROUP BY x")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[1].as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, per_group);
        prop_assert_eq!(total, values.len() as i64);
    }

    /// Flatten/reaggregate round-trip: unboxing an array column and
    /// ARRAY_AGGing it back per row id reproduces the original arrays.
    #[test]
    fn flatten_reaggregate_roundtrip(
        arrays in prop::collection::vec(prop::collection::vec(-100i64..100, 0..6), 1..20)
    ) {
        let db = Database::new();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Variant)],
            arrays.iter().map(|a| {
                vec![Variant::array(a.iter().map(|&i| Variant::Int(i)).collect())]
            }),
        ).unwrap();
        let r = db.query(
            "SELECT any_value(a) AS orig, array_agg(f.value) AS rebuilt \
             FROM (SELECT seq8() AS rid, a FROM t), \
                  LATERAL FLATTEN(INPUT => a, OUTER => TRUE) f \
             GROUP BY rid",
        ).unwrap();
        prop_assert_eq!(r.rows.len(), arrays.len());
        for row in &r.rows {
            prop_assert_eq!(&row[0], &row[1]);
        }
    }
}
