//! Optimizer behaviour tests: these assert plan-level effects (pruning
//! statistics, join strategies) rather than just result correctness.

use snowdb::plan::{Node, NodeKind};
use snowdb::sql::JoinKind;
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::{Database, Variant};

fn two_tables() -> Database {
    let db = Database::new();
    db.load_table(
        "a",
        vec![ColumnDef::new("ID", ColumnType::Int), ColumnDef::new("X", ColumnType::Int)],
        (0..1000).map(|i| vec![Variant::Int(i), Variant::Int(i % 17)]),
    )
    .unwrap();
    db.load_table(
        "b",
        vec![ColumnDef::new("ID", ColumnType::Int), ColumnDef::new("Y", ColumnType::Int)],
        (0..1000).map(|i| vec![Variant::Int(i), Variant::Int(i % 5)]),
    )
    .unwrap();
    db
}

fn find_joins(node: &Node, out: &mut Vec<(JoinKind, bool)>) {
    match &node.kind {
        NodeKind::Join { left, right, kind, on } => {
            out.push((*kind, on.is_some()));
            find_joins(left, out);
            find_joins(right, out);
        }
        NodeKind::Project { input, .. }
        | NodeKind::Filter { input, .. }
        | NodeKind::Flatten { input, .. }
        | NodeKind::Aggregate { input, .. }
        | NodeKind::Sort { input, .. }
        | NodeKind::Limit { input, .. }
        | NodeKind::Distinct { input } => find_joins(input, out),
        NodeKind::UnionAll { left, right } => {
            find_joins(left, out);
            find_joins(right, out);
        }
        NodeKind::Scan { .. } | NodeKind::Values => {}
    }
}

fn find_scans(node: &Node, out: &mut Vec<(usize, usize)>) {
    match &node.kind {
        NodeKind::Scan { materialize, pushed, .. } => {
            out.push((materialize.iter().filter(|&&m| m).count(), pushed.len()));
        }
        NodeKind::Project { input, .. }
        | NodeKind::Filter { input, .. }
        | NodeKind::Flatten { input, .. }
        | NodeKind::Aggregate { input, .. }
        | NodeKind::Sort { input, .. }
        | NodeKind::Limit { input, .. }
        | NodeKind::Distinct { input } => find_scans(input, out),
        NodeKind::Join { left, right, .. } | NodeKind::UnionAll { left, right } => {
            find_scans(left, out);
            find_scans(right, out);
        }
        NodeKind::Values => {}
    }
}

#[test]
fn cross_join_with_equality_becomes_inner_join() {
    let db = two_tables();
    let plan = db
        .compile("SELECT * FROM (SELECT * FROM a CROSS JOIN b) WHERE a.id = b.id AND x > 3")
        .unwrap();
    let mut joins = Vec::new();
    find_joins(&plan, &mut joins);
    assert_eq!(joins.len(), 1);
    assert_eq!(joins[0], (JoinKind::Inner, true), "cross join converted with ON");
}

#[test]
fn projection_pruning_narrows_scans() {
    let db = two_tables();
    let plan = db.compile("SELECT x FROM a").unwrap();
    let mut scans = Vec::new();
    find_scans(&plan, &mut scans);
    assert_eq!(scans, vec![(1, 0)], "only X materialized");
    let plan = db.compile("SELECT x FROM a WHERE id > 5").unwrap();
    let mut scans = Vec::new();
    find_scans(&plan, &mut scans);
    assert_eq!(scans[0].0, 2, "filter column also materialized");
    assert_eq!(scans[0].1, 1, "comparison pushed for pruning");
}

#[test]
fn pushdown_reaches_scans_through_projections_and_unions() {
    let db = two_tables();
    let plan = db
        .compile(
            "SELECT * FROM (SELECT id AS i FROM a UNION ALL SELECT id AS i FROM b) WHERE i < 10",
        )
        .unwrap();
    let mut scans = Vec::new();
    find_scans(&plan, &mut scans);
    assert_eq!(scans.len(), 2);
    for (_, pushed) in scans {
        assert_eq!(pushed, 1, "predicate copied into both union branches' scans");
    }
}

#[test]
fn left_outer_join_does_not_push_right_predicates() {
    let db = two_tables();
    // The y-predicate over the right side of a left outer join must stay above
    // the join (it would change NULL-extension otherwise).
    let r = db
        .query(
            "SELECT COUNT(*) FROM ( \
               SELECT a.id AS i, b.y AS y FROM a LEFT OUTER JOIN b ON a.id = b.id AND b.y = 1) \
             WHERE y IS NULL",
        )
        .unwrap();
    // Rows with y != 1 are null-extended, not dropped.
    let n = r.rows[0][0].as_i64().unwrap();
    assert_eq!(n, 800, "4 of 5 residue classes null-extend");
}

#[test]
fn constant_folding_removes_literal_arithmetic() {
    let db = two_tables();
    let plan = db.compile("SELECT x + (1 + 2 * 3) FROM a WHERE 1 + 1 = 2").unwrap();
    // The folded TRUE filter may remain, but must not prevent execution;
    // check the query runs and the folded constant is correct.
    let r = db.query("SELECT x + (1 + 2 * 3) AS v FROM a LIMIT 1").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(7));
    drop(plan);
}

#[test]
fn volatile_seq8_is_not_folded_or_pushed_through() {
    let db = two_tables();
    // SEQ8 must produce distinct values even though it has no column inputs.
    let r = db
        .query("SELECT COUNT(DISTINCT s) FROM (SELECT seq8() AS s FROM a)")
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(1000));
    // Filtering on a volatile projection must not be pushed below it.
    let r = db
        .query("SELECT COUNT(*) FROM (SELECT seq8() AS s, id FROM a) WHERE s < 10")
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(10));
}

#[test]
fn equivalent_results_with_and_without_partitioning() {
    // The same data loaded with tiny partitions (heavy pruning) must agree
    // with one big partition on a selective aggregate.
    let sql = "SELECT x, COUNT(*) AS c FROM a WHERE id >= 900 GROUP BY x ORDER BY x";
    let mk = |rows_per_part: usize| {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "a",
            vec![ColumnDef::new("ID", ColumnType::Int), ColumnDef::new("X", ColumnType::Int)],
            (0..1000).map(|i| vec![Variant::Int(i), Variant::Int(i % 17)]),
            rows_per_part,
        )
        .unwrap();
        db.query(sql).unwrap()
    };
    let small = mk(10);
    let big = mk(100_000);
    assert_eq!(small.rows, big.rows);
    assert!(small.profile.scan.partitions_scanned < small.profile.scan.partitions_total);
}

// ---- pushdown soundness around FLATTEN and volatile projections -----------
//
// These shapes were pinned down by the verification oracle
// (`crates/snowdb/tests/verify.rs`): each one changes results or error
// behaviour if the filter moves, so the plans must keep the filter above.

fn flatten_db() -> Database {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("ID", ColumnType::Int), ColumnDef::new("XS", ColumnType::Variant)],
        (1..9).map(|i| {
            vec![
                Variant::Int(i),
                Variant::array((0..(i % 3)).map(Variant::Int).collect::<Vec<_>>()),
            ]
        }),
        4,
    )
    .unwrap();
    db
}

fn contains_filter(node: &Node) -> bool {
    let mut found = false;
    walk(node, &mut |n| {
        if matches!(n.kind, NodeKind::Filter { .. }) {
            found = true;
        }
    });
    found
}

fn walk(node: &Node, f: &mut impl FnMut(&Node)) {
    f(node);
    match &node.kind {
        NodeKind::Project { input, .. }
        | NodeKind::Filter { input, .. }
        | NodeKind::Flatten { input, .. }
        | NodeKind::Aggregate { input, .. }
        | NodeKind::Sort { input, .. }
        | NodeKind::Limit { input, .. }
        | NodeKind::Distinct { input } => walk(input, f),
        NodeKind::Join { left, right, .. } | NodeKind::UnionAll { left, right } => {
            walk(left, f);
            walk(right, f);
        }
        NodeKind::Scan { .. } | NodeKind::Values => {}
    }
}

/// Subtrees feeding a `Flatten`, and subtrees feeding a `Project` that
/// computes a volatile expression (`SEQ8`).
fn guarded_inputs(node: &Node) -> Vec<Node> {
    let mut out = Vec::new();
    walk(node, &mut |n| match &n.kind {
        NodeKind::Flatten { input, .. } => out.push((**input).clone()),
        NodeKind::Project { input, exprs } if exprs.iter().any(|e| e.is_volatile()) => {
            out.push((**input).clone())
        }
        _ => {}
    });
    out
}

fn assert_filter_stays_above(db: &Database, sql: &str) {
    let plan = db.compile(sql).unwrap();
    assert!(contains_filter(&plan), "expected a residual filter in:\n{plan:?}");
    for sub in guarded_inputs(&plan) {
        assert!(
            !contains_filter(&sub),
            "filter was pushed below a flatten / volatile projection for {sql}"
        );
    }
}

#[test]
fn volatile_predicate_stays_above_flatten() {
    let db = flatten_db();
    assert_filter_stays_above(
        &db,
        "SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS) AS F WHERE SEQ8() < 3",
    );
}

#[test]
fn filter_does_not_cross_a_seq8_projection() {
    // Pushing a filter below a row-numbering projection renumbers the rows —
    // the JOIN-based nested strategy joins on those numbers (ADL Q7).
    let db = flatten_db();
    assert_filter_stays_above(
        &db,
        "SELECT RID FROM (SELECT *, SEQ8() AS RID FROM t) WHERE ID % 2 = 0",
    );
}

#[test]
fn null_sensitive_predicate_stays_above_outer_flatten() {
    let db = flatten_db();
    assert_filter_stays_above(
        &db,
        "SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS, OUTER => TRUE) AS F \
         WHERE IFF(ID IS NULL, FALSE, ID > 2)",
    );
}

#[test]
fn erroring_predicate_stays_above_flatten() {
    // A non-outer flatten drops empty-array rows before the filter ever sees
    // them; pushing `10 / ID` below would evaluate it on rows the unpushed
    // plan skips (division by zero on a dropped row).
    let db = flatten_db();
    assert_filter_stays_above(
        &db,
        "SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS) AS F WHERE 10 / ID > 0",
    );
}

#[test]
fn benign_input_predicate_still_moves_below_flatten() {
    // The soundness gates must not over-block: a plain comparison over input
    // columns commutes with the flatten and should reach the scan for pruning.
    let db = flatten_db();
    let plan = db
        .compile("SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS) AS F WHERE ID > 3")
        .unwrap();
    let mut scans = Vec::new();
    find_scans(&plan, &mut scans);
    assert_eq!(scans.len(), 1);
    assert_eq!(scans[0].1, 1, "comparison not pushed to the scan:\n{plan:?}");
}

// ---- cost-based join reordering --------------------------------------------
//
// The reorderer flattens Inner/Cross join clusters and rebuilds them
// left-deep in the order the cost model ranks cheapest, using catalog
// statistics (NDV sketches, histograms, null fractions) persisted at
// partition seal. These tests pin its structural contract; result
// equivalence is covered by the oracle in tests/planner.rs.

use snowdb::QueryOptions;

/// A small star: FACT (4000 rows) with FKs into DIMA (40) and DIMB (8).
fn star_db() -> Database {
    let db = Database::new();
    db.load_table(
        "fact",
        vec![
            ColumnDef::new("FA", ColumnType::Int),
            ColumnDef::new("FB", ColumnType::Int),
            ColumnDef::new("M", ColumnType::Int),
        ],
        (0..4000).map(|i| vec![Variant::Int(i % 40), Variant::Int(i % 8), Variant::Int(i)]),
    )
    .unwrap();
    db.load_table(
        "dima",
        vec![ColumnDef::new("AK", ColumnType::Int), ColumnDef::new("AV", ColumnType::Int)],
        (0..40).map(|i| vec![Variant::Int(i), Variant::Int(i * 10)]),
    )
    .unwrap();
    db.load_table(
        "dimb",
        vec![ColumnDef::new("BK", ColumnType::Int), ColumnDef::new("BV", ColumnType::Int)],
        (0..8).map(|i| vec![Variant::Int(i), Variant::Int(i * 100)]),
    )
    .unwrap();
    db
}

fn scan_names(node: &Node, out: &mut Vec<String>) {
    if let NodeKind::Scan { table, .. } = &node.kind {
        out.push(table.name().to_string());
    }
    for child in node.kind.inputs() {
        scan_names(child, out);
    }
}

#[test]
fn reorderer_recovers_star_join_from_cross_product() {
    let db = star_db();
    // Authored worst: dimensions first, fact last, all predicates in WHERE —
    // the raw plan is DIMA × DIMB × FACT before any predicate applies.
    let sql = "SELECT COUNT(*) FROM dima CROSS JOIN dimb CROSS JOIN fact \
               WHERE fact.fa = dima.ak AND fact.fb = dimb.bk";
    let plan = db.compile(sql).unwrap();
    let mut joins = Vec::new();
    find_joins(&plan, &mut joins);
    assert_eq!(joins.len(), 2);
    assert!(
        joins.iter().all(|&(k, has_on)| k == JoinKind::Inner && has_on),
        "cross products must become equi-joins: {joins:?}"
    );
    // The big fact table is the probe side (first scan, left-deep).
    let mut scans = Vec::new();
    scan_names(&plan, &mut scans);
    assert_eq!(scans[0], "FACT", "fact table must lead the reordered plan: {scans:?}");
    // And the reordered plan still counts correctly.
    let r = db.query(sql).unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(4000));
}

#[test]
fn reordered_plan_matches_unoptimized_results_and_column_order() {
    let db = star_db();
    // Projects columns from every relation in authored (pre-reorder) order:
    // the restoring projection must map them back after the permutation.
    let sql = "SELECT dima.av, fact.m, dimb.bv FROM dima CROSS JOIN dimb CROSS JOIN fact \
               WHERE fact.fa = dima.ak AND fact.fb = dimb.bk AND dima.av < 50 \
               ORDER BY fact.m";
    let optimized = db.query(sql).unwrap();
    let raw = db
        .query_with(sql, &QueryOptions { optimize: false, ..Default::default() })
        .unwrap();
    assert_eq!(optimized.rows, raw.rows);
    assert!(!optimized.rows.is_empty());
}

#[test]
fn volatile_join_condition_blocks_reordering() {
    let db = star_db();
    // SEQ8() in a join condition is volatile: moving the join changes which
    // row pairs it numbers. The cluster must keep its authored shape.
    let sql = "SELECT COUNT(*) FROM dima CROSS JOIN dimb CROSS JOIN fact \
               WHERE fact.fa = dima.ak AND fact.fb = dimb.bk AND SEQ8() >= 0";
    let plan = db.compile(sql).unwrap();
    let mut scans = Vec::new();
    scan_names(&plan, &mut scans);
    assert_eq!(
        scans,
        vec!["DIMA".to_string(), "DIMB".to_string(), "FACT".to_string()],
        "volatile conjunct must freeze the authored join order"
    );
}

#[test]
fn erroring_join_condition_blocks_reordering() {
    let db = star_db();
    // A *multi-relation* erroring conjunct stays in the join ON (single-
    // relation ones travel with their relation, which is sound): division
    // can trip on row pairs the authored plan never forms, so the cluster
    // must keep its authored shape.
    let sql = "SELECT COUNT(*) FROM dima CROSS JOIN dimb CROSS JOIN fact \
               WHERE fact.fa = dima.ak AND fact.fb = dimb.bk \
               AND 100 / (dima.av + fact.m) >= 0";
    let plan = db.compile(sql).unwrap();
    let mut scans = Vec::new();
    scan_names(&plan, &mut scans);
    assert_eq!(
        scans,
        vec!["DIMA".to_string(), "DIMB".to_string(), "FACT".to_string()],
        "erroring multi-relation conjunct must freeze the authored join order"
    );
}

#[test]
fn pushed_single_relation_error_predicate_travels_with_its_relation() {
    let db = star_db();
    // A single-relation erroring predicate is placed on its relation by
    // pushdown before the reorderer runs; the cluster is then safe to
    // reorder and results must match unoptimized execution exactly
    // (dima.av = 0 exists, so 100/av errors iff the row is ever evaluated —
    // both plans evaluate it against all DIMA rows).
    let sql = "SELECT COUNT(*) FROM dima CROSS JOIN dimb CROSS JOIN fact \
               WHERE fact.fa = dima.ak AND fact.fb = dimb.bk AND 100 / dima.av > 0";
    let optimized = db.query(sql);
    let raw = db.query_with(sql, &QueryOptions { optimize: false, ..Default::default() });
    match (optimized, raw) {
        (Ok(a), Ok(b)) => assert_eq!(a.rows, b.rows),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!(
            "optimized and raw plans disagree on erroring: {:?} vs {:?}",
            a.map(|r| r.rows),
            b.map(|r| r.rows)
        ),
    }
}

#[test]
fn two_way_joins_keep_authored_build_side() {
    let db = star_db();
    // Below MIN_RELATIONS the reorderer leaves the tree alone: two-way joins
    // already hash-join and the authored build/probe orientation stands.
    let plan = db
        .compile("SELECT COUNT(*) FROM dima JOIN fact ON fact.fa = dima.ak")
        .unwrap();
    let mut scans = Vec::new();
    scan_names(&plan, &mut scans);
    assert_eq!(scans, vec!["DIMA".to_string(), "FACT".to_string()]);
}

#[test]
fn null_presence_predicates_prune_partitions() {
    // Satellite: IS NULL / IS NOT NULL reach the scan and prune using
    // ZoneMap::null_count. One partition is entirely NULL, three have none.
    let db = Database::new();
    db.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("ID", ColumnType::Int), ColumnDef::new("X", ColumnType::Int)],
        (0..32).map(|i| {
            let x = if (8..16).contains(&i) { Variant::Null } else { Variant::Int(i) };
            vec![Variant::Int(i), x]
        }),
        8,
    )
    .unwrap();
    let r = db.query("SELECT COUNT(*) FROM t WHERE x IS NULL").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(8));
    assert_eq!(
        r.profile.scan.partitions_scanned, 1,
        "only the all-null partition may survive IS NULL pruning"
    );
    let r = db.query("SELECT ID FROM t WHERE x IS NOT NULL").unwrap();
    assert_eq!(r.rows.len(), 24);
    assert_eq!(
        r.profile.scan.partitions_scanned, 3,
        "the all-null partition must be pruned for IS NOT NULL"
    );
}
