//! Serial-vs-parallel equivalence for the morsel-parallel executor.
//!
//! The determinism contract: for any query, running with `threads = 1`
//! (fully inline, no threads spawned) and with any `threads > 1` must
//! produce byte-identical result rows *and* byte-identical scan accounting
//! (`partitions_total` / `partitions_scanned` / `bytes_scanned`). Zone-map
//! pruning decisions are made per micro-partition before any worker touches
//! its columns, so pruned partitions contribute exactly zero bytes no matter
//! how many workers race over the partition cursor.

use snowdb::storage::{ColumnDef, ColumnType, ScanStats};
use snowdb::{Database, Variant};

const THREADS: &[usize] = &[2, 4, 8];

/// 100 int rows split into 10 micro-partitions of 10 rows each, so zone maps
/// give each partition a disjoint `[lo, hi]` range.
fn prunable_db() -> Database {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("X", ColumnType::Int)],
        (0..100).map(|i| vec![Variant::Int(i)]),
        10,
    )
    .unwrap();
    db
}

fn run(db: &Database, threads: usize, sql: &str) -> (Vec<Vec<Variant>>, ScanStats) {
    db.set_threads(Some(threads));
    let r = db.query(sql).unwrap_or_else(|e| panic!("[threads={threads}] {sql}: {e}"));
    (r.rows, r.profile.scan)
}

/// Asserts rows and all three scan-stat fields are identical across thread
/// counts, returning the serial baseline for further checks.
fn assert_thread_invariant(db: &Database, sql: &str) -> (Vec<Vec<Variant>>, ScanStats) {
    let (rows1, stats1) = run(db, 1, sql);
    for &n in THREADS {
        let (rows_n, stats_n) = run(db, n, sql);
        assert_eq!(rows1, rows_n, "rows differ at threads={n} for {sql}");
        assert_eq!(
            stats1.partitions_total, stats_n.partitions_total,
            "partitions_total differs at threads={n} for {sql}"
        );
        assert_eq!(
            stats1.partitions_scanned, stats_n.partitions_scanned,
            "partitions_scanned differs at threads={n} for {sql}"
        );
        assert_eq!(
            stats1.bytes_scanned, stats_n.bytes_scanned,
            "bytes_scanned differs at threads={n} for {sql}"
        );
    }
    (rows1, stats1)
}

#[test]
fn pruned_scan_stats_identical_across_thread_counts() {
    let db = prunable_db();
    let (rows, stats) = assert_thread_invariant(&db, "SELECT x FROM t WHERE x >= 95");
    assert_eq!(rows.len(), 5);
    assert_eq!(stats.partitions_total, 10);
    assert_eq!(stats.partitions_scanned, 1);

    // Pruned partitions contribute zero bytes: the 1-partition scan reads
    // exactly one tenth of the (uniformly partitioned) full-scan volume.
    let (_, full) = assert_thread_invariant(&db, "SELECT x FROM t");
    assert_eq!(full.partitions_scanned, 10);
    assert!(stats.bytes_scanned > 0);
    assert!(
        stats.bytes_scanned < full.bytes_scanned,
        "pruned scan must read strictly less than a full scan"
    );
}

#[test]
fn fully_pruned_scan_reads_zero_bytes() {
    let db = prunable_db();
    let (rows, stats) = assert_thread_invariant(&db, "SELECT x FROM t WHERE x >= 1000");
    assert!(rows.is_empty());
    assert_eq!(stats.partitions_total, 10);
    assert_eq!(stats.partitions_scanned, 0);
    assert_eq!(stats.bytes_scanned, 0, "pruned partitions must contribute zero bytes");
}

#[test]
fn aggregates_joins_sorts_identical_across_thread_counts() {
    let db = prunable_db();
    // Group order, accumulator merge order, and float sums must all match the
    // serial reference exactly.
    assert_thread_invariant(
        &db,
        "SELECT x % 7 AS g, COUNT(*) AS c, SUM(x) AS s, MIN(x) AS lo, MAX(x) AS hi \
         FROM t GROUP BY x % 7 ORDER BY g",
    );
    assert_thread_invariant(
        &db,
        "SELECT a.x AS ax, b.x AS bx FROM t a JOIN t b ON a.x = b.x WHERE a.x < 23 ORDER BY ax",
    );
    assert_thread_invariant(&db, "SELECT x FROM t ORDER BY x % 10, x DESC");
    assert_thread_invariant(&db, "SELECT DISTINCT x % 5 AS m FROM t ORDER BY m");
    assert_thread_invariant(
        &db,
        "SELECT AVG(x) AS a FROM t WHERE x < 50 UNION ALL SELECT AVG(x) FROM t",
    );
}

#[test]
fn seq8_stream_identical_across_thread_counts() {
    let db = prunable_db();
    // SEQ8 must number rows 0..N in serial scan order even when partitions are
    // materialized by racing workers.
    let (rows, _) = assert_thread_invariant(&db, "SELECT SEQ8() AS s, x FROM t");
    assert_eq!(rows.len(), 100);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Variant::Int(i as i64), "SEQ8 gap at row {i}");
        assert_eq!(row[1], Variant::Int(i as i64));
    }
    // ...including downstream of a pruning filter (counter restarts per query).
    let (rows, _) = assert_thread_invariant(&db, "SELECT SEQ8() AS s FROM t WHERE x >= 95");
    assert_eq!(
        rows.into_iter().map(|mut r| r.remove(0)).collect::<Vec<_>>(),
        (0..5).map(Variant::Int).collect::<Vec<_>>()
    );
}

#[test]
fn flatten_identical_across_thread_counts() {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "events",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("V", ColumnType::Variant),
        ],
        (0..60).map(|i| {
            let arr: Vec<Variant> = (0..(i % 4)).map(|j| Variant::Int(i * 10 + j)).collect();
            vec![Variant::Int(i), Variant::Array(arr.into())]
        }),
        8,
    )
    .unwrap();
    assert_thread_invariant(
        &db,
        "SELECT id, f.seq, f.index, f.value FROM events, LATERAL FLATTEN(INPUT => v) f",
    );
    assert_thread_invariant(
        &db,
        "SELECT id, f.value FROM events, LATERAL FLATTEN(INPUT => v, OUTER => TRUE) f \
         WHERE id % 3 = 0",
    );
}

#[test]
fn explain_analyze_reports_operator_metrics() {
    let db = prunable_db();
    db.set_threads(Some(4));
    let rendered = db
        .explain_analyze("SELECT x % 7 AS g, COUNT(*) AS c FROM t WHERE x >= 20 GROUP BY x % 7")
        .unwrap();
    // Every operator line carries a measured annotation, and the footer
    // reports the same scan accounting as QueryProfile.
    assert!(rendered.contains("Aggregate"), "{rendered}");
    assert!(rendered.contains("rows="), "{rendered}");
    assert!(rendered.contains("batches="), "{rendered}");
    assert!(rendered.contains("8/10 partitions"), "{rendered}");

    // The metrics tree on the profile mirrors the same run.
    let r = db.query("SELECT x % 7 AS g, COUNT(*) AS c FROM t WHERE x >= 20 GROUP BY x % 7").unwrap();
    let m = r.profile.metrics.expect("profile carries operator metrics");
    assert_eq!(m.rows_out, r.rows.len() as u64);
    assert!(m.op_count() >= 3, "expected scan+filter+project+aggregate, got {}", m.op_count());
}

/// 40 rows, 8-row partitions; K carries heavy ties (5 distinct values).
fn ties_db() -> Database {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "ties",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("K", ColumnType::Int),
        ],
        (0..40).map(|i| vec![Variant::Int(i), Variant::Int(i % 5)]),
        8,
    )
    .unwrap();
    db
}

#[test]
fn limit_truncates_identically_across_thread_counts() {
    let db = ties_db();
    let (rows, _) = assert_thread_invariant(&db, "SELECT ID FROM ties ORDER BY ID LIMIT 7");
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, (0..7).collect::<Vec<_>>());
    // LIMIT larger than the table returns every row exactly once; LIMIT 0
    // returns none — no worker may sneak an extra batch past the cutoff.
    assert_eq!(assert_thread_invariant(&db, "SELECT ID FROM ties LIMIT 1000").0.len(), 40);
    assert_eq!(assert_thread_invariant(&db, "SELECT ID FROM ties LIMIT 0").0.len(), 0);
}

#[test]
fn order_by_with_ties_is_stable_across_thread_counts() {
    // Five-way ties on K: the global merge must be a stable sort of the same
    // multiset regardless of how workers split the key evaluation, so the
    // parallel result is byte-identical to serial (already asserted by the
    // invariant helper) *and* tie groups preserve input (ID) order.
    let db = ties_db();
    let (rows, _) = assert_thread_invariant(&db, "SELECT K, ID FROM ties ORDER BY K");
    let ks: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert!(ks.windows(2).all(|w| w[0] <= w[1]), "key column not sorted");
    for group in rows.chunk_by(|a, b| a[0] == b[0]) {
        let ids: Vec<i64> = group.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "tie group reordered: {ids:?}");
    }
}

#[test]
fn empty_partitions_are_survived_by_every_operator() {
    // The filter empties all but the last partition; aggregation, sort, and
    // limit above must not trip over empty morsels at any thread count.
    let db = ties_db();
    let (rows, _) =
        assert_thread_invariant(&db, "SELECT COUNT(*), SUM(ID) FROM ties WHERE ID >= 38");
    assert_eq!(rows, vec![vec![Variant::Int(2), Variant::Int(77)]]);
    let (rows, _) = assert_thread_invariant(&db, "SELECT ID FROM ties WHERE ID < 0 ORDER BY ID");
    assert!(rows.is_empty());
    let (rows, _) = assert_thread_invariant(&db, "SELECT ID FROM ties WHERE ID < 0 LIMIT 3");
    assert!(rows.is_empty());
}
