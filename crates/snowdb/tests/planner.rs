//! Cost-based planner regression harness.
//!
//! Two gates, per ISSUE 7:
//! - **join-order pins**: every SSB corpus query — both the handwritten SQL
//!   star joins and the JSONiq successive-`for` translation (raw cross
//!   products) — compiles to a pinned join order. A cost-model change that
//!   silently flips a chosen order fails here with the actual-vs-pinned
//!   signature, not as an unexplained benchmark regression.
//! - **optimizer oracle**: stats-guided plans must stay *semantically*
//!   equivalent to unoptimized execution: seeded random multi-way join
//!   queries run across the full verification lattice (optimize on/off ×
//!   threads × vectorize × encode).
//!
//! Pins encode the plan's scan sequence left-to-right (build-side depth
//! first), which uniquely identifies a left-deep join order. To refresh
//! after a deliberate cost-model change run:
//! `SNOWQ_PIN_UPDATE=1 cargo test -p snowdb --test planner -- --nocapture`
//! and copy the printed lines. With `SNOWQ_PLAN_SNAPSHOT_DIR` set, every
//! pinned query's full `EXPLAIN` (cost-annotated) is written there for CI
//! artifact upload.

use std::sync::Arc;

use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use rand::{Rng, SeedableRng, StdRng};
use snowdb::plan::{Node, NodeKind};
use snowdb::verify::{default_lattice, verify_sql, DEFAULT_EPSILON};
use snowdb::Database;

fn ssb_db() -> Arc<Database> {
    let d = Database::new();
    // Same scale/seed as the verify corpus: pins are only meaningful against
    // fixed statistics.
    ssb::load_ssb(&d, &ssb::SsbConfig { lineorders: 2000, seed: 11, partition_rows: 256 });
    Arc::new(d)
}

/// Left-to-right scan sequence of the plan: the join-order signature.
fn scan_order(node: &Node, out: &mut Vec<String>) {
    if let NodeKind::Scan { table, .. } = &node.kind {
        out.push(table.name().to_string());
    }
    for child in node.kind.inputs() {
        scan_order(child, out);
    }
}

fn signature(db: &Database, sql: &str) -> String {
    let plan = db.compile(sql).expect("pinned query must compile");
    let mut order = Vec::new();
    scan_order(&plan, &mut order);
    order.join(",")
}

fn snapshot(db: &Database, tag: &str, sql: &str) {
    if let Ok(dir) = std::env::var("SNOWQ_PLAN_SNAPSHOT_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let text = db.explain(sql).expect("pinned query must explain");
        let _ = std::fs::write(format!("{dir}/{tag}.txt"), format!("-- {sql}\n{text}"));
    }
}

/// Checks one query against its pin, honouring `SNOWQ_PIN_UPDATE`.
fn check_pin(db: &Database, tag: &str, sql: &str, pinned: &str, failures: &mut Vec<String>) {
    let got = signature(db, sql);
    snapshot(db, tag, sql);
    if std::env::var("SNOWQ_PIN_UPDATE").is_ok() {
        println!("(\"{tag}\", \"{got}\"),");
        return;
    }
    if got != pinned {
        failures.push(format!(
            "JOIN ORDER REGRESSION {tag}:\n  pinned: {pinned}\n  actual: {got}\n  sql: {sql}"
        ));
    }
}

/// Pinned scan sequences for the handwritten SSB SQL. The fact table leads
/// every multi-join query: it is the probe side, dimensions are builds.
const SQL_PINS: &[(&str, &str)] = &[
    ("q1.1", "LINEORDER,DDATE"),
    ("q1.2", "LINEORDER,DDATE"),
    ("q1.3", "LINEORDER,DDATE"),
    ("q2.1", "LINEORDER,SUPPLIER,PART,DDATE"),
    ("q2.2", "LINEORDER,SUPPLIER,PART,DDATE"),
    ("q2.3", "LINEORDER,SUPPLIER,PART,DDATE"),
    ("q3.1", "LINEORDER,SUPPLIER,CUSTOMER,DDATE"),
    ("q3.2", "LINEORDER,SUPPLIER,CUSTOMER,DDATE"),
    ("q3.3", "LINEORDER,SUPPLIER,CUSTOMER,DDATE"),
    ("q3.4", "LINEORDER,SUPPLIER,CUSTOMER,DDATE"),
    ("q4.1", "LINEORDER,SUPPLIER,CUSTOMER,PART,DDATE"),
    ("q4.2", "LINEORDER,SUPPLIER,CUSTOMER,PART,DDATE"),
    ("q4.3", "LINEORDER,SUPPLIER,CUSTOMER,PART,DDATE"),
];

/// Pinned scan sequences for the JSONiq translation (successive `for`
/// clauses → raw cross joins; the reorderer must recover a star join).
const JSONIQ_PINS: &[(&str, &str)] = &[
    ("q1.1", "LINEORDER,DDATE"),
    ("q1.2", "LINEORDER,DDATE"),
    ("q1.3", "LINEORDER,DDATE"),
    ("q2.1", "LINEORDER,DDATE,PART,SUPPLIER"),
    ("q2.2", "LINEORDER,DDATE,PART,SUPPLIER"),
    ("q2.3", "LINEORDER,DDATE,PART,SUPPLIER"),
    ("q3.1", "LINEORDER,CUSTOMER,SUPPLIER,DDATE"),
    ("q3.2", "LINEORDER,CUSTOMER,SUPPLIER,DDATE"),
    ("q3.3", "LINEORDER,CUSTOMER,SUPPLIER,DDATE"),
    ("q3.4", "LINEORDER,CUSTOMER,SUPPLIER,DDATE"),
    ("q4.1", "LINEORDER,CUSTOMER,SUPPLIER,PART,DDATE"),
    ("q4.2", "LINEORDER,CUSTOMER,SUPPLIER,PART,DDATE"),
    ("q4.3", "LINEORDER,CUSTOMER,SUPPLIER,PART,DDATE"),
];

#[test]
fn ssb_sql_join_orders_are_pinned() {
    let db = ssb_db();
    let mut failures = Vec::new();
    for q in ssb::queries() {
        let pinned = SQL_PINS
            .iter()
            .find(|(id, _)| *id == q.id)
            .unwrap_or_else(|| panic!("no pin for {}", q.id))
            .1;
        check_pin(&db, &format!("sql-{}", q.id), &q.sql, pinned, &mut failures);
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn ssb_jsoniq_join_orders_are_pinned() {
    let db = ssb_db();
    let mut failures = Vec::new();
    for q in ssb::queries() {
        let sql = translate_query(db.clone(), &q.jsoniq, NestedStrategy::FlagColumn)
            .unwrap_or_else(|e| panic!("ssb {}: {e}", q.id))
            .sql()
            .to_string();
        let pinned = JSONIQ_PINS
            .iter()
            .find(|(id, _)| *id == q.id)
            .unwrap_or_else(|| panic!("no pin for {}", q.id))
            .1;
        check_pin(&db, &format!("jsoniq-{}", q.id), &sql, pinned, &mut failures);
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// No SSB star join — raw or translated — may execute as a cross product:
/// after optimization every join in the plan must carry an equi-condition.
#[test]
fn ssb_plans_contain_no_cross_products() {
    fn joins(node: &Node, out: &mut Vec<bool>) {
        if let NodeKind::Join { on, .. } = &node.kind {
            out.push(on.is_some());
        }
        for child in node.kind.inputs() {
            joins(child, out);
        }
    }
    let db = ssb_db();
    for q in ssb::queries() {
        for (tag, sql) in [
            (format!("sql {}", q.id), q.sql.clone()),
            (
                format!("jsoniq {}", q.id),
                translate_query(db.clone(), &q.jsoniq, NestedStrategy::FlagColumn)
                    .unwrap()
                    .sql()
                    .to_string(),
            ),
        ] {
            let plan = db.compile(&sql).unwrap();
            let mut on_flags = Vec::new();
            joins(&plan, &mut on_flags);
            assert!(!on_flags.is_empty(), "{tag}: expected joins in plan");
            assert!(
                on_flags.iter().all(|&has_on| has_on),
                "{tag}: cross product survived optimization"
            );
        }
    }
}

/// Oracle: cost-based reordering must never change results. Seeded random
/// multi-way join queries (random dimension subsets, random filters, shuffled
/// FROM order so the authored order is frequently bad) run across the full
/// lattice — optimizer off is the ground truth the reordered plans must match.
#[test]
fn random_join_queries_agree_with_unoptimized_oracle() {
    let d = Database::new();
    ssb::load_ssb_tiny(&d, &ssb::SsbConfig { partition_rows: 8, ..Default::default() });
    let db = Arc::new(d);
    let lattice = default_lattice(2);
    let mut rng = StdRng::seed_from_u64(0xc057);

    let dims: &[(&str, &str, &str)] = &[
        ("ddate d", "l.lo_orderdate = d.d_datekey", "d.d_year >= 1994"),
        ("customer c", "l.lo_custkey = c.c_custkey", "c.c_region = 'ASIA'"),
        ("supplier s", "l.lo_suppkey = s.s_suppkey", "s.s_region <> 'AFRICA'"),
        ("part p", "l.lo_partkey = p.p_partkey", "p.p_size <= 6"),
    ];
    let n: usize = std::env::var("SNOWQ_VERIFY_RANDOM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    for i in 0..n {
        // Pick 2-4 dimensions, shuffle the FROM order, keep a random subset
        // of the dimension filters.
        let k = rng.gen_range(2..=dims.len());
        let mut picked: Vec<usize> = (0..dims.len()).collect();
        for j in (1..picked.len()).rev() {
            picked.swap(j, rng.gen_range(0..=j));
        }
        picked.truncate(k);
        let mut tables = vec!["lineorder l".to_string()];
        let mut preds = Vec::new();
        for &di in &picked {
            tables.push(dims[di].0.to_string());
            preds.push(dims[di].1.to_string());
            if rng.gen_bool(0.5) {
                preds.push(dims[di].2.to_string());
            }
        }
        // Fact-table filter half the time; fact table in a random position.
        if rng.gen_bool(0.5) {
            preds.push("l.lo_discount <= 5".to_string());
        }
        let pos = rng.gen_range(0..tables.len());
        tables.swap(0, pos);
        let sql = format!(
            "SELECT COUNT(*), SUM(l.lo_revenue) FROM {} WHERE {}",
            tables.join(" CROSS JOIN "),
            preds.join(" AND ")
        );
        // Parse/plan errors must fail loudly, not count as vacuous agreement.
        db.compile(&sql).unwrap_or_else(|e| panic!("random join #{i}: {e}\n{sql}"));
        let report = verify_sql(&db, &sql, &lattice, DEFAULT_EPSILON).unwrap();
        assert!(
            report.agrees(),
            "random join #{i} (seed 0xc057) diverged:\n{}",
            report.render()
        );
    }
}
