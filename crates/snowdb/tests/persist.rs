//! Persistence round-trip, exact-I/O accounting, corruption, and
//! crash-injection tests for the on-disk micro-partition store.
//!
//! The contract under test, end to end:
//! - a database persisted with [`Database::persist_to`] and reopened with
//!   [`Database::open`] answers every query exactly like its in-memory
//!   ancestor, across the execution-configuration lattice;
//! - `bytes_scanned` on a disk-backed scan is the *exact* number of file
//!   bytes read — pruned partitions and unprojected columns contribute zero,
//!   buffer-cache hits cost zero;
//! - corrupt partition files (truncation, bit flips, wrong version) surface
//!   as typed [`SnowError`]s, never panics;
//! - seeded `ManifestCommit`/`StoreRead` fault schedules never lose a
//!   committed catalog version, leave a partial partition visible, or
//!   poison the engine. `SNOWQ_PERSIST_SCHEDULES` overrides the schedule
//!   budget (default 40; the CI persistence job runs 200).

use std::sync::{Arc, Once};

use jsoniq_core::snowflake::{translate_query, NestedStrategy};
use rand::{Rng, SeedableRng, StdRng};
use snowdb::govern::chaos::{ChaosSchedule, CHAOS_PANIC_MARKER};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::verify::{default_lattice, verify_sql, verify_sql_chaos, DEFAULT_EPSILON};
use snowdb::{Database, SnowError, Variant};

/// Silences the default panic printout for *injected* chaos panics only.
fn install_chaos_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MARKER) {
                prev(info);
            }
        }));
    });
}

/// A fresh per-test scratch directory, removed on drop.
struct TempDb(std::path::PathBuf);

impl TempDb {
    fn new(tag: &str) -> TempDb {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "snowdb-persist-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDb(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn schedule_budget() -> usize {
    std::env::var("SNOWQ_PERSIST_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

/// Seeded randomized round-trip: random JSONL corpora ingest into an
/// in-memory database, persist, reopen, and must answer a panel of queries
/// (scans, filters, aggregates, flatten) identically to the original.
#[test]
fn random_ingest_persist_reopen_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for case in 0..8 {
        let rows = rng.gen_range(1usize..400);
        let mut text = String::new();
        for i in 0..rows {
            let mut doc = format!("{{\"id\": {i}");
            if rng.gen_bool(0.9) {
                doc.push_str(&format!(", \"v\": {:.4}", rng.gen_range(-1e3..1e3)));
            }
            if rng.gen_bool(0.8) {
                doc.push_str(&format!(", \"flag\": {}", rng.gen_bool(0.5)));
            }
            if rng.gen_bool(0.7) {
                doc.push_str(&format!(", \"name\": \"n{}\"", rng.gen_range(0..50)));
            }
            if rng.gen_bool(0.5) {
                let k = rng.gen_range(0usize..4);
                let items: Vec<String> =
                    (0..k).map(|j| format!("{{\"t\": {}}}", i + j)).collect();
                doc.push_str(&format!(", \"tags\": [{}]", items.join(", ")));
            }
            doc.push_str("}\n");
            text.push_str(&doc);
        }

        let mem = Database::new();
        mem.load_jsonl("t", &text).unwrap();
        let tmp = TempDb::new("roundtrip");
        mem.persist_to(tmp.path()).unwrap();
        let disk = Database::open(tmp.path()).unwrap();

        for sql in [
            "SELECT id, v, flag, name FROM t ORDER BY id",
            "SELECT COUNT(*), SUM(id), MIN(v), MAX(v) FROM t",
            "SELECT flag, COUNT(*) AS c FROM t GROUP BY flag ORDER BY flag",
            "SELECT id FROM t WHERE v > 0 ORDER BY id",
            "SELECT f.value:t FROM t, LATERAL FLATTEN(INPUT => tags) f ORDER BY 1",
        ] {
            let a = mem.query(sql).unwrap_or_else(|e| panic!("case {case} mem {sql}: {e}"));
            let b = disk.query(sql).unwrap_or_else(|e| panic!("case {case} disk {sql}: {e}"));
            assert_eq!(a.rows, b.rows, "case {case}: {sql}");
        }
    }
}

/// JSONL loaded *into* an already-persistent database streams straight to
/// partition files and survives a reopen; DROP TABLE commits too.
#[test]
fn ingest_into_persistent_db_survives_reopen() {
    let tmp = TempDb::new("ingest");
    {
        let db = Database::open(tmp.path()).unwrap();
        let mut text = String::new();
        for i in 0..5000 {
            text.push_str(&format!("{{\"id\": {i}, \"sq\": {}}}\n", (i as i64) * (i as i64)));
        }
        db.load_jsonl("big", &text).unwrap();
        db.load_jsonl("small", "{\"x\": 1}\n{\"x\": 2}\n").unwrap();
        db.execute("DROP TABLE small").unwrap();
        // Every partition of the committed table is disk-backed.
        let t = db.table("big").unwrap();
        assert!(t.partitions().iter().all(|p| p.is_disk()));
    }
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.table_names(), vec!["BIG".to_string()]);
    let r = db.query("SELECT COUNT(*), SUM(sq) FROM big").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(5000));
    assert_eq!(r.rows[0][1], Variant::Int((0..5000i64).map(|i| i * i).sum()));
}

/// The full ADL + SSB corpus, translated to SQL, must agree across the
/// execution-configuration lattice when executed from a *reopened* on-disk
/// database — the acceptance gate for the persistent scan path.
#[test]
fn reopened_adl_ssb_corpus_agrees_across_lattice() {
    let tmp = TempDb::new("corpus");
    {
        let staging = Database::new();
        adl::generator::load_into(
            &staging,
            "hep",
            &adl::AdlConfig { events: 100, seed: 1234, partition_rows: 64 },
        );
        ssb::load_ssb(&staging, &ssb::SsbConfig { lineorders: 800, seed: 11, partition_rows: 256 });
        staging.persist_to(tmp.path()).unwrap();
    }
    let db = Arc::new(Database::open(tmp.path()).unwrap());
    assert!(db
        .table_names()
        .iter()
        .all(|t| db.table(t).unwrap().partitions().iter().all(|p| p.is_disk())));

    let full = default_lattice(4);
    // SSB's raw (unoptimized) plan is a literal cross product — infeasible at
    // corpus scale — so the scaled SSB corpus runs the optimized half of the
    // lattice here. The optimize=false half runs the SAME corpus from disk on
    // the tiny FK-closed generator in
    // `reopened_tiny_ssb_corpus_agrees_across_full_lattice` below, so the
    // axis is reduced in scale, never skipped.
    let optimized: Vec<_> = full.iter().copied().filter(|c| c.optimize).collect();

    for q in adl::queries::queries("hep") {
        let sql = translate_query(db.clone(), &q.jsoniq, NestedStrategy::FlagColumn)
            .unwrap_or_else(|e| panic!("adl {}: {e}", q.id))
            .sql()
            .to_string();
        let report = verify_sql(&db, &sql, &full, DEFAULT_EPSILON).unwrap();
        assert!(report.agrees(), "adl {} from disk:\n{}", q.id, report.render());
    }
    for q in ssb::queries() {
        let sql = translate_query(db.clone(), &q.jsoniq, NestedStrategy::FlagColumn)
            .unwrap_or_else(|e| panic!("ssb {}: {e}", q.id))
            .sql()
            .to_string();
        let report = verify_sql(&db, &sql, &optimized, DEFAULT_EPSILON).unwrap();
        assert!(report.agrees(), "ssb {} from disk:\n{}", q.id, report.render());
    }
}

/// The SSB corpus from a *reopened* on-disk database across the FULL lattice,
/// optimizer off included: the tiny FK-closed generator keeps raw cross
/// products feasible, and the disk path additionally exercises the v3 footer
/// stats (the cost model reads catalog statistics straight from SNPT footers
/// here, not from in-memory seal-time stats).
#[test]
fn reopened_tiny_ssb_corpus_agrees_across_full_lattice() {
    let tmp = TempDb::new("tinyssb");
    {
        let staging = Database::new();
        ssb::load_ssb_tiny(&staging, &ssb::SsbConfig { partition_rows: 8, ..Default::default() });
        staging.persist_to(tmp.path()).unwrap();
    }
    let db = Arc::new(Database::open(tmp.path()).unwrap());
    let full = default_lattice(4);
    for q in ssb::queries() {
        let sql = translate_query(db.clone(), &q.jsoniq, NestedStrategy::FlagColumn)
            .unwrap_or_else(|e| panic!("ssb {}: {e}", q.id))
            .sql()
            .to_string();
        let report = verify_sql(&db, &sql, &full, DEFAULT_EPSILON).unwrap();
        assert!(report.agrees(), "ssb tiny {} from disk:\n{}", q.id, report.render());
    }
}

// ---------------------------------------------------------------------------
// Exact I/O accounting
// ---------------------------------------------------------------------------

/// `bytes_scanned` on a cold disk scan equals the exact encoded bytes of the
/// column blocks the scan had to read: pruned partitions contribute zero,
/// unprojected columns contribute zero. A warm re-run reads zero file bytes
/// (pure buffer-cache hits).
#[test]
fn disk_scan_bytes_scanned_is_exact_file_io() {
    let tmp = TempDb::new("exactio");
    {
        let staging = Database::new();
        staging
            .load_table_with_partition_rows(
                "t",
                vec![
                    ColumnDef::new("X", ColumnType::Int),
                    ColumnDef::new("PAD", ColumnType::Str),
                ],
                (0..1000).map(|i| vec![Variant::Int(i), Variant::str(format!("pad-{i:06}"))]),
                100,
            )
            .unwrap();
        staging.persist_to(tmp.path()).unwrap();
    }
    // Reopen: nothing cached, nothing resident.
    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("t").unwrap();
    assert_eq!(table.partitions().len(), 10);

    // Expected I/O, from footer metadata alone: the X block of every
    // partition whose zone map may contain a match. PAD is never projected.
    let lit = Variant::Int(950);
    let expected: u64 = table
        .partitions()
        .iter()
        .filter(|p| p.zone_map(0).unwrap().may_match(">=", &lit))
        .map(|p| p.column_bytes(0))
        .sum();
    let skipped_parts =
        table.partitions().iter().filter(|p| !p.zone_map(0).unwrap().may_match(">=", &lit)).count();
    assert!(expected > 0 && skipped_parts > 0, "fixture must exercise pruning");

    let cold = db.query("SELECT x FROM t WHERE x >= 950 ORDER BY x").unwrap();
    assert_eq!(cold.rows.len(), 50);
    let stats = cold.profile.scan;
    assert_eq!(
        stats.bytes_scanned, expected,
        "cold bytes_scanned must equal the exact file bytes of the surviving X blocks"
    );
    assert_eq!(stats.partitions_pruned, skipped_parts as u64);
    assert_eq!(stats.cache_misses, stats.partitions_scanned, "one X block per scanned partition");
    assert_eq!(stats.cache_hits, 0);
    // The PAD column of every scanned partition was skipped entirely.
    assert_eq!(stats.columns_skipped, stats.partitions_scanned);
    assert!(stats.bytes_skipped > 0);

    // Warm: same query, zero file I/O, pure cache hits.
    let warm = db.query("SELECT x FROM t WHERE x >= 950 ORDER BY x").unwrap();
    assert_eq!(warm.rows, cold.rows);
    assert_eq!(warm.profile.scan.bytes_scanned, 0, "warm scan must be pure cache hits");
    assert_eq!(warm.profile.scan.cache_hits, stats.cache_misses);
    assert_eq!(warm.profile.scan.cache_misses, 0);

    // The unified accounting surfaces in EXPLAIN ANALYZE.
    let plan = db.explain_analyze("SELECT x FROM t WHERE x >= 950").unwrap();
    assert!(plan.contains("pruned:"), "{plan}");
    assert!(plan.contains("buffer cache:"), "{plan}");
}

// ---------------------------------------------------------------------------
// Corruption
// ---------------------------------------------------------------------------

/// Builds a one-table persistent db and returns the path of one partition file.
fn corruptible_db(tmp: &TempDb) -> std::path::PathBuf {
    let staging = Database::new();
    staging
        .load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..100).map(|i| vec![Variant::Int(i)]),
            1000,
        )
        .unwrap();
    staging.persist_to(tmp.path()).unwrap();
    let parts: Vec<_> = std::fs::read_dir(tmp.path().join("parts"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(parts.len(), 1);
    parts.into_iter().next().unwrap()
}

#[test]
fn truncated_partition_file_is_a_typed_error() {
    let tmp = TempDb::new("trunc");
    let part = corruptible_db(&tmp);
    let len = std::fs::metadata(&part).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&part).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);
    match Database::open(tmp.path()) {
        Err(SnowError::Storage(msg)) => assert!(!msg.is_empty()),
        Err(other) => panic!("expected Storage error, got {other:?}"),
        Ok(_) => panic!("truncated partition file must not open"),
    }
}

#[test]
fn corrupted_column_block_is_a_typed_error_at_read_time() {
    let tmp = TempDb::new("bitflip");
    let part = corruptible_db(&tmp);
    // Flip one byte inside the first column block (right after the 8-byte
    // header): the footer stays valid, so open succeeds and the CRC check
    // fires on first read.
    let mut bytes = std::fs::read(&part).unwrap();
    bytes[9] ^= 0xFF;
    std::fs::write(&part, &bytes).unwrap();
    let db = Database::open(tmp.path()).unwrap();
    match db.query("SELECT x FROM t") {
        Err(SnowError::Storage(msg)) => {
            assert!(msg.contains("checksum"), "unexpected message: {msg}")
        }
        other => panic!("expected Storage checksum error, got {other:?}"),
    }
    // The engine stays usable for other statements.
    assert!(db.query("SELECT 1").is_ok());
}

#[test]
fn wrong_format_version_is_a_typed_error() {
    let tmp = TempDb::new("version");
    let part = corruptible_db(&tmp);
    let mut bytes = std::fs::read(&part).unwrap();
    // Header: 4-byte magic, then the u16 format version.
    bytes[4] = 0xFF;
    bytes[5] = 0xFF;
    std::fs::write(&part, &bytes).unwrap();
    match Database::open(tmp.path()) {
        Err(SnowError::Storage(msg)) => {
            assert!(msg.contains("version"), "unexpected message: {msg}")
        }
        Err(other) => panic!("expected Storage version error, got {other:?}"),
        Ok(_) => panic!("wrong-version partition file must not open"),
    }
}

// ---------------------------------------------------------------------------
// Crash / fault injection
// ---------------------------------------------------------------------------

/// Deterministic crash between temp-write and rename: the commit fails with a
/// typed error, the previous catalog version stays committed, and a reopen
/// recovers it exactly — with the aborted table's partitions swept.
#[test]
fn crash_during_commit_recovers_previous_version() {
    install_chaos_hook();
    let tmp = TempDb::new("crash");
    let db = Database::open(tmp.path()).unwrap();
    db.load_jsonl("keep", "{\"a\": 1}\n{\"a\": 2}\n").unwrap();
    let store = db.store().unwrap();
    assert_eq!(store.version(), 1);

    // Period-1 schedule: the first ManifestCommit injection point fires.
    store.set_chaos(Some(ChaosSchedule::with_period(0xDEAD, 1)));
    let err = db.load_jsonl("lost", "{\"b\": 1}\n").unwrap_err();
    assert!(
        matches!(err, SnowError::Storage(_) | SnowError::Internal(_)),
        "commit fault must be typed: {err}"
    );
    store.set_chaos(None);
    assert_eq!(store.version(), 1, "failed commit must not advance the version");
    drop(db);

    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.table_names(), vec!["KEEP".to_string()]);
    let r = db.query("SELECT SUM(a) FROM keep").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(3));
    // No partial partitions: every file on disk belongs to a live table.
    let live: usize =
        db.table_names().iter().map(|t| db.table(t).unwrap().partitions().len()).sum();
    let on_disk = std::fs::read_dir(tmp.path().join("parts")).unwrap().count();
    assert_eq!(on_disk, live, "crash debris must be swept on reopen");
}

/// Seeded `ManifestCommit` schedule sweep: under any injected fault pattern a
/// commit either succeeds completely or changes nothing — a reopened catalog
/// never shows a lost committed version or a partial partition, and no panic
/// escapes.
#[test]
fn manifest_commit_chaos_never_loses_a_committed_version() {
    install_chaos_hook();
    let budget = schedule_budget();
    for i in 0..budget {
        let seed = 0xC0117_u64 + i as u64;
        let tmp = TempDb::new("commitchaos");
        let db = Database::open(tmp.path()).unwrap();
        db.load_table_with_partition_rows(
            "base",
            vec![ColumnDef::new("A", ColumnType::Int)],
            (0..40).map(|i| vec![Variant::Int(i)]),
            8,
        )
        .unwrap();
        let store = db.store().unwrap();
        let committed_version = store.version();

        // Dense deterministic schedule (period 1..=5) over the commit path.
        store.set_chaos(Some(ChaosSchedule::with_period(seed, 1 + seed % 5)));
        let second = db.load_table_with_partition_rows(
            "extra",
            vec![ColumnDef::new("B", ColumnType::Int)],
            (0..20).map(|i| vec![Variant::Int(i * 2)]),
            8,
        );
        store.set_chaos(None);
        if let Err(e) = &second {
            assert!(
                matches!(e, SnowError::Storage(_) | SnowError::Internal(_)),
                "seed {seed}: fault must be typed, got {e:?}"
            );
            assert_eq!(store.version(), committed_version, "seed {seed}");
        }
        drop(db);

        let reopened = Database::open(tmp.path())
            .unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
        let base = reopened.query("SELECT COUNT(*), SUM(a) FROM base").unwrap();
        assert_eq!(base.rows[0][0], Variant::Int(40), "seed {seed}: lost committed table");
        assert_eq!(base.rows[0][1], Variant::Int((0..40).sum::<i64>()), "seed {seed}");
        match &second {
            Ok(()) => {
                let extra = reopened.query("SELECT COUNT(*) FROM extra").unwrap();
                assert_eq!(extra.rows[0][0], Variant::Int(20), "seed {seed}: committed then lost");
            }
            Err(_) => {
                assert!(
                    reopened.table("extra").is_none(),
                    "seed {seed}: failed commit must leave no table"
                );
            }
        }
        // Partial partitions must never be visible.
        let live: usize = reopened
            .table_names()
            .iter()
            .map(|t| reopened.table(t).unwrap().partitions().len())
            .sum();
        let on_disk = std::fs::read_dir(tmp.path().join("parts")).unwrap().count();
        assert_eq!(on_disk, live, "seed {seed}: debris visible after reopen");
        assert!(!tmp.path().join("MANIFEST.tmp").exists(), "seed {seed}");
    }
}

/// Seeded `StoreRead` schedule sweep on a disk-backed database: every faulted
/// query either completes with the right answer or fails typed, and the
/// un-faulted engine keeps answering correctly afterwards.
#[test]
fn store_read_chaos_is_sound_on_disk_database() {
    install_chaos_hook();
    let tmp = TempDb::new("readchaos");
    {
        let staging = Database::new();
        adl::generator::load_into(
            &staging,
            "hep",
            &adl::AdlConfig { events: 60, seed: 1234, partition_rows: 64 },
        );
        staging.persist_to(tmp.path()).unwrap();
    }
    let db = Arc::new(Database::open(tmp.path()).unwrap());
    // Keep the cache cold-ish so StoreRead checkpoints sit on real I/O paths.
    db.store().unwrap().set_cache_capacity(1);

    let sql = translate_query(
        db.clone(),
        "for $e in collection(\"hep\") where $e.MET.PT gt 10.0 \
         group by $b := floor($e.MET.PT div 20.0) order by $b \
         return {\"bin\": $b, \"n\": count($e)}",
        NestedStrategy::FlagColumn,
    )
    .unwrap()
    .sql()
    .to_string();

    let budget = schedule_budget().div_ceil(2).max(8);
    for threads in [1usize, 4] {
        let seeds: Vec<u64> = (0..budget).map(|i| 0x5704E + i as u64).collect();
        let report = verify_sql_chaos(&db, &sql, &seeds, threads, DEFAULT_EPSILON).unwrap();
        assert!(report.sound(), "threads={threads}:\n{}", report.render());
    }
}
