//! End-to-end tests for the statement surface: DDL, DML, EXPLAIN, LIKE.

use snowdb::engine::StatementResult;
use snowdb::{Database, Variant};

fn rows(r: StatementResult) -> Vec<Vec<Variant>> {
    match r {
        StatementResult::Rows(q) => q.rows,
        StatementResult::Message(m) => panic!("expected rows, got message {m}"),
    }
}

#[test]
fn create_insert_query_drop_lifecycle() {
    let db = Database::new();
    db.execute("CREATE TABLE people (name VARCHAR, age INT)").unwrap();
    db.execute("INSERT INTO people VALUES ('ada', 36), ('grace', 45 + 1)").unwrap();
    db.execute("INSERT INTO people VALUES ('edsger', 40)").unwrap();
    let r = rows(db.execute("SELECT name FROM people WHERE age > 39 ORDER BY name").unwrap());
    assert_eq!(r, vec![vec![Variant::str("edsger")], vec![Variant::str("grace")]]);
    db.execute("DROP TABLE people").unwrap();
    assert!(db.execute("SELECT * FROM people").is_err());
    // IF EXISTS tolerates missing tables.
    db.execute("DROP TABLE IF EXISTS people").unwrap();
    assert!(db.execute("DROP TABLE people").is_err());
}

#[test]
fn create_duplicate_table_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    assert!(db.execute("CREATE TABLE t (a INT)").is_err());
}

#[test]
fn insert_arity_mismatch_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
}

#[test]
fn explain_returns_plan_text() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    match db.execute("EXPLAIN SELECT a FROM t WHERE a > 1").unwrap() {
        StatementResult::Message(plan) => {
            assert!(plan.contains("Scan T"), "{plan}");
            assert!(plan.contains("Filter"), "{plan}");
        }
        other => panic!("{other:?}"),
    }
    // Also available directly.
    let plan = db.explain("SELECT b FROM t").unwrap();
    assert!(plan.contains("Project"), "{plan}");
}

#[test]
fn like_patterns() {
    let db = Database::new();
    db.execute("CREATE TABLE t (s VARCHAR)").unwrap();
    db.execute("INSERT INTO t VALUES ('MFGR#1201'), ('MFGR#22'), ('other'), ('M_GR')")
        .unwrap();
    let r = rows(db.execute("SELECT s FROM t WHERE s LIKE 'MFGR#12%' ORDER BY s").unwrap());
    assert_eq!(r, vec![vec![Variant::str("MFGR#1201")]]);
    let r = rows(db.execute("SELECT COUNT(*) FROM t WHERE s LIKE 'M%'").unwrap());
    assert_eq!(r[0][0], Variant::Int(3));
    let r = rows(db.execute("SELECT COUNT(*) FROM t WHERE s LIKE 'M_GR'").unwrap());
    assert_eq!(r[0][0], Variant::Int(1));
    let r = rows(db.execute("SELECT COUNT(*) FROM t WHERE s NOT LIKE '%#%'").unwrap());
    assert_eq!(r[0][0], Variant::Int(2));
}

#[test]
fn like_with_null_is_null() {
    let db = Database::new();
    db.execute("CREATE TABLE t (s VARCHAR)").unwrap();
    db.execute("INSERT INTO t VALUES ('x')").unwrap();
    let r = rows(db.execute("SELECT NULL LIKE 'x' FROM t").unwrap());
    assert!(r[0][0].is_null());
}

#[test]
fn like_empty_and_wildcard_edge_cases() {
    let db = Database::new();
    db.execute("CREATE TABLE t (s VARCHAR)").unwrap();
    db.execute("INSERT INTO t VALUES ('')").unwrap();
    let r = rows(db.execute("SELECT s LIKE '%', s LIKE '_', s LIKE '' FROM t").unwrap());
    assert_eq!(r[0], vec![Variant::Bool(true), Variant::Bool(false), Variant::Bool(true)]);
}
