//! End-to-end SQL tests over the embedded engine, focusing on the features the
//! JSONiq translation layer relies on: variant paths, `LATERAL FLATTEN`, nested
//! subqueries, reaggregation, and joins.

use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::variant::{parse_json, Object};
use snowdb::{Database, Variant};

/// Events table shaped like a miniature ADL dataset: typed EVENT column plus a
/// VARIANT column holding an array of jet objects.
fn events_db() -> Database {
    let db = Database::new();
    let rows = vec![
        (1i64, r#"[{"PT": 10.0, "ETA": 0.5}, {"PT": 50.0, "ETA": -2.0}]"#),
        (2, r#"[]"#),
        (3, r#"[{"PT": 30.0, "ETA": 0.1}]"#),
        (4, r#"[{"PT": 5.0, "ETA": 3.0}, {"PT": 7.5, "ETA": -0.2}, {"PT": 90.0, "ETA": 0.0}]"#),
    ];
    db.load_table(
        "events",
        vec![
            ColumnDef::new("EVENT", ColumnType::Int),
            ColumnDef::new("JET", ColumnType::Variant),
        ],
        rows.into_iter()
            .map(|(id, jets)| vec![Variant::Int(id), parse_json(jets).unwrap()]),
    )
    .unwrap();
    db
}

#[test]
fn flatten_unboxes_arrays() {
    let db = events_db();
    let r = db
        .query("SELECT event, f.value:PT AS pt FROM events, LATERAL FLATTEN(INPUT => jet) f ORDER BY pt")
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    assert_eq!(r.rows[0], vec![Variant::Int(4), Variant::Float(5.0)]);
    assert_eq!(r.rows[5], vec![Variant::Int(4), Variant::Float(90.0)]);
}

#[test]
fn outer_flatten_keeps_empty_arrays() {
    let db = events_db();
    let r = db
        .query(
            "SELECT event, f.value FROM events, LATERAL FLATTEN(INPUT => jet, OUTER => TRUE) f \
             ORDER BY event",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 7);
    // Event 2 has an empty array: one row with NULL value.
    let ev2: Vec<_> = r.rows.iter().filter(|r| r[0] == Variant::Int(2)).collect();
    assert_eq!(ev2.len(), 1);
    assert!(ev2[0][1].is_null());
}

#[test]
fn non_outer_flatten_drops_empty_arrays() {
    let db = events_db();
    let r = db
        .query("SELECT DISTINCT event FROM events, LATERAL FLATTEN(INPUT => jet) f ORDER BY event")
        .unwrap();
    let ids: Vec<_> = r.rows.iter().map(|r| r[0].clone()).collect();
    assert_eq!(ids, vec![Variant::Int(1), Variant::Int(3), Variant::Int(4)]);
}

#[test]
fn flatten_exposes_index_and_seq() {
    let db = events_db();
    let r = db
        .query(
            "SELECT f.index, f.seq FROM events, LATERAL FLATTEN(INPUT => jet) f \
             WHERE event = 4 ORDER BY f.index",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0], Variant::Int(0));
    assert_eq!(r.rows[2][0], Variant::Int(2));
    // All three rows stem from the same input row => same SEQ.
    assert_eq!(r.rows[0][1], r.rows[1][1]);
    assert_eq!(r.rows[1][1], r.rows[2][1]);
}

#[test]
fn flatten_over_object_iterates_fields() {
    let db = Database::new();
    let mut o = Object::new();
    o.insert("A", Variant::Int(1));
    o.insert("B", Variant::Int(2));
    db.load_table(
        "t",
        vec![ColumnDef::new("V", ColumnType::Variant)],
        vec![vec![Variant::object(o)]],
    )
    .unwrap();
    let r = db
        .query("SELECT f.key, f.value FROM t, LATERAL FLATTEN(INPUT => v) f ORDER BY f.key")
        .unwrap();
    assert_eq!(r.rows[0], vec![Variant::str("A"), Variant::Int(1)]);
    assert_eq!(r.rows[1], vec![Variant::str("B"), Variant::Int(2)]);
}

#[test]
fn nested_query_reaggregation_pattern() {
    // The core pattern of paper §IV-B: flatten, filter, group by row id,
    // reaggregate with ARRAY_AGG, reconstruct other columns with ANY_VALUE.
    let db = events_db();
    let r = db
        .query(
            "SELECT any_value(event) AS event, array_agg(f.value:PT) AS pts \
             FROM events, LATERAL FLATTEN(INPUT => jet) f \
             WHERE f.value:PT > 8 \
             GROUP BY event ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(
        r.rows[0][1],
        Variant::array(vec![Variant::Float(10.0), Variant::Float(50.0)])
    );
    assert_eq!(r.rows[2][1], Variant::array(vec![Variant::Float(90.0)]));
}

#[test]
fn left_outer_join_null_extends() {
    let db = events_db();
    // Count jets per event via join of base table against flattened counts.
    let r = db
        .query(
            "SELECT e.event, nvl(c.n, 0) AS n FROM events e \
             LEFT OUTER JOIN ( \
                SELECT event AS ev, count(*) AS n \
                FROM events, LATERAL FLATTEN(INPUT => jet) f GROUP BY event \
             ) c ON e.event = c.ev \
             ORDER BY e.event",
        )
        .unwrap();
    let ns: Vec<_> = r.rows.iter().map(|row| row[1].clone()).collect();
    assert_eq!(ns, vec![Variant::Int(2), Variant::Int(0), Variant::Int(1), Variant::Int(3)]);
}

#[test]
fn seq8_assigns_unique_row_ids() {
    let db = events_db();
    let r = db
        .query("SELECT count(DISTINCT rid) FROM (SELECT seq8() AS rid, event FROM events)")
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(4));
}

#[test]
fn fig2_tpch_like_roundtrip() {
    // The paper's Fig. 2 query shape, on a tiny orders table.
    let db = Database::new();
    db.load_table(
        "orders",
        vec![
            ColumnDef::new("O_TOTALPRICE", ColumnType::Float),
            ColumnDef::new("O_CLERK", ColumnType::Str),
        ],
        vec![
            vec![Variant::Float(95000.0), Variant::str("clerk1")],
            vec![Variant::Float(100000.0), Variant::str("clerk1")],
            vec![Variant::Float(110000.0), Variant::str("clerk2")],
            vec![Variant::Float(50000.0), Variant::str("clerk3")],
        ],
    )
    .unwrap();
    let r = db
        .query(
            r#"SELECT count(DISTINCT "O_CLERK") FROM (
                 SELECT * FROM (SELECT * FROM (orders))
                 WHERE (("O_TOTALPRICE" >= 90000 :: int) AND ("O_TOTALPRICE" <= 120000 :: int)))"#,
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(2));
}

#[test]
fn union_all_concatenates() {
    let db = events_db();
    let r = db
        .query(
            "SELECT event FROM events WHERE event <= 2 \
             UNION ALL SELECT event FROM events WHERE event >= 3 ORDER BY event",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4);
}

#[test]
fn bytes_scanned_reflects_column_pruning() {
    let db = events_db();
    let narrow = db.query("SELECT event FROM events").unwrap();
    let wide = db.query("SELECT event, jet FROM events").unwrap();
    assert!(wide.profile.scan.bytes_scanned > narrow.profile.scan.bytes_scanned);
}

#[test]
fn filter_pushdown_through_derived_table_prunes_partitions() {
    let db = Database::new();
    db.load_table_with_partition_rows(
        "seq",
        vec![ColumnDef::new("X", ColumnType::Int)],
        (0..1000).map(|i| vec![Variant::Int(i)]),
        100,
    )
    .unwrap();
    let r = db
        .query("SELECT x2 FROM (SELECT x * 1 AS x2, x FROM seq) WHERE x < 100")
        .unwrap();
    assert_eq!(r.rows.len(), 100);
    assert_eq!(r.profile.scan.partitions_scanned, 1);
    assert_eq!(r.profile.scan.partitions_total, 10);
}

#[test]
fn variant_null_inside_json_behaves_as_sql_null() {
    let db = Database::new();
    db.load_table(
        "t",
        vec![ColumnDef::new("V", ColumnType::Variant)],
        vec![
            vec![parse_json(r#"{"A": null}"#).unwrap()],
            vec![parse_json(r#"{"A": 5}"#).unwrap()],
        ],
    )
    .unwrap();
    let r = db.query("SELECT count(v:A) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(1));
}

#[test]
fn having_filters_groups() {
    let db = events_db();
    let r = db
        .query(
            "SELECT event, count(*) AS n FROM events, LATERAL FLATTEN(INPUT => jet) f \
             GROUP BY event HAVING count(*) >= 2 ORDER BY event",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Variant::Int(1));
    assert_eq!(r.rows[1][0], Variant::Int(4));
}

#[test]
fn object_construct_and_get_roundtrip() {
    let db = events_db();
    let r = db
        .query(
            "SELECT get(o, 'E') FROM (SELECT object_construct('E', event, 'X', 1) AS o FROM events) \
             ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(1));
    assert_eq!(r.rows[3][0], Variant::Int(4));
}

#[test]
fn cross_join_produces_product() {
    let db = events_db();
    let r = db
        .query("SELECT a.event, b.event FROM events a CROSS JOIN events b")
        .unwrap();
    assert_eq!(r.rows.len(), 16);
}

#[test]
fn error_on_unknown_column_mentions_name() {
    let db = events_db();
    let err = db.query("SELECT nosuch FROM events").unwrap_err();
    assert!(err.to_string().contains("NOSUCH"), "{err}");
}

#[test]
fn ambiguous_column_is_rejected() {
    let db = events_db();
    let err = db
        .query("SELECT value FROM events, LATERAL FLATTEN(INPUT => jet) f, LATERAL FLATTEN(INPUT => jet) g")
        .unwrap_err();
    assert!(err.to_string().to_lowercase().contains("ambiguous"), "{err}");
}
