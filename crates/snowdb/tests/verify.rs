//! Corpus runner for the differential verification oracle.
//!
//! Every ADL and SSB query — plus a seeded stream of random queries — executes
//! across the full configuration lattice ({optimizer on/off} × {threads} ×
//! {nested strategy} × {interpreter vs. translated SQL}) and must agree under
//! canonical ordering with epsilon-aware equality. The satellite regression
//! cases at the bottom are divergences this oracle caught; each failed before
//! its fix.
//!
//! On failure the full divergence report is appended to the file named by
//! `SNOWQ_VERIFY_REPORT` (when set) before panicking, so CI can upload it as
//! an artifact. `SNOWQ_VERIFY_RANDOM` overrides the number of random queries
//! (default 40; CI runs 200).

use std::sync::Arc;

use jsoniq_core::verify::gen::{adl_schema, random_query};
use jsoniq_core::verify::{verify_jsoniq, JsoniqLattice};
use rand::{Rng, SeedableRng, StdRng};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::verify::{default_lattice, verify_sql, VerifyReport, DEFAULT_EPSILON};
use snowdb::{Database, Variant};

/// Asserts agreement; on divergence persists the report for CI artifacts and
/// panics with the rendered repro.
fn assert_agrees(tag: &str, report: &VerifyReport) {
    if report.agrees() {
        return;
    }
    let rendered = format!("==== {tag} ====\n{}\n", report.render());
    if let Ok(path) = std::env::var("SNOWQ_VERIFY_REPORT") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = f.write_all(rendered.as_bytes());
        }
    }
    panic!("{rendered}");
}

fn adl_db(events: usize) -> Arc<Database> {
    let d = Database::new();
    adl::generator::load_into(
        &d,
        "hep",
        &adl::AdlConfig { events, seed: 1234, partition_rows: 64 },
    );
    Arc::new(d)
}

fn ssb_db(lineorders: usize) -> Arc<Database> {
    let d = Database::new();
    ssb::load_ssb(&d, &ssb::SsbConfig { lineorders, seed: 11, partition_rows: 256 });
    Arc::new(d)
}

#[test]
fn verify_adl_corpus_full_lattice() {
    let db = adl_db(150);
    let lattice = JsoniqLattice::full(4);
    for q in adl::queries::queries("hep") {
        let report = verify_jsoniq(&db, &q.jsoniq, &lattice);
        assert_agrees(&format!("adl {}", q.id), &report);
    }
}

#[test]
fn verify_ssb_corpus_sql_lattice() {
    // SSB expresses joins as successive `for` clauses, so the *raw* plan is a
    // literal cross product — quadratic-plus in data size and infeasible at
    // corpus scale. The scaled corpus therefore runs {strategies} ×
    // {optimized, threads 1/2/4}; the optimizer on/off axis is exercised by
    // the ADL corpus, the random stream, and the tiny-scale Q1.1 run below.
    // The interpreter (also cross-product row-at-a-time) is likewise reserved
    // for the tiny-scale run.
    let db = ssb_db(2000);
    let mut lattice = JsoniqLattice::full(4).without_interpreter();
    lattice.sql.retain(|c| c.optimize);
    for q in ssb::queries() {
        let report = verify_jsoniq(&db, &q.jsoniq, &lattice);
        assert_agrees(&format!("ssb {}", q.id), &report);
    }
}

#[test]
fn verify_ssb_q1_1_against_interpreter() {
    let db = ssb_db(200);
    let q = ssb::query("q1.1");
    let report = verify_jsoniq(&db, &q.jsoniq, &JsoniqLattice::full(2));
    assert_agrees("ssb q1.1 (interpreted)", &report);
}

#[test]
fn verify_random_queries_across_lattice() {
    let n: usize = std::env::var("SNOWQ_VERIFY_RANDOM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let db = adl_db(120);
    let schema = adl_schema("hep");
    let lattice = JsoniqLattice::full(4);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for i in 0..n {
        let q = random_query(&mut rng, &schema);
        let report = verify_jsoniq(&db, &q, &lattice);
        assert_agrees(&format!("random #{i} (seed 0x5eed)"), &report);
    }
}

// ---------------------------------------------------------------------------
// Satellite regressions: oracle cases that diverged before their fixes.
// ---------------------------------------------------------------------------

/// ADL Q7 under the JOIN-based strategy: before the optimizer stopped pushing
/// filters below volatile (SEQ8) projections, the optimized configurations
/// renumbered the left join keys after the jet-pT filter while the correlated
/// right side kept the unfiltered numbering — the histogram gained a row
/// (36 vs. 35) and bin 4.0 counted 69 instead of 70.
#[test]
fn verify_adl_q7_join_strategy_seq8_regression() {
    let db = adl_db(150);
    let q = adl::queries::queries("hep").into_iter().find(|q| q.id == "q7").unwrap();
    let report = verify_jsoniq(&db, &q.jsoniq, &JsoniqLattice::full(4));
    assert_agrees("adl q7 (SEQ8 pushdown regression)", &report);
}

/// Minimal SQL-level form of the same bug: a filter above a projection that
/// computes `SEQ8()` must not move below it — pushing it renumbers the rows,
/// so the optimized plan returned RIDs 0,1,2,... where the raw plan returned
/// 0,2,4,...
#[test]
fn verify_seq8_numbering_survives_filter_pushdown() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("ID", ColumnType::Int)],
        (0..32).map(|i| vec![Variant::Int(i)]),
        8,
    )
    .unwrap();
    let report = verify_sql(
        &d,
        "SELECT RID FROM (SELECT *, SEQ8() AS RID FROM t) WHERE ID % 2 = 0",
        &default_lattice(4),
        DEFAULT_EPSILON,
    )
    .unwrap();
    assert_agrees("SEQ8 below filter", &report);
}

/// A predicate that can raise a runtime error must not move below a non-outer
/// flatten: the flatten drops rows whose array is empty, so the unpushed plan
/// never evaluates the predicate on them. Row ID = 0 carries an empty array —
/// unpushed, `10 / ID` is never computed for it; pushed, the whole query dies
/// with a division-by-zero error only under the optimized configurations.
#[test]
fn verify_error_predicate_stays_above_flatten() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("XS", ColumnType::Variant),
        ],
        (0..16).map(|i| {
            let xs: Vec<Variant> = if i == 0 {
                Vec::new()
            } else {
                (0..(i % 3 + 1)).map(Variant::Int).collect()
            };
            vec![Variant::Int(i), Variant::array(xs)]
        }),
        4,
    )
    .unwrap();
    let report = verify_sql(
        &d,
        "SELECT F.VALUE FROM t, LATERAL FLATTEN(INPUT => XS) AS F WHERE 10 / ID > 0",
        &default_lattice(2),
        DEFAULT_EPSILON,
    )
    .unwrap();
    assert_agrees("error predicate below flatten", &report);
}

/// NULL-sensitive predicates and outer flattens: `IFF`/`IS NULL` conjuncts
/// must observe the post-flatten row. The lattice must agree both when the
/// predicate touches the NULL-extended flatten output (never pushable) and
/// when a NULL-sensitive predicate over input columns meets an OUTER flatten
/// (the conservative gate keeps it above).
#[test]
fn verify_null_sensitive_predicates_and_outer_flatten() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("XS", ColumnType::Variant),
        ],
        (0..12).map(|i| {
            let xs: Vec<Variant> = (0..(i % 3)).map(Variant::Int).collect();
            vec![Variant::Int(i), Variant::array(xs)]
        }),
        3,
    )
    .unwrap();
    for sql in [
        // Counts the NULL-extended rows the outer flatten preserves.
        "SELECT COUNT(*) FROM t, LATERAL FLATTEN(INPUT => XS, OUTER => TRUE) AS F \
         WHERE F.VALUE IS NULL",
        // NULL-sensitive over input columns, above an outer flatten.
        "SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS, OUTER => TRUE) AS F \
         WHERE IFF(ID IS NULL, FALSE, ID % 2 = 0)",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(2), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
}

/// NaN coherence across the lattice: NaN equals itself and sorts after every
/// number (Snowflake semantics), and the zone-map/filter/aggregate paths must
/// apply the same total order whether or not pruning runs.
#[test]
fn verify_nan_agrees_across_lattice() {
    let d = Database::new();
    // One partition is entirely NaN so zone-map pruning sees NaN min/max.
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("X", ColumnType::Float),
        ],
        (0..24).map(|i| {
            let x = if (8..16).contains(&i) { f64::NAN } else { i as f64 / 2.0 };
            vec![Variant::Int(i), Variant::Float(x)]
        }),
        8,
    )
    .unwrap();
    for sql in [
        "SELECT X FROM t ORDER BY X",
        "SELECT MIN(X), MAX(X), COUNT(*) FROM t WHERE X > 3.0",
        "SELECT X, COUNT(*) FROM t GROUP BY X",
        "SELECT COUNT(*) FROM t WHERE X = X",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(4), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
}

/// Random generation is reproducible: the corpus CI job and a local repro with
/// the same seed must see identical queries.
#[test]
fn verify_random_generator_deterministic() {
    let schema = adl_schema("hep");
    let mut a = StdRng::seed_from_u64(9);
    let mut b = StdRng::seed_from_u64(9);
    for _ in 0..20 {
        assert_eq!(random_query(&mut a, &schema), random_query(&mut b, &schema));
    }
    // And the stream actually varies.
    let mut c = StdRng::seed_from_u64(9);
    let qs: Vec<String> = (0..20).map(|_| random_query(&mut c, &schema)).collect();
    assert!(qs.iter().any(|q| q != &qs[0]));
    // Sanity: gen_range stays in bounds for the shapes used above.
    let mut r = StdRng::seed_from_u64(1);
    for _ in 0..100 {
        let k = r.gen_range(2..8u32);
        assert!((2..8).contains(&k));
    }
}
