//! Corpus runner for the differential verification oracle.
//!
//! Every ADL and SSB query — plus a seeded stream of random queries — executes
//! across the full configuration lattice ({optimizer on/off} × {threads} ×
//! {nested strategy} × {interpreter vs. translated SQL}) and must agree under
//! canonical ordering with epsilon-aware equality. The satellite regression
//! cases at the bottom are divergences this oracle caught; each failed before
//! its fix.
//!
//! On failure the full divergence report is appended to the file named by
//! `SNOWQ_VERIFY_REPORT` (when set) before panicking, so CI can upload it as
//! an artifact. `SNOWQ_VERIFY_RANDOM` overrides the number of random queries
//! (default 40; CI runs 200).

use std::sync::Arc;

use jsoniq_core::verify::gen::{adl_schema, random_query};
use jsoniq_core::verify::{verify_jsoniq, JsoniqLattice};
use rand::{Rng, SeedableRng, StdRng};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::verify::{default_lattice, verify_sql, VerifyReport, DEFAULT_EPSILON};
use snowdb::{Database, Variant};

/// Asserts agreement; on divergence persists the report for CI artifacts and
/// panics with the rendered repro.
fn assert_agrees(tag: &str, report: &VerifyReport) {
    if report.agrees() {
        return;
    }
    let rendered = format!("==== {tag} ====\n{}\n", report.render());
    if let Ok(path) = std::env::var("SNOWQ_VERIFY_REPORT") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = f.write_all(rendered.as_bytes());
        }
    }
    panic!("{rendered}");
}

fn adl_db(events: usize) -> Arc<Database> {
    let d = Database::new();
    adl::generator::load_into(
        &d,
        "hep",
        &adl::AdlConfig { events, seed: 1234, partition_rows: 64 },
    );
    Arc::new(d)
}

fn ssb_db(lineorders: usize) -> Arc<Database> {
    let d = Database::new();
    ssb::load_ssb(&d, &ssb::SsbConfig { lineorders, seed: 11, partition_rows: 256 });
    Arc::new(d)
}

#[test]
fn verify_adl_corpus_full_lattice() {
    let db = adl_db(150);
    let lattice = JsoniqLattice::full(4);
    for q in adl::queries::queries("hep") {
        let report = verify_jsoniq(&db, &q.jsoniq, &lattice);
        assert_agrees(&format!("adl {}", q.id), &report);
    }
}

#[test]
fn verify_ssb_corpus_sql_lattice() {
    // SSB expresses joins as successive `for` clauses, so the *unoptimized*
    // plan is a literal cross product — quadratic-plus in data size and
    // infeasible at this scale. This scaled run covers {strategies} ×
    // {optimized, threads 1/2/4}; the optimizer-off and interpreter axes run
    // the SAME full corpus at tiny scale in
    // `verify_ssb_tiny_corpus_full_lattice` below, so no lattice axis is
    // skipped — only run at reduced scale.
    let db = ssb_db(2000);
    let mut lattice = JsoniqLattice::full(4).without_interpreter();
    lattice.sql.retain(|c| c.optimize);
    for q in ssb::queries() {
        let report = verify_jsoniq(&db, &q.jsoniq, &lattice);
        assert_agrees(&format!("ssb {}", q.id), &report);
    }
}

/// The full 13-query SSB corpus across the COMPLETE lattice — optimizer off,
/// interpreter, every strategy and thread count. Runs on the FK-closed tiny
/// generator whose worst-case cross product (~69 k intermediate rows) stays
/// feasible for the raw nested-loop plans, so the optimize=false axis is
/// genuinely executed rather than silently dropped.
#[test]
fn verify_ssb_tiny_corpus_full_lattice() {
    let d = Database::new();
    ssb::load_ssb_tiny(&d, &ssb::SsbConfig { partition_rows: 8, ..Default::default() });
    let db = Arc::new(d);
    let lattice = JsoniqLattice::full(4);
    for q in ssb::queries() {
        let report = verify_jsoniq(&db, &q.jsoniq, &lattice);
        assert_agrees(&format!("ssb tiny {}", q.id), &report);
    }
}

#[test]
fn verify_ssb_q1_1_against_interpreter() {
    let db = ssb_db(200);
    let q = ssb::query("q1.1");
    let report = verify_jsoniq(&db, &q.jsoniq, &JsoniqLattice::full(2));
    assert_agrees("ssb q1.1 (interpreted)", &report);
}

#[test]
fn verify_random_queries_across_lattice() {
    let n: usize = std::env::var("SNOWQ_VERIFY_RANDOM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let db = adl_db(120);
    let schema = adl_schema("hep");
    let lattice = JsoniqLattice::full(4);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for i in 0..n {
        let q = random_query(&mut rng, &schema);
        let report = verify_jsoniq(&db, &q, &lattice);
        assert_agrees(&format!("random #{i} (seed 0x5eed)"), &report);
    }
}

// ---------------------------------------------------------------------------
// Satellite regressions: oracle cases that diverged before their fixes.
// ---------------------------------------------------------------------------

/// ADL Q7 under the JOIN-based strategy: before the optimizer stopped pushing
/// filters below volatile (SEQ8) projections, the optimized configurations
/// renumbered the left join keys after the jet-pT filter while the correlated
/// right side kept the unfiltered numbering — the histogram gained a row
/// (36 vs. 35) and bin 4.0 counted 69 instead of 70.
#[test]
fn verify_adl_q7_join_strategy_seq8_regression() {
    let db = adl_db(150);
    let q = adl::queries::queries("hep").into_iter().find(|q| q.id == "q7").unwrap();
    let report = verify_jsoniq(&db, &q.jsoniq, &JsoniqLattice::full(4));
    assert_agrees("adl q7 (SEQ8 pushdown regression)", &report);
}

/// Minimal SQL-level form of the same bug: a filter above a projection that
/// computes `SEQ8()` must not move below it — pushing it renumbers the rows,
/// so the optimized plan returned RIDs 0,1,2,... where the raw plan returned
/// 0,2,4,...
#[test]
fn verify_seq8_numbering_survives_filter_pushdown() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("ID", ColumnType::Int)],
        (0..32).map(|i| vec![Variant::Int(i)]),
        8,
    )
    .unwrap();
    let report = verify_sql(
        &d,
        "SELECT RID FROM (SELECT *, SEQ8() AS RID FROM t) WHERE ID % 2 = 0",
        &default_lattice(4),
        DEFAULT_EPSILON,
    )
    .unwrap();
    assert_agrees("SEQ8 below filter", &report);
}

/// A predicate that can raise a runtime error must not move below a non-outer
/// flatten: the flatten drops rows whose array is empty, so the unpushed plan
/// never evaluates the predicate on them. Row ID = 0 carries an empty array —
/// unpushed, `10 / ID` is never computed for it; pushed, the whole query dies
/// with a division-by-zero error only under the optimized configurations.
#[test]
fn verify_error_predicate_stays_above_flatten() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("XS", ColumnType::Variant),
        ],
        (0..16).map(|i| {
            let xs: Vec<Variant> = if i == 0 {
                Vec::new()
            } else {
                (0..(i % 3 + 1)).map(Variant::Int).collect()
            };
            vec![Variant::Int(i), Variant::array(xs)]
        }),
        4,
    )
    .unwrap();
    let report = verify_sql(
        &d,
        "SELECT F.VALUE FROM t, LATERAL FLATTEN(INPUT => XS) AS F WHERE 10 / ID > 0",
        &default_lattice(2),
        DEFAULT_EPSILON,
    )
    .unwrap();
    assert_agrees("error predicate below flatten", &report);
}

/// NULL-sensitive predicates and outer flattens: `IFF`/`IS NULL` conjuncts
/// must observe the post-flatten row. The lattice must agree both when the
/// predicate touches the NULL-extended flatten output (never pushable) and
/// when a NULL-sensitive predicate over input columns meets an OUTER flatten
/// (the conservative gate keeps it above).
#[test]
fn verify_null_sensitive_predicates_and_outer_flatten() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("XS", ColumnType::Variant),
        ],
        (0..12).map(|i| {
            let xs: Vec<Variant> = (0..(i % 3)).map(Variant::Int).collect();
            vec![Variant::Int(i), Variant::array(xs)]
        }),
        3,
    )
    .unwrap();
    for sql in [
        // Counts the NULL-extended rows the outer flatten preserves.
        "SELECT COUNT(*) FROM t, LATERAL FLATTEN(INPUT => XS, OUTER => TRUE) AS F \
         WHERE F.VALUE IS NULL",
        // NULL-sensitive over input columns, above an outer flatten.
        "SELECT ID FROM t, LATERAL FLATTEN(INPUT => XS, OUTER => TRUE) AS F \
         WHERE IFF(ID IS NULL, FALSE, ID % 2 = 0)",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(2), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
}

/// NaN coherence across the lattice: NaN equals itself and sorts after every
/// number (Snowflake semantics), and the zone-map/filter/aggregate paths must
/// apply the same total order whether or not pruning runs.
#[test]
fn verify_nan_agrees_across_lattice() {
    let d = Database::new();
    // One partition is entirely NaN so zone-map pruning sees NaN min/max.
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("X", ColumnType::Float),
        ],
        (0..24).map(|i| {
            let x = if (8..16).contains(&i) { f64::NAN } else { i as f64 / 2.0 };
            vec![Variant::Int(i), Variant::Float(x)]
        }),
        8,
    )
    .unwrap();
    for sql in [
        "SELECT X FROM t ORDER BY X",
        "SELECT MIN(X), MAX(X), COUNT(*) FROM t WHERE X > 3.0",
        "SELECT X, COUNT(*) FROM t GROUP BY X",
        "SELECT COUNT(*) FROM t WHERE X = X",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(4), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
}

/// Integer/float comparison is exact beyond 2^53: before `cmp_i64_f64`, the
/// compare path coerced `i64 as f64`, so 2^53 and 2^53+1 compared equal —
/// filters, DISTINCT and GROUP BY all disagreed with exact integer semantics
/// around the mantissa boundary. Every value here straddles that boundary.
#[test]
fn verify_large_int_float_comparison_is_exact() {
    const P53: i64 = 1 << 53;
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("N", ColumnType::Variant),
        ],
        [
            Variant::Int(P53),
            Variant::Int(P53 + 1),
            Variant::Float(P53 as f64),
            Variant::Int(i64::MAX),
            Variant::Float(9.007199254740993e15),
            Variant::Int(-P53 - 1),
            Variant::Float(-(P53 as f64)),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, n)| vec![Variant::Int(i as i64), n]),
        2,
    )
    .unwrap();
    for sql in [
        format!("SELECT ID FROM t WHERE N = {}.0", P53),
        format!("SELECT ID FROM t WHERE N > {}", P53),
        "SELECT COUNT(DISTINCT N) FROM t".to_string(),
        "SELECT N, COUNT(*) FROM t GROUP BY N".to_string(),
        "SELECT ID FROM t ORDER BY N, ID".to_string(),
    ] {
        let report = verify_sql(&d, &sql, &default_lattice(4), DEFAULT_EPSILON).unwrap();
        assert_agrees(&sql, &report);
    }
    // The exact-compare fix itself (not just lattice agreement): Int(2^53+1)
    // must not equal the float 2^53. Matching rows are Int(2^53), Float(2^53),
    // and the 9.007199254740993e15 literal (which rounds to 2^53 as an f64).
    let r = d
        .query(&format!("SELECT COUNT(*) FROM t WHERE N = {}.0", P53))
        .unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(3), "Int(2^53+1) must not match Float(2^53)");
}

/// Float group keys at the 2^63 boundary: the old guard `f <= i64::MAX as f64`
/// admitted 9223372036854775808.0 (which rounds to 2^63), so `f as i64`
/// saturated and the float silently shared a group with `Int(i64::MAX)` —
/// while `=` said they differ. The fixed `Key::of_f64` keeps eq ⇔ same key,
/// including -0.0/0.0 unification and NaN self-equality.
#[test]
fn verify_float_group_keys_at_i64_boundary() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("K", ColumnType::Variant),
        ],
        [
            Variant::Int(i64::MAX),
            Variant::Float(9.223372036854776e18), // 2^63 as a float
            Variant::Int(i64::MIN),
            Variant::Float(-9.223372036854776e18), // exactly -2^63: unifies
            Variant::Float(0.0),
            Variant::Float(-0.0),
            Variant::Int(0),
            Variant::Float(f64::NAN),
            Variant::Float(f64::NAN),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, k)| vec![Variant::Int(i as i64), k]),
        3,
    )
    .unwrap();
    for sql in [
        "SELECT K, COUNT(*) FROM t GROUP BY K",
        "SELECT COUNT(DISTINCT K) FROM t",
        "SELECT COUNT(*) FROM t a, t b WHERE a.K = b.K",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(4), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
    // 2^63-as-float must NOT group with Int(i64::MAX); -2^63 must unify with
    // Int(i64::MIN); ±0.0 and Int(0) share one group; the two NaNs share one.
    let r = d.query("SELECT COUNT(DISTINCT K) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Variant::Int(5));
}

/// Drifting ingest: a column declared Int that later receives fractional,
/// out-of-range, or non-numeric values must promote to Variant and preserve
/// every value exactly — the old `ColumnData::push` silently truncated 7.5 to
/// 7 and stored strings as NULL, so results depended on partition layout.
#[test]
fn verify_drifting_column_ingest_promotes_not_truncates() {
    let d = Database::new();
    d.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("X", ColumnType::Int)],
        [
            Variant::Int(1),
            Variant::Float(7.5),
            Variant::Int(3),
            Variant::Float(9.223372036854776e18),
            Variant::from("drift"),
            Variant::Float(4.0), // integral: stays lossless in an Int column
            Variant::Null,
        ]
        .into_iter()
        .map(|x| vec![x]),
        2,
    )
    .unwrap();
    for sql in [
        "SELECT X FROM t",
        "SELECT COUNT(*) FROM t WHERE X = 7.5",
        "SELECT SUM(X) FROM t WHERE X < 100",
        "SELECT X, COUNT(*) FROM t GROUP BY X",
    ] {
        let report = verify_sql(&d, sql, &default_lattice(4), DEFAULT_EPSILON).unwrap();
        assert_agrees(sql, &report);
    }
    // The exact values survive ingest: 7.5 is still 7.5, the string is still
    // a string, and nothing collapsed to NULL.
    let r = d.query("SELECT X FROM t").unwrap();
    let got: Vec<&Variant> = r.rows.iter().map(|row| &row[0]).collect();
    assert!(got.iter().any(|v| matches!(v, Variant::Float(f) if *f == 7.5)));
    assert!(got.iter().any(|v| matches!(v, Variant::Str(s) if &**s == "drift")));
    assert_eq!(got.iter().filter(|v| v.is_null()).count(), 1);
}

/// Random generation is reproducible: the corpus CI job and a local repro with
/// the same seed must see identical queries.
#[test]
fn verify_random_generator_deterministic() {
    let schema = adl_schema("hep");
    let mut a = StdRng::seed_from_u64(9);
    let mut b = StdRng::seed_from_u64(9);
    for _ in 0..20 {
        assert_eq!(random_query(&mut a, &schema), random_query(&mut b, &schema));
    }
    // And the stream actually varies.
    let mut c = StdRng::seed_from_u64(9);
    let qs: Vec<String> = (0..20).map(|_| random_query(&mut c, &schema)).collect();
    assert!(qs.iter().any(|q| q != &qs[0]));
    // Sanity: gen_range stays in bounds for the shapes used above.
    let mut r = StdRng::seed_from_u64(1);
    for _ in 0..100 {
        let k = r.gen_range(2..8u32);
        assert!((2..8).contains(&k));
    }
}
