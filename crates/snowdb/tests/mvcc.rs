//! MVCC snapshot isolation under concurrency, chaos, and an interpreter
//! oracle.
//!
//! The contract under test, end to end:
//! - N writer threads and M reader threads share one [`Database`]: readers
//!   always observe an invariant-preserving committed version (writers only
//!   commit row groups that keep `SUM(x) = 0` and `COUNT(*)` even), and a
//!   pinned snapshot answers repeated reads identically;
//! - every writer outcome is a commit or a *typed* error
//!   ([`SnowError::WriteConflict`] after bounded retries, `Storage`/`Internal`
//!   under injected faults) — never a panic, a hang, or a torn catalog;
//! - interleaved multi-writer commit schedules under seeded
//!   `ManifestCommit/{prepare,rename,publish}` fault sites (crash-mid-CAS
//!   included) never lose a committed version: whatever a writer saw commit
//!   is present after reopening the directory;
//! - `UPDATE`/`DELETE` copy-on-write rewrites agree with a row-by-row
//!   interpreter oracle across a seeded randomized workload, and the
//!   verification lattice still agrees afterwards;
//! - the advisory `LOCK` file turns a second writer *process* into a typed
//!   error, breaks stale locks from dead processes, and never blocks
//!   read-only opens.
//!
//! `SNOWQ_MVCC_SCHEDULES` overrides the seeded-schedule budget (default 25;
//! the CI mvcc job runs 200).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

use rand::{Rng, SeedableRng, StdRng};
use snowdb::govern::chaos::{ChaosSchedule, CHAOS_PANIC_MARKER};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::verify::{default_lattice, verify_sql, DEFAULT_EPSILON};
use snowdb::{Database, Session, SnowError, StatementResult, Variant};

/// Silences the default panic printout for *injected* chaos panics only.
fn install_chaos_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MARKER) {
                prev(info);
            }
        }));
    });
}

/// A fresh per-test scratch directory, removed on drop.
struct TempDb(std::path::PathBuf);

impl TempDb {
    fn new(tag: &str) -> TempDb {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("snowdb-mvcc-{}-{tag}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDb(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn schedule_budget() -> usize {
    std::env::var("SNOWQ_MVCC_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn msg(r: StatementResult) -> String {
    match r {
        StatementResult::Message(m) => m,
        other => panic!("expected message, got {other:?}"),
    }
}

fn int(v: &Variant) -> i64 {
    match v {
        Variant::Int(n) => *n,
        Variant::Null => 0,
        other => panic!("expected int, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// N writers × M readers over one shared database
// ---------------------------------------------------------------------------

/// Writers insert (and sometimes delete) zero-sum row pairs in disjoint key
/// ranges; readers continuously assert the zero-sum invariant and that a
/// pinned snapshot is repeat-read stable. Every writer statement must end in
/// a commit or a typed write conflict.
fn run_writer_reader_stress(db: Arc<Database>, writers: usize, readers: usize, ops: usize) {
    db.execute("CREATE TABLE ledger (w INT, x INT)").unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut checks = 0usize;
                while !stop.load(Ordering::Relaxed) || checks == 0 {
                    // Invariant on the live catalog: committed versions only.
                    let res = db
                        .query("SELECT sum(x), count(*) FROM ledger")
                        .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    assert_eq!(int(&res.rows[0][0]), 0, "reader {r}: torn zero-sum read");
                    assert_eq!(int(&res.rows[0][1]) % 2, 0, "reader {r}: odd row count");
                    // Repeat-read stability inside a pinned snapshot.
                    let session = Session::new(db.clone());
                    session.execute("BEGIN").unwrap();
                    let a = session.query("SELECT count(*), sum(x) FROM ledger").unwrap();
                    let b = session.query("SELECT count(*), sum(x) FROM ledger").unwrap();
                    assert_eq!(a.rows, b.rows, "reader {r}: snapshot not repeat-read stable");
                    session.execute("ROLLBACK").unwrap();
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conflicts = 0usize;
                for k in 0..ops {
                    let v = (w * ops + k + 1) as i64;
                    // A zero-sum pair commits atomically or not at all.
                    let ins = db.execute(&format!(
                        "INSERT INTO ledger VALUES ({w}, {v}), ({w}, {neg})",
                        neg = -v
                    ));
                    match ins {
                        Ok(_) => {}
                        Err(SnowError::WriteConflict(_)) => conflicts += 1,
                        Err(e) => panic!("writer {w}: untyped insert failure: {e:?}"),
                    }
                    if k % 3 == 2 {
                        // Delete one of our own pairs: removes both rows of a
                        // pair or (on conflict) nothing.
                        let prev = (w * ops + k) as i64;
                        match db.execute(&format!(
                            "DELETE FROM ledger WHERE w = {w} AND (x = {prev} OR x = {neg})",
                            neg = -prev
                        )) {
                            Ok(_) => {}
                            Err(SnowError::WriteConflict(_)) => conflicts += 1,
                            Err(e) => panic!("writer {w}: untyped delete failure: {e:?}"),
                        }
                    }
                }
                conflicts
            })
        })
        .collect();

    for h in writer_handles {
        h.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        let checks = h.join().expect("reader panicked");
        assert!(checks > 0, "reader made no checks");
    }

    let res = db.query("SELECT sum(x), count(*) FROM ledger").unwrap();
    assert_eq!(int(&res.rows[0][0]), 0, "final state must be zero-sum");
    assert_eq!(int(&res.rows[0][1]) % 2, 0, "final row count must be even");
}

#[test]
fn concurrent_writers_and_readers_in_memory() {
    run_writer_reader_stress(Arc::new(Database::new()), 4, 2, 12);
}

#[test]
fn concurrent_writers_and_readers_on_disk() {
    let tmp = TempDb::new("stress");
    let db = Arc::new(Database::open(tmp.path()).unwrap());
    run_writer_reader_stress(db.clone(), 3, 2, 8);
    let expect = db.query("SELECT count(*) FROM ledger").unwrap();
    drop(db);
    // Everything that committed survives a reopen, bit for bit.
    let reopened = Database::open(tmp.path()).unwrap();
    let got = reopened.query("SELECT count(*) FROM ledger").unwrap();
    assert_eq!(got.rows, expect.rows);
    assert_eq!(
        int(&reopened.query("SELECT sum(x) FROM ledger").unwrap().rows[0][0]),
        0
    );
}

// ---------------------------------------------------------------------------
// Interleaved multi-writer chaos lattice (crash-mid-CAS included)
// ---------------------------------------------------------------------------

/// Seeded schedule sweep: three writers race inserts while a deterministic
/// fault schedule strikes the manifest commit path at `prepare`, `rename`,
/// and `publish` (the crash-after-commit-point site). Every writer outcome
/// is a commit or a typed error; after the storm, a reopened database holds
/// every pair whose commit was acknowledged, the zero-sum invariant, and no
/// debris.
#[test]
fn interleaved_writer_chaos_never_loses_a_committed_version() {
    install_chaos_hook();
    let budget = schedule_budget();
    for i in 0..budget {
        let seed = 0x14CC_u64 + i as u64;
        let tmp = TempDb::new("lattice");
        let db = Arc::new(Database::open(tmp.path()).unwrap());
        db.execute("CREATE TABLE ledger (w INT, x INT)").unwrap();
        let store = db.store().unwrap();
        store.set_chaos(Some(ChaosSchedule::with_period(seed, 1 + seed % 7)));

        let handles: Vec<_> = (0..3u64)
            .map(|w| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut acked: Vec<i64> = Vec::new();
                    for k in 0..4u64 {
                        let v = (w * 100 + k + 1) as i64;
                        match db.execute(&format!(
                            "INSERT INTO ledger VALUES ({w}, {v}), ({w}, {neg})",
                            neg = -v
                        )) {
                            Ok(_) => acked.push(v),
                            Err(
                                SnowError::WriteConflict(_)
                                | SnowError::Storage(_)
                                | SnowError::Internal(_),
                            ) => {}
                            Err(e) => panic!("seed {seed}: untyped writer failure: {e:?}"),
                        }
                    }
                    acked
                })
            })
            .collect();
        let acked: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("seed panicked writer"))
            .collect();
        store.set_chaos(None);
        drop(db);

        // Crash recovery: reopen and audit.
        let reopened = Database::open(tmp.path())
            .unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
        let rows = reopened
            .query("SELECT x FROM ledger")
            .unwrap_or_else(|e| panic!("seed {seed}: read-back failed: {e}"));
        let present: std::collections::BTreeSet<i64> =
            rows.rows.iter().map(|r| int(&r[0])).collect();
        for v in &acked {
            assert!(
                present.contains(v) && present.contains(&-v),
                "seed {seed}: acknowledged commit of pair ±{v} was lost"
            );
        }
        let sum: i64 = rows.rows.iter().map(|r| int(&r[0])).sum();
        assert_eq!(sum, 0, "seed {seed}: torn pair visible after recovery");
        assert_eq!(rows.rows.len() % 2, 0, "seed {seed}: odd row count");
        assert!(
            rows.rows.len() >= acked.len() * 2,
            "seed {seed}: fewer rows than acknowledged commits"
        );
        // Every file on disk belongs to a live table (debris swept on open).
        let live: usize = reopened
            .table_names()
            .iter()
            .map(|t| reopened.table(t).unwrap().partitions().len())
            .sum();
        let on_disk = std::fs::read_dir(tmp.path().join("parts")).unwrap().count();
        assert_eq!(on_disk, live, "seed {seed}: debris visible after reopen");
    }
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE vs. an interpreter oracle
// ---------------------------------------------------------------------------

/// Seeded randomized DML workload checked against a row-by-row in-process
/// oracle: the same inserts/updates/deletes applied to a plain `Vec` model
/// must leave the table with exactly the model's multiset of rows, and the
/// verification lattice must still agree on aggregates afterwards.
#[test]
fn update_delete_agree_with_interpreter_oracle() {
    for case in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD31_u64 + case);
        let db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        let mut model: Vec<(i64, i64)> = Vec::new();
        let mut next_k = 0i64;
        for _step in 0..40 {
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    let n = rng.gen_range(1usize..5);
                    let tuples: Vec<String> = (0..n)
                        .map(|_| {
                            let k = next_k;
                            next_k += 1;
                            let v = rng.gen_range(-50i64..50);
                            model.push((k, v));
                            format!("({k}, {v})")
                        })
                        .collect();
                    let m = msg(db
                        .execute(&format!("INSERT INTO t VALUES {}", tuples.join(", ")))
                        .unwrap());
                    assert_eq!(m, format!("inserted {n} row(s)"));
                }
                5..=7 => {
                    let bound = rng.gen_range(-50i64..50);
                    let delta = rng.gen_range(1i64..10);
                    let m = msg(db
                        .execute(&format!("UPDATE t SET v = v + {delta} WHERE v < {bound}"))
                        .unwrap());
                    let mut n = 0;
                    for row in model.iter_mut() {
                        if row.1 < bound {
                            row.1 += delta;
                            n += 1;
                        }
                    }
                    assert_eq!(m, format!("updated {n} row(s)"), "case {case}");
                }
                _ => {
                    let bound = rng.gen_range(-50i64..50);
                    let m = msg(db
                        .execute(&format!("DELETE FROM t WHERE v >= {bound}"))
                        .unwrap());
                    let before = model.len();
                    model.retain(|row| row.1 < bound);
                    assert_eq!(
                        m,
                        format!("deleted {} row(s)", before - model.len()),
                        "case {case}"
                    );
                }
            }
            // Full-state comparison: the table is exactly the model.
            let got = db.query("SELECT k, v FROM t ORDER BY k").unwrap();
            let got: Vec<(i64, i64)> =
                got.rows.iter().map(|r| (int(&r[0]), int(&r[1]))).collect();
            let mut want = model.clone();
            want.sort_unstable();
            assert_eq!(got, want, "case {case}: table diverged from oracle");
        }
        // The execution-configuration lattice still agrees after rewrites.
        let report = verify_sql(
            &db,
            "SELECT count(*), sum(v), min(k), max(v) FROM t",
            &default_lattice(2),
            DEFAULT_EPSILON,
        )
        .unwrap();
        assert!(report.agrees(), "case {case}: lattice divergence:\n{}", report.render());
    }
}

/// The same COW rewrites, persisted: partitions rewritten by UPDATE/DELETE
/// round-trip through the manifest, and a pinned reader opened before the
/// rewrite still sees the old version (deferred unlink).
#[test]
fn persistent_update_delete_round_trip_and_pinned_readers() {
    let tmp = TempDb::new("cowdisk");
    let db = Database::open(tmp.path()).unwrap();
    db.load_table_with_partition_rows(
        "t",
        vec![ColumnDef::new("K", ColumnType::Int)],
        (0..40).map(|i| vec![Variant::Int(i)]),
        8,
    )
    .unwrap();
    let pinned = db.snapshot();
    assert_eq!(msg(db.execute("DELETE FROM t WHERE k % 4 = 0").unwrap()), "deleted 10 row(s)");
    assert_eq!(msg(db.execute("UPDATE t SET k = k * 10 WHERE k < 10").unwrap()), "updated 7 row(s)");

    // The pinned snapshot still reads the pre-rewrite files.
    let old = pinned.table("t").unwrap();
    assert_eq!(old.row_count(), 40);
    let mut sum = 0i64;
    for part in old.partitions() {
        let col = part.read_column(0).unwrap();
        for r in 0..part.row_count() {
            sum += int(&col.get(r));
        }
    }
    assert_eq!(sum, (0..40).sum::<i64>(), "pinned reader saw rewritten data");

    drop(pinned);
    drop(db);
    let reopened = Database::open(tmp.path()).unwrap();
    assert_eq!(int(&reopened.query("SELECT count(*) FROM t").unwrap().rows[0][0]), 30);
    // The pre-rewrite versions stay retained across the reopen: the old
    // files are history, not debris, and time travel still reads them.
    assert_eq!(
        int(&reopened.query("SELECT count(*) FROM t AT(VERSION => 1)").unwrap().rows[0][0]),
        40
    );
    // Shrinking retention to the current version evicts that history; only
    // then do the rewritten-away files become unreachable and get unlinked.
    reopened.execute("SET DATA_RETENTION_VERSIONS = 1").unwrap();
    let live = reopened.table("t").unwrap().partitions().len();
    let on_disk = std::fs::read_dir(tmp.path().join("parts")).unwrap().count();
    assert_eq!(on_disk, live, "evicted rewrite history must be swept");
}

// ---------------------------------------------------------------------------
// Advisory LOCK file
// ---------------------------------------------------------------------------

#[test]
fn lock_refuses_live_foreign_writer_but_allows_read_only() {
    let tmp = TempDb::new("lock");
    {
        let db = Database::open(tmp.path()).unwrap();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Int)],
            (0..5).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
    }
    // Fake a live foreign holder: PID 1 exists on any Linux box.
    std::fs::write(tmp.path().join("LOCK"), "1\n").unwrap();
    match Database::open(tmp.path()) {
        Err(SnowError::Storage(m)) => {
            assert!(m.contains("database is locked by process 1"), "{m}")
        }
        Err(other) => panic!("expected lock refusal, got {other:?}"),
        Ok(_) => panic!("expected lock refusal, got a database handle"),
    }
    // Read-only open works past the lock, answers queries, refuses writes.
    let ro = Database::open_read_only(tmp.path()).unwrap();
    assert_eq!(int(&ro.query("SELECT sum(a) FROM t").unwrap().rows[0][0]), 10);
    match ro.execute("INSERT INTO t VALUES (9)") {
        Err(SnowError::Storage(m)) => assert!(m.contains("read-only"), "{m}"),
        other => panic!("expected read-only refusal, got {other:?}"),
    }
    match ro.drop_table_checked("t") {
        Err(SnowError::Storage(m)) => assert!(m.contains("read-only"), "{m}"),
        other => panic!("expected read-only refusal, got {other:?}"),
    }
}

#[test]
fn stale_lock_from_dead_process_is_broken() {
    let tmp = TempDb::new("stale");
    {
        let db = Database::open(tmp.path()).unwrap();
        db.load_table(
            "t",
            vec![ColumnDef::new("A", ColumnType::Int)],
            std::iter::once(vec![Variant::Int(7)]),
        )
        .unwrap();
    }
    // PIDs are capped well below this on Linux: guaranteed-dead holder.
    std::fs::write(tmp.path().join("LOCK"), "999999999\n").unwrap();
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(int(&db.query("SELECT a FROM t").unwrap().rows[0][0]), 7);
    // The broken lock was re-taken by this process.
    let holder: u32 = std::fs::read_to_string(tmp.path().join("LOCK"))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(holder, std::process::id());
}

#[test]
fn same_process_reopen_is_allowed() {
    let tmp = TempDb::new("reentrant");
    let a = Database::open(tmp.path()).unwrap();
    a.execute("CREATE TABLE t (x INT)").unwrap();
    // Same-process second open handle: allowed (the lock is per-process).
    let b = Database::open(tmp.path()).unwrap();
    assert_eq!(b.table_names(), vec!["T".to_string()]);
}

// ---------------------------------------------------------------------------
// Write-conflict surface
// ---------------------------------------------------------------------------

/// A conflict that persists past the bounded retry schedule surfaces as a
/// typed `WriteConflict` carrying base/current versions and the attempt
/// count — the diagnosable form of optimistic-concurrency starvation.
#[test]
fn exhausted_retries_surface_a_typed_conflict() {
    let db = Arc::new(Database::new());
    db.load_table(
        "t",
        vec![ColumnDef::new("X", ColumnType::Int)],
        (0..4).map(|i| vec![Variant::Int(i)]),
    )
    .unwrap();
    // Two sessions rewriting the same partition: exactly one COMMIT wins.
    let a = Session::new(db.clone());
    let b = Session::new(db.clone());
    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    a.execute("UPDATE t SET x = x + 10").unwrap();
    b.execute("UPDATE t SET x = x + 20").unwrap();
    a.execute("COMMIT").unwrap();
    match b.execute("COMMIT") {
        Err(SnowError::WriteConflict(trip)) => {
            assert_eq!(trip.table, "T");
            assert!(trip.current_version > trip.base_version, "{trip:?}");
            let rendered = format!("{}", SnowError::WriteConflict(trip));
            assert!(rendered.contains("write conflict on table 'T'"), "{rendered}");
        }
        other => panic!("expected write conflict, got {other:?}"),
    }
    // The database remains fully usable after the conflict.
    assert_eq!(int(&db.query("SELECT min(x) FROM t").unwrap().rows[0][0]), 10);
}
