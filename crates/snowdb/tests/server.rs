//! End-to-end tests for the network service layer: real TCP sockets, one
//! server process-equivalent (in-process `serve`), many concurrent client
//! connections.
//!
//! The acceptance bar (ISSUE 9): ≥ 8 concurrent wire clients mixing readers
//! and writers sustain the PR 8 zero-sum-ledger snapshot-isolation invariant,
//! the global concurrency cap is enforced (excess queries observably queue,
//! none starve), and the server survives client disconnects and graceful
//! shutdown with zero lost committed writes and zero panics.
//!
//! The seeded soak (`seeded_soak_admission_schedules`) replays
//! `SNOWQ_SERVER_SCHEDULES` random arrival/cancel/disconnect interleavings;
//! every failure message carries its schedule seed, so CI's uploaded report
//! is a one-seed repro recipe.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snowdb::server::admission::AdmissionConfig;
use snowdb::server::client::{Client, RemoteOutcome};
use snowdb::server::{serve, ServerConfig, ServerHandle};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::{Database, SnowError, Variant};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn config(max_concurrent: usize, max_queued: usize, queue_timeout: Duration) -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig { max_concurrent, max_queued, queue_timeout },
        ..ServerConfig::default()
    }
}

/// Serves a fresh in-memory database on an ephemeral port.
fn serve_memory(cfg: ServerConfig) -> (Arc<Database>, ServerHandle) {
    let db = Arc::new(Database::new());
    let handle = serve(Arc::clone(&db), "127.0.0.1:0", cfg).expect("bind ephemeral port");
    (db, handle)
}

/// Loads `rows` integers into table `name` so cross joins can make a query
/// arbitrarily slow (the disconnect/cancel tests need statements that are
/// still running when the fault lands).
fn load_big(db: &Database, name: &str, rows: i64) {
    db.load_table(
        name,
        vec![ColumnDef::new("X", ColumnType::Int)],
        (0..rows).map(|i| vec![Variant::Int(i)]),
    )
    .unwrap();
}

/// A query whose runtime scales with `n`² joined rows — slow enough to be
/// mid-flight when a cancel or disconnect arrives, and checkpointed at every
/// batch boundary so cancellation frees the worker promptly.
const SLOW_SQL: &str = "SELECT count(*), sum(a.x + b.x) FROM big a JOIN big b ON 1 = 1";

fn int(v: &Variant) -> i64 {
    match v {
        Variant::Int(n) => *n,
        other => panic!("expected int, got {other:?}"),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Raw-socket helper: handshake manually so tests can then misbehave at the
/// frame level (malformed frames, disconnect mid-query) in ways `Client`
/// refuses to.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    // Hello: version u32 + empty token.
    let mut payload = vec![0x01u8];
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    write_raw_frame(&mut s, &payload);
    let ack = read_raw_frame(&mut s).expect("hello ack");
    assert_eq!(ack[0], 0x81, "expected HelloAck");
    s
}

fn write_raw_frame(s: &mut TcpStream, payload: &[u8]) {
    let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
    buf.extend_from_slice(payload);
    s.write_all(&buf).unwrap();
}

fn read_raw_frame(s: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).ok()?;
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut payload).ok()?;
    Some(payload)
}

fn query_scalar(client: &mut Client, sql: &str) -> i64 {
    match client.execute(sql).unwrap() {
        RemoteOutcome::Rows(r) => int(&r.rows[0][0]),
        other => panic!("expected rows, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Wire basics
// ---------------------------------------------------------------------------

#[test]
fn wire_roundtrip_ddl_dml_query_and_transactions() {
    let (_db, handle) = serve_memory(ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(c.session() > 0);

    match c.execute("CREATE TABLE t (x INT)").unwrap() {
        RemoteOutcome::Message(m) => assert!(m.contains("created"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    match c.execute("SELECT x FROM t ORDER BY x").unwrap() {
        RemoteOutcome::Rows(r) => {
            assert_eq!(r.columns, vec!["X"]);
            let xs: Vec<i64> = r.rows.iter().map(|row| int(&row[0])).collect();
            assert_eq!(xs, vec![1, 2, 3]);
            assert_eq!(r.done.rows, 3);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Session verbs ride the same connection-pinned session.
    c.execute("SET STATEMENT_TIMEOUT_IN_SECONDS = 60").unwrap();
    c.execute("BEGIN").unwrap();
    c.execute("INSERT INTO t VALUES (4)").unwrap();
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM t"), 4, "read-your-own-writes");
    c.execute("ROLLBACK").unwrap();
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM t"), 3, "rollback discards");

    // Typed engine errors arrive as re-decoded SnowErrors; connection stays up.
    match c.execute("SELECT nope FROM t") {
        Err(SnowError::Plan(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM t"), 3);
    c.goodbye();
    handle.shutdown();
}

#[test]
fn large_results_stream_in_batches() {
    let (db, handle) = serve_memory(ServerConfig::default());
    load_big(&db, "n", 1800); // > 3 × the 512-row batch size
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.execute("SELECT x FROM n ORDER BY x").unwrap() {
        RemoteOutcome::Rows(r) => {
            assert_eq!(r.rows.len(), 1800);
            assert_eq!(int(&r.rows[1799][0]), 1799);
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn show_server_status_and_explain_analyze_carry_admission_stats() {
    let (db, handle) = serve_memory(ServerConfig::default());
    load_big(&db, "t", 10);
    let mut c = Client::connect(handle.addr()).unwrap();
    let session = c.session();
    c.execute("SELECT count(*) FROM t").unwrap();

    match c.execute("SHOW SERVER STATUS").unwrap() {
        RemoteOutcome::Rows(r) => {
            assert_eq!(r.columns, vec!["METRIC", "VALUE"]);
            let get = |metric: &str| -> i64 {
                r.rows
                    .iter()
                    .find(|row| matches!(&row[0], Variant::Str(s) if **s == *metric))
                    .map(|row| int(&row[1]))
                    .unwrap_or_else(|| panic!("metric {metric} missing from {:?}", r.rows))
            };
            assert!(get("admission.admitted") >= 1);
            assert_eq!(get("admission.active"), 0, "status bypasses admission");
            assert_eq!(get("panics.isolated"), 0);
            assert!(get(&format!("session.{session}.admitted")) >= 1);
            assert_eq!(get(&format!("session.{session}.rejected")), 0);
        }
        other => panic!("unexpected {other:?}"),
    }

    match c.execute("EXPLAIN ANALYZE SELECT count(*) FROM t").unwrap() {
        RemoteOutcome::Message(m) => {
            assert!(m.contains("admission: queued"), "no admission line in:\n{m}");
            assert!(m.contains(&format!("session {session}:")), "{m}");
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Malformed frames
// ---------------------------------------------------------------------------

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let (_db, handle) = serve_memory(ServerConfig::default());
    let mut s = raw_handshake(handle.addr());
    // Length prefix claims 4 GiB-ish; the server must answer with a typed
    // protocol error (it never allocates for the claimed length) and close.
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.write_all(&[0x02]).unwrap();
    let err = read_raw_frame(&mut s).expect("typed error frame");
    assert_eq!(err[0], 0x86, "expected Error frame, got {:#04x}", err[0]);
    assert!(read_raw_frame(&mut s).is_none(), "connection must close");
    handle.shutdown();
}

#[test]
fn unknown_opcode_and_handshake_replay_get_typed_errors() {
    let (_db, handle) = serve_memory(ServerConfig::default());

    let mut s = raw_handshake(handle.addr());
    write_raw_frame(&mut s, &[0x7F]); // unknown opcode
    let err = read_raw_frame(&mut s).expect("typed error frame");
    assert_eq!(err[0], 0x86);
    assert!(read_raw_frame(&mut s).is_none());

    let mut s = raw_handshake(handle.addr());
    let mut replay = vec![0x01u8];
    replay.extend_from_slice(&1u32.to_le_bytes());
    replay.extend_from_slice(&0u32.to_le_bytes());
    write_raw_frame(&mut s, &replay); // second Hello
    let err = read_raw_frame(&mut s).expect("typed error frame");
    assert_eq!(err[0], 0x86);

    // Bad protocol version fails the handshake itself.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let mut hello = vec![0x01u8];
    hello.extend_from_slice(&99u32.to_le_bytes());
    hello.extend_from_slice(&0u32.to_le_bytes());
    write_raw_frame(&mut s, &hello);
    let err = read_raw_frame(&mut s).expect("typed error frame");
    assert_eq!(err[0], 0x86);
    handle.shutdown();
}

#[test]
fn truncated_payload_is_a_typed_error_not_a_hang() {
    let (_db, handle) = serve_memory(ServerConfig::default());
    let mut s = raw_handshake(handle.addr());
    // Promise 100 bytes, deliver 3, half-close. The server must not wait
    // forever for the rest; it answers typed and closes.
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0x02, 0x01, 0x02]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let err = read_raw_frame(&mut s).expect("typed error frame");
    assert_eq!(err[0], 0x86);
    handle.shutdown();
}

/// Seeded byte-mangling against a live server: random garbage frames (and
/// raw garbage bytes) must never panic the server or wedge it — a fresh
/// well-behaved client must still get service afterwards.
#[test]
fn fuzzed_garbage_never_panics_the_server() {
    let (db, handle) = serve_memory(ServerConfig::default());
    load_big(&db, "t", 5);
    let mut state = 0xF00D_5EEDu64;
    for round in 0..60 {
        let mut s = if round % 2 == 0 {
            // Garbage after a valid handshake exercises the reader loop.
            raw_handshake(handle.addr())
        } else {
            // Garbage instead of a handshake exercises read_hello.
            TcpStream::connect(handle.addr()).unwrap()
        };
        state = splitmix64(state);
        let len = (state % 48) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|i| {
                state = splitmix64(state.wrapping_add(i as u64));
                (state & 0xFF) as u8
            })
            .collect();
        if state % 3 == 0 {
            // Raw bytes, not even a frame.
            let _ = s.write_all(&bytes);
        } else {
            let mut framed = (bytes.len() as u32).to_le_bytes().to_vec();
            framed.extend_from_slice(&bytes);
            let _ = s.write_all(&framed);
        }
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers (error frame or close).
        let mut sink = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.read_to_end(&mut sink);
    }
    assert_eq!(handle.panics_isolated(), 0, "fuzzing must never panic a worker");
    let mut c = Client::connect(handle.addr()).unwrap();
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM t"), 5, "server still serves");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Cancellation and disconnects
// ---------------------------------------------------------------------------

#[test]
fn cancel_frame_interrupts_a_running_statement() {
    let (db, handle) = serve_memory(ServerConfig::default());
    load_big(&db, "big", 4000); // 16M joined rows: comfortably in flight
    let mut c = Client::connect(handle.addr()).unwrap();
    let mut canceller = c.canceller().unwrap();

    let fired = Arc::new(AtomicBool::new(false));
    let fired2 = Arc::clone(&fired);
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        canceller.cancel().unwrap();
        fired2.store(true, Ordering::SeqCst);
    });
    let started = Instant::now();
    let outcome = c.execute(SLOW_SQL);
    t.join().unwrap();
    match outcome {
        Err(SnowError::Cancelled { .. }) => {
            assert!(fired.load(Ordering::SeqCst));
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "cancel must interrupt within batch granularity"
            );
        }
        Ok(_) => panic!("query finished before the cancel landed; grow the table"),
        Err(e) => panic!("expected Cancelled, got {e:?}"),
    }
    // The connection survives a cancelled statement.
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM big WHERE x < 10"), 10);
    handle.shutdown();
}

#[test]
fn client_disconnect_mid_query_cancels_governor_and_reclaims_slot() {
    let (db, handle) = serve_memory(config(1, 4, Duration::from_secs(30)));
    load_big(&db, "big", 4000);

    let s = raw_handshake(handle.addr());
    let mut s = s;
    let mut q = vec![0x02u8];
    q.extend_from_slice(&(SLOW_SQL.len() as u32).to_le_bytes());
    q.extend_from_slice(SLOW_SQL.as_bytes());
    write_raw_frame(&mut s, &q);
    // Let the statement get admitted and start executing, then vanish.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.admission_stats().active == 0 {
        assert!(Instant::now() < deadline, "statement never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(s);

    // The reader observes EOF, trips the governor, and — this is the part
    // that matters with max_concurrent = 1 — the slot comes back.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.admission_stats().active != 0 {
        assert!(
            Instant::now() < deadline,
            "slot never reclaimed after disconnect: {:?}",
            handle.admission_stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.disconnect_cancels() >= 1, "disconnect must be counted as a cancel");

    // With the slot reclaimed, a new client gets service immediately.
    let mut c = Client::connect(handle.addr()).unwrap();
    assert_eq!(query_scalar(&mut c, "SELECT count(*) FROM big WHERE x < 7"), 7);
    assert_eq!(handle.panics_isolated(), 0);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Concurrency: cap, queueing, fairness, ledger invariant
// ---------------------------------------------------------------------------

/// The acceptance test: 10 concurrent wire clients (6 writers, 4 readers)
/// against one server with a concurrency cap of 4. Writers insert (and
/// sometimes delete) zero-sum pairs; readers assert the invariant both on
/// autocommit reads and inside pinned `BEGIN` snapshots — all over TCP.
#[test]
fn eight_plus_clients_sustain_ledger_invariant_under_cap() {
    let (db, handle) = serve_memory(config(4, 128, Duration::from_secs(60)));
    {
        let mut admin = Client::connect(handle.addr()).unwrap();
        admin.execute("CREATE TABLE ledger (w INT, x INT)").unwrap();
        admin.goodbye();
    }

    const WRITERS: usize = 6;
    const READERS: usize = 4;
    const OPS: usize = 25;
    let stop = Arc::new(AtomicBool::new(false));
    let acked_pairs = Arc::new(AtomicU64::new(0));

    let addr = handle.addr();
    let reader_handles: Vec<_> = (0..READERS)
        .map(|r| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut checks = 0usize;
                while !stop.load(Ordering::Relaxed) || checks == 0 {
                    match c.execute("SELECT sum(x), count(*) FROM ledger").unwrap() {
                        RemoteOutcome::Rows(res) => {
                            let sum = match &res.rows[0][0] {
                                Variant::Null => 0, // empty table: SUM is NULL
                                v => int(v),
                            };
                            assert_eq!(sum, 0, "reader {r}: torn zero-sum read over the wire");
                            assert_eq!(int(&res.rows[0][1]) % 2, 0, "reader {r}: odd row count");
                        }
                        other => panic!("reader {r}: {other:?}"),
                    }
                    // Repeat-read stability inside a wire-level transaction.
                    c.execute("BEGIN").unwrap();
                    let a = c.execute("SELECT count(*), sum(x) FROM ledger").unwrap();
                    let b = c.execute("SELECT count(*), sum(x) FROM ledger").unwrap();
                    match (a, b) {
                        (RemoteOutcome::Rows(a), RemoteOutcome::Rows(b)) => {
                            assert_eq!(a.rows, b.rows, "reader {r}: snapshot unstable over wire")
                        }
                        other => panic!("reader {r}: {other:?}"),
                    }
                    c.execute("ROLLBACK").unwrap();
                    checks += 1;
                }
                c.goodbye();
                checks
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let acked = Arc::clone(&acked_pairs);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for k in 0..OPS {
                    let v = (w * OPS + k + 1) as i64;
                    match c.execute(&format!(
                        "INSERT INTO ledger VALUES ({w}, {v}), ({w}, {neg})",
                        neg = -v
                    )) {
                        Ok(_) => {
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        // A lost CAS race is a typed, retriable failure; the
                        // pair is guaranteed not committed.
                        Err(SnowError::WriteConflict(_)) => {}
                        Err(e) => panic!("writer {w}: untyped failure over wire: {e:?}"),
                    }
                    if k % 3 == 2 {
                        let prev = (w * OPS + k) as i64;
                        match c.execute(&format!(
                            "DELETE FROM ledger WHERE w = {w} AND (x = {prev} OR x = {neg})",
                            neg = -prev
                        )) {
                            Ok(RemoteOutcome::Message(m)) => {
                                // The engine reports how many rows went; a
                                // deleted pair removes exactly 0 or 2 rows.
                                if m.contains("deleted 2") {
                                    acked.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            Ok(other) => panic!("writer {w}: {other:?}"),
                            Err(SnowError::WriteConflict(_)) => {}
                            Err(e) => panic!("writer {w}: untyped failure over wire: {e:?}"),
                        }
                    }
                }
                c.goodbye();
            })
        })
        .collect();

    for h in writer_handles {
        h.join().expect("writer thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        assert!(h.join().expect("reader thread panicked") > 0, "reader made no checks");
    }

    // Zero lost committed writes: every acked pair (minus acked deletions)
    // is present, zero-sum, in the shared database.
    let res = db.query("SELECT sum(x), count(*) FROM ledger").unwrap();
    assert_eq!(int(&res.rows[0][0]), 0, "final ledger must be zero-sum");
    assert_eq!(
        int(&res.rows[0][1]),
        acked_pairs.load(Ordering::Relaxed) as i64 * 2,
        "acked-over-the-wire pairs must all be present (zero lost committed writes)"
    );

    let stats = handle.admission_stats();
    assert!(stats.peak_active <= 4, "concurrency cap violated: {stats:?}");
    assert!(stats.peak_queued >= 1, "10 clients over cap 4 must observably queue: {stats:?}");
    assert_eq!(stats.rejected, 0, "no statement may starve into rejection: {stats:?}");
    assert_eq!(stats.active, 0);
    assert_eq!(stats.queued, 0);
    assert_eq!(handle.panics_isolated(), 0, "zero panics");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

#[test]
fn graceful_shutdown_drains_in_flight_and_aborts_queued_typed() {
    let mut cfg = config(1, 8, Duration::from_secs(60));
    // A short drain window forces the trip-the-governors path: the slow
    // in-flight query (seconds of work) cannot finish in 300ms, so shutdown
    // must cancel it typed rather than hang on it.
    cfg.drain_timeout = Duration::from_millis(300);
    let (db, handle) = serve_memory(cfg);
    load_big(&db, "big", 4000);
    db.execute("CREATE TABLE acked (x INT)").unwrap();

    let addr = handle.addr();
    // A committed write before shutdown must survive it.
    let mut admin = Client::connect(addr).unwrap();
    admin.execute("INSERT INTO acked VALUES (42)").unwrap();
    admin.goodbye();

    // Occupy the single slot with a slow query...
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.execute("SELECT count(*) FROM big a JOIN big b ON 1 = 1")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.admission_stats().active == 0 {
        assert!(Instant::now() < deadline, "slow query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...and queue another statement behind it.
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.execute("SELECT count(*) FROM big")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.admission_stats().queued == 0 {
        assert!(Instant::now() < deadline, "second query never queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    handle.shutdown();

    // The queued statement was aborted with a typed rejection.
    match queued.join().unwrap() {
        Err(SnowError::Rejected(t)) => assert_eq!(t.reason, "server shutting down"),
        other => panic!("queued statement: expected typed rejection, got {other:?}"),
    }
    // The in-flight one either drained to completion or was cancelled typed
    // at the drain deadline — never a panic, never a protocol tear.
    match in_flight.join().unwrap() {
        Ok(RemoteOutcome::Rows(r)) => assert_eq!(r.done.rows, 1),
        Err(SnowError::Cancelled { .. }) | Err(SnowError::Protocol(_)) => {}
        other => panic!("in-flight statement: {other:?}"),
    }

    // Zero lost committed writes: the pre-shutdown commit is still there.
    assert_eq!(
        db.query_scalar("SELECT count(*) FROM acked").unwrap(),
        Variant::Int(1),
        "committed write lost across shutdown"
    );
}

// ---------------------------------------------------------------------------
// Seeded soak: random arrival / cancel / disconnect interleavings
// ---------------------------------------------------------------------------

/// Environment-scaled schedule count (CI soaks 200 via
/// `SNOWQ_SERVER_SCHEDULES`; the default keeps tier-1 fast).
fn schedule_budget() -> usize {
    std::env::var("SNOWQ_SERVER_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

#[test]
fn seeded_soak_admission_schedules() {
    let schedules = schedule_budget();
    for i in 0..schedules {
        let seed = 0xA5EED_0000u64 + i as u64;
        run_soak_schedule(seed);
    }
}

/// One seeded schedule: 5 wire clients take seed-determined actions (insert
/// pairs, read, cancel mid-query, disconnect abruptly) against a server with
/// a tight cap. Afterwards the ledger must be zero-sum, the admission state
/// drained, and the server panic-free. Every assertion carries the seed.
fn run_soak_schedule(seed: u64) {
    let (db, handle) = serve_memory(config(2, 32, Duration::from_secs(60)));
    db.execute("CREATE TABLE ledger (w INT, x INT)").unwrap();
    load_big(&db, "big", 800);

    let addr = handle.addr();
    let clients: Vec<_> = (0..5u64)
        .map(|client_id| {
            std::thread::spawn(move || {
                let mut state = splitmix64(seed ^ (client_id.wrapping_mul(0x9E37)));
                let mut c = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => panic!("seed {seed:#x} client {client_id}: connect: {e}"),
                };
                for op in 0..8 {
                    state = splitmix64(state);
                    match state % 5 {
                        0 | 1 => {
                            let v = (client_id * 100 + op + 1) as i64;
                            match c.execute(&format!(
                                "INSERT INTO ledger VALUES ({client_id}, {v}), ({client_id}, {neg})",
                                neg = -v
                            )) {
                                Ok(_) | Err(SnowError::WriteConflict(_)) => {}
                                Err(SnowError::Rejected(_)) => {}
                                Err(e) => panic!(
                                    "seed {seed:#x} client {client_id} op {op}: insert: {e:?}"
                                ),
                            }
                        }
                        2 => match c.execute("SELECT sum(x) FROM ledger") {
                            Ok(RemoteOutcome::Rows(r)) => {
                                let sum = match &r.rows[0][0] {
                                    Variant::Null => 0,
                                    v => int(v),
                                };
                                assert_eq!(
                                    sum, 0,
                                    "seed {seed:#x} client {client_id}: torn read"
                                );
                            }
                            Ok(other) => {
                                panic!("seed {seed:#x} client {client_id}: {other:?}")
                            }
                            Err(SnowError::Rejected(_)) => {}
                            Err(e) => {
                                panic!("seed {seed:#x} client {client_id}: read: {e:?}")
                            }
                        },
                        3 => {
                            // Cancel a slow query mid-flight.
                            let mut canceller = c.canceller().unwrap();
                            let delay = 20 + (state % 80);
                            let t = std::thread::spawn(move || {
                                std::thread::sleep(Duration::from_millis(delay));
                                let _ = canceller.cancel();
                            });
                            match c.execute("SELECT count(*) FROM big a JOIN big b ON 1 = 1") {
                                Ok(_)
                                | Err(SnowError::Cancelled { .. })
                                | Err(SnowError::Rejected(_)) => {}
                                Err(e) => panic!(
                                    "seed {seed:#x} client {client_id} op {op}: cancel path: {e:?}"
                                ),
                            }
                            t.join().unwrap();
                        }
                        _ => {
                            // Abrupt disconnect mid-query, then reconnect.
                            let mut s = raw_handshake(addr);
                            let sql = "SELECT count(*) FROM big a JOIN big b ON 1 = 1";
                            let mut q = vec![0x02u8];
                            q.extend_from_slice(&(sql.len() as u32).to_le_bytes());
                            q.extend_from_slice(sql.as_bytes());
                            write_raw_frame(&mut s, &q);
                            std::thread::sleep(Duration::from_millis(10 + (state % 50)));
                            drop(s);
                        }
                    }
                }
                c.goodbye();
            })
        })
        .collect();

    for t in clients {
        t.join().unwrap_or_else(|_| panic!("seed {seed:#x}: client thread panicked"));
    }

    // Every slot must come back (disconnected queries free via their tripped
    // governors within one batch boundary).
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.admission_stats().active != 0 {
        assert!(
            Instant::now() < deadline,
            "seed {seed:#x}: admission slots leaked: {:?}",
            handle.admission_stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.panics_isolated(), 0, "seed {seed:#x}: worker panicked");

    let res = db.query("SELECT sum(x), count(*) FROM ledger").unwrap();
    let sum = match &res.rows[0][0] {
        Variant::Null => 0,
        v => int(v),
    };
    assert_eq!(sum, 0, "seed {seed:#x}: final ledger not zero-sum");
    assert_eq!(int(&res.rows[0][1]) % 2, 0, "seed {seed:#x}: odd final row count");
    handle.shutdown();
}
