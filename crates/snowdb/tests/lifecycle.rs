//! Storage lifecycle end to end: time travel, zero-copy clones, `UNDROP`,
//! streaming micro-commit ingest, background compaction, and the
//! retention-aware GC that ties them together.
//!
//! The contract under test:
//! - `AT(VERSION => n)` / `BEFORE(VERSION => n)` read exactly the named
//!   retained version — across process restarts, because the manifest
//!   retains the last `DATA_RETENTION_VERSIONS` committed versions;
//! - a version outside the retention window is a *typed* error
//!   (`SnowError::Storage`), a version never committed a typed `Catalog`
//!   error — never a panic, never a wrong answer;
//! - `CREATE TABLE ... CLONE` writes zero partition bytes and diverges from
//!   its source copy-on-write; `UNDROP TABLE` restores a dropped table from
//!   retained history, surviving restarts;
//! - a background compactor merging streaming-ingest micro-partitions never
//!   changes query results (the verification lattice still agrees) and loses
//!   commit races gracefully;
//! - GC never unlinks a file any retained version or pinned snapshot still
//!   references, under seeded chaos schedules that crash commits and GC
//!   unlinks mid-flight — after reopen, every retained version is fully
//!   scannable (the lose-nothing audit).
//!
//! `SNOWQ_LIFECYCLE_SCHEDULES` overrides the seeded-schedule budget
//! (default 25; the CI lifecycle job runs 200).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

use rand::{Rng, SeedableRng, StdRng};
use snowdb::govern::chaos::{ChaosSchedule, CHAOS_PANIC_MARKER};
use snowdb::storage::{ColumnDef, ColumnType};
use snowdb::store::{compact_table_once, CompactionPolicy, Compactor};
use snowdb::verify::{default_lattice, verify_sql, DEFAULT_EPSILON};
use snowdb::{Database, SnowError, StatementResult, Variant};

/// Silences the default panic printout for *injected* chaos panics only.
fn install_chaos_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MARKER) {
                prev(info);
            }
        }));
    });
}

/// A fresh per-test scratch directory, removed on drop.
struct TempDb(std::path::PathBuf);

impl TempDb {
    fn new(tag: &str) -> TempDb {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("snowdb-lifecycle-{}-{tag}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDb(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn parts(&self) -> std::path::PathBuf {
        self.0.join("parts")
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn schedule_budget() -> usize {
    std::env::var("SNOWQ_LIFECYCLE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn msg(r: StatementResult) -> String {
    match r {
        StatementResult::Message(m) => m,
        other => panic!("expected message, got {other:?}"),
    }
}

fn int(v: &Variant) -> i64 {
    match v {
        Variant::Int(n) => *n,
        Variant::Null => 0,
        other => panic!("expected int, got {other:?}"),
    }
}

fn count(db: &Database, sql: &str) -> i64 {
    int(&db.query(sql).unwrap().rows[0][0])
}

/// File count and total size of the partition directory.
fn parts_usage(dir: &std::path::Path) -> (usize, u64) {
    let mut files = 0usize;
    let mut bytes = 0u64;
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        files += 1;
        bytes += entry.metadata().unwrap().len();
    }
    (files, bytes)
}

/// Reads every row of every partition of every table at every retained
/// version — the lose-nothing audit. Panics on any unreadable file.
fn audit_all_retained(db: &Database) {
    let store = db.store().expect("persistent database");
    for v in store.retained_versions() {
        for name in store.table_names_at(v).unwrap() {
            let t = store
                .open_table_at(v, &name)
                .unwrap_or_else(|e| panic!("version {v} table {name}: {e}"))
                .expect("listed table must open");
            for part in t.partitions() {
                if part.row_count() == 0 {
                    continue;
                }
                let col = part.read_column(0).unwrap_or_else(|e| {
                    panic!("version {v} table {name}: unreadable partition: {e}")
                });
                for r in 0..part.row_count() {
                    let _ = col.get(r);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Time travel: AT / BEFORE
// ---------------------------------------------------------------------------

#[test]
fn time_travel_reads_retained_versions_in_memory() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k INT)").unwrap(); // v1
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap(); // v2
    db.execute("UPDATE t SET k = k * 10").unwrap(); // v3
    db.execute("DELETE FROM t WHERE k = 20").unwrap(); // v4

    assert_eq!(count(&db, "SELECT count(*) FROM t"), 1);
    assert_eq!(count(&db, "SELECT count(*) FROM t AT(VERSION => 1)"), 0);
    assert_eq!(count(&db, "SELECT sum(k) FROM t AT(VERSION => 2)"), 3);
    assert_eq!(count(&db, "SELECT sum(k) FROM t AT(VERSION => 3)"), 30);
    // BEFORE(n) is the version immediately preceding n.
    assert_eq!(count(&db, "SELECT sum(k) FROM t BEFORE(VERSION => 3)"), 3);
    // Joining a table with its own past works (both sides pin versions).
    let r = db
        .query(
            "SELECT a.k, b.k FROM t a JOIN t AT(VERSION => 2) b ON a.k = b.k * 10 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Variant::Int(10), Variant::Int(1)]]);

    // A version that has not been committed is a typed catalog error.
    match db.query("SELECT * FROM t AT(VERSION => 99)") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("not been committed"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // BEFORE(VERSION => 0) has no predecessor.
    match db.query("SELECT * FROM t BEFORE(VERSION => 0)") {
        Err(SnowError::Plan(m)) => assert!(m.contains("predecessor"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // A table that did not exist at the version is a typed catalog error.
    db.execute("CREATE TABLE late (x INT)").unwrap();
    match db.query("SELECT * FROM late AT(VERSION => 1)") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("did not exist"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// The headline regression: write, rewrite, **reopen the directory**, and
/// time travel still scans the pre-rewrite files. Before retention-aware GC,
/// the reopen sweep (which compared against the newest manifest version
/// only) unlinked them.
#[test]
fn retention_preserves_time_travel_across_restart() {
    let tmp = TempDb::new("restart");
    {
        let db = Database::open(tmp.path()).unwrap();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("K", ColumnType::Int)],
            (0..20).map(|i| vec![Variant::Int(i)]),
            4,
        )
        .unwrap(); // v1
        db.execute("UPDATE t SET k = k + 1000").unwrap(); // v2 rewrites every partition
        assert_eq!(count(&db, "SELECT sum(k) FROM t AT(VERSION => 1)"), 190);
    }
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.snapshot().version(), 2);
    // Current version reads rewritten data; version 1 the originals.
    assert_eq!(count(&db, "SELECT sum(k) FROM t"), 190 + 20 * 1000);
    assert_eq!(count(&db, "SELECT sum(k) FROM t AT(VERSION => 1)"), 190);
    assert_eq!(count(&db, "SELECT min(k) FROM t BEFORE(VERSION => 2)"), 0);
    audit_all_retained(&db);
}

#[test]
fn retention_shrink_evicts_history_with_typed_errors() {
    let tmp = TempDb::new("shrink");
    let db = Database::open(tmp.path()).unwrap();
    db.execute("CREATE TABLE t (k INT)").unwrap(); // v1
    for i in 0..4 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap(); // v2..v5
    }
    assert_eq!(count(&db, "SELECT count(*) FROM t AT(VERSION => 2)"), 1);
    // Shrink the window to 2 versions: v5 (current) + one back — the SET is
    // itself a commit, so the window becomes {v5, v6}.
    msg(db.execute("SET DATA_RETENTION_VERSIONS = 2").unwrap());
    assert_eq!(db.retention(), 2);
    match db.query("SELECT count(*) FROM t AT(VERSION => 2)") {
        Err(SnowError::Storage(m)) => {
            assert!(m.contains("retention window"), "{m}")
        }
        other => panic!("unexpected {other:?}"),
    }
    // Zero is rejected: the current version is always retained.
    match db.execute("SET DATA_RETENTION_VERSIONS = 0") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("at least 1"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // The window is durable: a reopen still refuses evicted versions.
    drop(db);
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.retention(), 2);
    assert!(matches!(
        db.query("SELECT count(*) FROM t AT(VERSION => 2)"),
        Err(SnowError::Storage(_))
    ));
    audit_all_retained(&db);
}

// ---------------------------------------------------------------------------
// Zero-copy clone
// ---------------------------------------------------------------------------

#[test]
fn clone_is_zero_copy_and_diverges_copy_on_write() {
    let tmp = TempDb::new("clone");
    let db = Database::open(tmp.path()).unwrap();
    db.load_table_with_partition_rows(
        "src",
        vec![ColumnDef::new("K", ColumnType::Int)],
        (0..32).map(|i| vec![Variant::Int(i)]),
        8,
    )
    .unwrap();
    db.execute("UPDATE src SET k = k + 100 WHERE k < 8").unwrap(); // v2

    let before = parts_usage(&tmp.parts());
    msg(db.execute("CREATE TABLE snap CLONE src").unwrap());
    msg(db.execute("CREATE TABLE old CLONE src AT(VERSION => 1)").unwrap());
    let after = parts_usage(&tmp.parts());
    assert_eq!(before, after, "clones must write zero partition bytes");

    // The clones read their pinned contents...
    assert_eq!(count(&db, "SELECT sum(k) FROM snap"), count(&db, "SELECT sum(k) FROM src"));
    assert_eq!(count(&db, "SELECT sum(k) FROM old"), (0..32).sum::<i64>());
    // ...and DML on a clone never leaks into the source (copy-on-write).
    db.execute("DELETE FROM snap WHERE k >= 100").unwrap();
    db.execute("UPDATE old SET k = 0 WHERE k < 16").unwrap();
    assert_eq!(count(&db, "SELECT count(*) FROM src"), 32);
    assert_eq!(count(&db, "SELECT sum(k) FROM src WHERE k >= 100"), (100..108).sum::<i64>());
    assert_eq!(count(&db, "SELECT count(*) FROM snap"), 24);
    assert_eq!(count(&db, "SELECT sum(k) FROM old"), (16..32).sum::<i64>());

    // Cloning over an existing name is a typed error; a missing source too.
    assert!(matches!(
        db.execute("CREATE TABLE snap CLONE src"),
        Err(SnowError::Catalog(_))
    ));
    assert!(matches!(
        db.execute("CREATE TABLE x CLONE nosuch"),
        Err(SnowError::Catalog(_))
    ));

    // Clones are durable and stay divergent across a restart.
    drop(db);
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(count(&db, "SELECT count(*) FROM src"), 32);
    assert_eq!(count(&db, "SELECT count(*) FROM snap"), 24);
    assert_eq!(count(&db, "SELECT sum(k) FROM old"), (16..32).sum::<i64>());
}

// ---------------------------------------------------------------------------
// UNDROP
// ---------------------------------------------------------------------------

#[test]
fn undrop_restores_dropped_table_across_restart() {
    let tmp = TempDb::new("undrop");
    {
        let db = Database::open(tmp.path()).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        assert!(db.table("t").is_none());
    }
    // The drop survived the restart — and so did the history to undo it.
    let db = Database::open(tmp.path()).unwrap();
    assert!(db.table("t").is_none());
    let m = msg(db.execute("UNDROP TABLE t").unwrap());
    assert!(m.contains("undropped"), "{m}");
    assert_eq!(count(&db, "SELECT sum(k) FROM t"), 6);

    // UNDROP of a live table is a typed error; so is one never created.
    match db.execute("UNDROP TABLE t") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("already exists"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    match db.execute("UNDROP TABLE ghost") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("retained"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }

    // Once retention evicts the pre-drop version, UNDROP is gone too.
    db.execute("DROP TABLE t").unwrap();
    db.execute("SET DATA_RETENTION_VERSIONS = 1").unwrap();
    assert!(matches!(db.execute("UNDROP TABLE t"), Err(SnowError::Catalog(_))));
}

#[test]
fn undrop_works_in_memory_too() {
    let db = Database::new();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    db.execute("DROP TABLE t").unwrap();
    msg(db.execute("UNDROP TABLE t").unwrap());
    assert_eq!(count(&db, "SELECT sum(k) FROM t"), 7);
}

// ---------------------------------------------------------------------------
// Read-only readers vs. a writer's GC
// ---------------------------------------------------------------------------

#[test]
fn read_only_reader_is_never_wrong_after_writer_eviction() {
    let tmp = TempDb::new("ro");
    let writer = Database::open(tmp.path()).unwrap();
    writer
        .load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("K", ColumnType::Int)],
            (0..16).map(|i| vec![Variant::Int(i)]),
            4,
        )
        .unwrap(); // v1
    writer.execute("UPDATE t SET k = k + 100").unwrap(); // v2

    // A read-only reader sees the committed state and can time travel
    // within the retention window.
    let reader = Database::open_read_only(tmp.path()).unwrap();
    assert_eq!(count(&reader, "SELECT sum(k) FROM t AT(VERSION => 1)"), 120);

    // The writer now churns versions and shrinks retention: version 1 is
    // evicted and its files unlinked (the reader process's pins are
    // invisible across processes — retention is the cross-process contract).
    writer.execute("SET DATA_RETENTION_VERSIONS = 1").unwrap();
    for i in 0..3 {
        writer.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }

    // The stale reader either still answers from its pinned metadata (the
    // file content it already cached) or fails *typed* — never panics,
    // never returns wrong rows.
    match reader.query("SELECT sum(k) FROM t AT(VERSION => 1)") {
        Ok(r) => assert_eq!(int(&r.rows[0][0]), 120, "stale reader returned wrong rows"),
        Err(SnowError::Storage(_)) => {}
        Err(other) => panic!("eviction must surface as Storage, got {other:?}"),
    }

    // A *fresh* read-only open sees the truth: version 1 is simply outside
    // the retention window — a typed Storage error.
    let fresh = Database::open_read_only(tmp.path()).unwrap();
    match fresh.query("SELECT sum(k) FROM t AT(VERSION => 1)") {
        Err(SnowError::Storage(m)) => assert!(m.contains("retention window"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Streaming micro-commit ingest
// ---------------------------------------------------------------------------

#[test]
fn streaming_ingest_commits_consistent_prefixes() {
    let tmp = TempDb::new("ingest");
    let db = Database::open(tmp.path()).unwrap();
    db.execute("CREATE TABLE events (id INT, tag STRING)").unwrap();
    let v0 = db.snapshot().version();

    let mut ing = db.stream_ingest("events", 5).unwrap();
    for i in 0..23 {
        ing.push_json(&format!("{{\"id\": {i}, \"tag\": \"t{}\"}}", i % 3)).unwrap();
        // Mid-stream, readers only ever see whole batches.
        assert_eq!(ing.committed_rows() as i64, count(&db, "SELECT count(*) FROM events"));
    }
    let report = ing.finish().unwrap();
    assert_eq!(report.rows, 23);
    assert_eq!(report.commits, 5, "4 full batches + 1 partial");
    assert_eq!(db.snapshot().version(), v0 + 5);
    assert_eq!(count(&db, "SELECT count(*) FROM events"), 23);
    assert_eq!(count(&db, "SELECT sum(id) FROM events"), (0..23).sum::<i64>());

    // Missing keys load as NULL; unknown keys are typed errors.
    let mut ing = db.stream_ingest("events", 2).unwrap();
    ing.push_json("{\"id\": 99}").unwrap();
    match ing.push_json("{\"id\": 100, \"nope\": 1}") {
        Err(SnowError::Catalog(m)) => assert!(m.contains("unknown key 'nope'"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    let report = ing.finish().unwrap();
    assert_eq!(report.rows, 1);
    assert_eq!(count(&db, "SELECT count(*) FROM events WHERE tag IS NULL"), 1);

    // Ingest into a missing table is a typed error up front.
    assert!(matches!(db.stream_ingest("nosuch", 5), Err(SnowError::Catalog(_))));

    // Durability: all micro-commits survive a reopen.
    drop(db);
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(count(&db, "SELECT count(*) FROM events"), 24);
}

// ---------------------------------------------------------------------------
// Background compaction vs. live ingest and pinned readers
// ---------------------------------------------------------------------------

#[test]
fn compaction_preserves_results_and_pinned_readers() {
    let tmp = TempDb::new("compact");
    let db = Database::open(tmp.path()).unwrap();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    let mut ing = db.stream_ingest("t", 4).unwrap();
    for i in 0..40 {
        ing.push_json(&format!("{{\"k\": {i}}}")).unwrap();
    }
    ing.finish().unwrap();
    let parts_before = db.table("t").unwrap().partitions().len();
    assert_eq!(parts_before, 10);

    // Pin the pre-compaction snapshot, then compact with re-clustering.
    let pinned = db.snapshot();
    let policy = CompactionPolicy {
        small_rows: 64,
        target_rows: 1000,
        min_inputs: 2,
        cluster_by: Some("K".into()),
    };
    let report = compact_table_once(&db, "t", &policy).unwrap().unwrap();
    assert_eq!(report.inputs, 10);
    assert_eq!(report.outputs, 1);
    assert_eq!(count(&db, "SELECT sum(k) FROM t"), (0..40).sum::<i64>());
    assert_eq!(count(&db, "SELECT count(*) FROM t"), 40);

    // The pinned reader still scans the 10 pre-compaction partitions.
    let old = pinned.table("t").unwrap();
    assert_eq!(old.partitions().len(), 10);
    let mut sum = 0i64;
    for part in old.partitions() {
        let col = part.read_column(0).unwrap();
        for r in 0..part.row_count() {
            sum += int(&col.get(r));
        }
    }
    assert_eq!(sum, (0..40).sum::<i64>());

    // Compaction is invisible to time travel: the pre-compaction version
    // still reads identically after a restart.
    drop(pinned);
    drop(db);
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.table("t").unwrap().partitions().len(), 1);
    audit_all_retained(&db);
}

#[test]
fn compactor_vs_continuous_ingest_never_changes_results() {
    let tmp = TempDb::new("race");
    let db = Arc::new(Database::open(tmp.path()).unwrap());
    db.execute("CREATE TABLE ledger (k INT, x INT)").unwrap();

    let policy = CompactionPolicy {
        small_rows: 32,
        target_rows: 256,
        min_inputs: 2,
        cluster_by: Some("K".into()),
    };
    let compactor =
        Compactor::spawn(db.clone(), "ledger", policy, std::time::Duration::from_millis(1));

    // Zero-sum pairs in micro-commits; readers must always see SUM = 0 and
    // an even row count, no matter how the compactor interleaves.
    let mut ing = db.stream_ingest("ledger", 4).unwrap();
    for i in 0..150 {
        ing.push_json(&format!("{{\"k\": {i}, \"x\": {}}}", i + 1)).unwrap();
        ing.push_json(&format!("{{\"k\": {i}, \"x\": {}}}", -(i + 1))).unwrap();
        let sum = count(&db, "SELECT sum(x) FROM ledger");
        let rows = count(&db, "SELECT count(*) FROM ledger");
        assert_eq!(sum, 0, "reader saw a torn ledger (sum {sum}, rows {rows})");
        assert_eq!(rows % 2, 0, "reader saw a torn ledger (odd row count {rows})");
    }
    ing.finish().unwrap();

    // Let the compactor catch up on the tail, then stop it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while db.table("ledger").unwrap().partitions().len() > 4
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = compactor.stop();
    assert!(stats.passes > 0);
    assert!(stats.compactions > 0, "compactor never won a pass: {stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");

    assert_eq!(count(&db, "SELECT count(*) FROM ledger"), 300);
    assert_eq!(count(&db, "SELECT sum(x) FROM ledger"), 0);
    // The verification lattice agrees on the final state across optimizer /
    // thread / vectorize / encode configurations.
    let report = verify_sql(
        &db,
        "SELECT k, sum(x) AS s, count(*) AS c FROM ledger GROUP BY k ORDER BY k",
        &default_lattice(4),
        DEFAULT_EPSILON,
    )
    .unwrap();
    assert!(report.agrees(), "{}", report.render());

    // Nothing reachable was lost along the way.
    audit_all_retained(&db);
}

// ---------------------------------------------------------------------------
// Seeded chaos: GC vs. time travel, crash-mid-sweep
// ---------------------------------------------------------------------------

/// Random writer/time-travel interleavings with fault injection on the
/// commit *and* GC-unlink paths. Every operation ends in a correct answer or
/// a typed error, and after the storm every retained version is fully
/// scannable from a fresh reopen.
#[test]
fn gc_vs_time_travel_under_seeded_chaos() {
    install_chaos_hook();
    let budget = schedule_budget();
    for schedule in 0..budget {
        let seed = 0x11FE_C7C1_u64 ^ (schedule as u64).wrapping_mul(0x9E37_79B9);
        let mut rng = StdRng::seed_from_u64(seed);
        let tmp = TempDb::new("gcchaos");
        {
            let db = Database::open(tmp.path()).unwrap();
            db.execute("SET DATA_RETENTION_VERSIONS = 3").unwrap();
            db.execute("CREATE TABLE t (k INT)").unwrap();
            for i in 0..3 {
                db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            let store = db.store().unwrap();
            store.set_chaos(Some(ChaosSchedule::with_period(seed, 3)));
            for step in 0..14 {
                match rng.gen_range(0u32..4) {
                    0 => match db.execute(&format!("INSERT INTO t VALUES ({step})")) {
                        Ok(_)
                        | Err(SnowError::Storage(_))
                        | Err(SnowError::Internal(_))
                        | Err(SnowError::WriteConflict(_)) => {}
                        Err(other) => panic!("untyped writer failure: {other:?}"),
                    },
                    1 => match db.execute("UPDATE t SET k = k + 1 WHERE k % 3 = 0") {
                        Ok(_)
                        | Err(SnowError::Storage(_))
                        | Err(SnowError::Internal(_))
                        | Err(SnowError::WriteConflict(_)) => {}
                        Err(other) => panic!("untyped writer failure: {other:?}"),
                    },
                    _ => {
                        // Time travel to a random (possibly just-evicted)
                        // version: a count or a typed error, never a panic.
                        let vs = store.retained_versions();
                        let v = vs[rng.gen_range(0..vs.len())].saturating_sub(rng.gen_range(0..3));
                        match db.query(&format!("SELECT count(*) FROM t AT(VERSION => {v})")) {
                            Ok(r) => assert!(int(&r.rows[0][0]) >= 0),
                            Err(SnowError::Storage(_))
                            | Err(SnowError::Catalog(_))
                            | Err(SnowError::Plan(_)) => {}
                            Err(other) => panic!("untyped travel failure: {other:?}"),
                        }
                    }
                }
            }
            store.set_chaos(None);
        }
        // Lose-nothing audit from a fresh process-equivalent reopen.
        let db = Database::open(tmp.path()).unwrap();
        audit_all_retained(&db);
        let total = count(&db, "SELECT count(*) FROM t");
        assert!(total >= 3, "committed rows lost (schedule {schedule}: {total})");
    }
}

/// Crash-mid-retention-truncation: faults injected at the GC unlink site
/// defer the unlink (simulating a crash that left the file behind); the
/// next commit — or the reopen sweep — must converge to exactly the
/// retained file set without ever touching a reachable file.
#[test]
fn crash_mid_gc_unlink_converges_on_reopen() {
    install_chaos_hook();
    let budget = schedule_budget().min(40);
    for schedule in 0..budget {
        let seed = 0x6C1F_E235_u64 ^ (schedule as u64).wrapping_mul(0x517C_C1B7);
        let tmp = TempDb::new("gccrash");
        {
            let db = Database::open(tmp.path()).unwrap();
            db.execute("SET DATA_RETENTION_VERSIONS = 2").unwrap();
            db.load_table_with_partition_rows(
                "t",
                vec![ColumnDef::new("K", ColumnType::Int)],
                (0..12).map(|i| vec![Variant::Int(i)]),
                3,
            )
            .unwrap();
            let store = db.store().unwrap();
            // Aggressive schedule: every few GC unlinks "crashes".
            store.set_chaos(Some(ChaosSchedule::with_period(seed, 2)));
            for round in 0..6 {
                // Full rewrites churn files through the retention window.
                let _ = db.execute(&format!("UPDATE t SET k = k + {}", round + 1));
            }
            store.set_chaos(None);
        }
        let db = Database::open(tmp.path()).unwrap();
        audit_all_retained(&db);
        // After the reopen sweep, parts/ holds exactly the retained files.
        let store = db.store().unwrap();
        let mut retained: std::collections::HashSet<String> = Default::default();
        for v in store.retained_versions() {
            for name in store.table_names_at(v).unwrap() {
                let t = store.open_table_at(v, &name).unwrap().unwrap();
                for part in t.partitions() {
                    if let snowdb::storage::ScanSource::Disk(d) = part.as_ref() {
                        retained.insert(d.file_name());
                    }
                }
            }
        }
        let on_disk: std::collections::HashSet<String> = std::fs::read_dir(tmp.parts())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(on_disk, retained, "schedule {schedule}: sweep did not converge");
    }
}
