//! Morsel-parallel batched execution.
//!
//! The serial executor in [`super`] materializes every operator's full result
//! as one [`Chunk`]. This module replaces that at query time with a
//! partition-parallel physical pipeline:
//!
//! - every operator produces an ordered list of batches (≤ [`BATCH_ROWS`]
//!   rows each) instead of one whole-table chunk;
//! - `Scan → Filter → Project` chains are *fused*: each worker claims a
//!   micro-partition from the work-stealing [`crate::storage::morsel`]
//!   dispatcher, materializes it in batches, and pushes each batch through
//!   the fused stages before claiming more work;
//! - filter/project/flatten over non-scan inputs map over batches in
//!   parallel; aggregate, join and sort are pipeline breakers that build
//!   thread-local partial state merged at the barrier;
//! - every operator updates the [`OpMetricsCell`] of its
//!   [`PhysNode`](crate::plan::physical::PhysNode), producing the
//!   per-operator metrics tree reported in
//!   [`QueryProfile`](crate::engine::QueryProfile).
//!
//! # Determinism contract
//!
//! Parallel execution must be *byte-identical* to serial execution:
//!
//! - all merges happen in partition/batch index order (the dispatcher hands
//!   out indices, results are reassembled sorted by index);
//! - `SEQ8()` gets its counter base per batch from a prefix sum over the
//!   input batch row counts, so row ids match the serial row order exactly;
//!   the same prefix-sum scheme gives `FLATTEN`'s `SEQ` column its parent row
//!   index;
//! - aggregate partials merge in batch order ([`Accumulator::merge`]), which
//!   preserves first-seen group order and first-among-ties semantics;
//!   `SUM`/`AVG` fold serially over the ordered batches because float
//!   addition is not associative;
//! - when several batches fail, the error with the lowest batch index wins —
//!   the one serial execution would have reported;
//! - volatile expressions outside projections (a `SEQ8()` in a filter or join
//!   condition) fall back to the serial reference implementation.
//!
//! # Vectorized execution
//!
//! Batches are columnar ([`ColumnVec`]), and when `ctx.vectorize` is on
//! (default; `SNOWDB_VECTORIZE=0` disables) each operator first offers its
//! expressions to the typed kernels in [`super::kernel`]. Kernels only accept
//! *infallible* expression shapes, so a successful vectorized evaluation is
//! value-identical to the serial row loop; everything else — and every row of
//! a batch whose expressions decline — runs on the row-at-a-time Variant
//! path. Both outcomes are counted per operator (`rows_vectorized` /
//! `rows_fallback`, rendered as `vec=` by `EXPLAIN ANALYZE`).
//!
//! When `ctx.encode` is on, scans hand encoded (dictionary / run-length)
//! blocks into the pipeline unchanged and the kernels evaluate
//! equality/`IN` filters and group keys directly on dictionary codes,
//! materializing strings only at operator boundaries that need them. Rows
//! evaluated on codes vs. materialized are counted per operator
//! (`rows_on_codes` / `rows_materialized`, rendered as `enc=` by
//! `EXPLAIN ANALYZE`).

use std::collections::HashMap;
use std::time::Instant;

use crate::error::{Result, SnowError};
use crate::plan::physical::PhysNode;
use crate::plan::{AggExpr, AggKind, NodeKind, PExpr, SortKey};
use crate::sql::JoinKind;
use crate::storage::morsel::try_parallel_indexed_governed;
use crate::variant::{Key, Variant};

use super::agg::{column_eligible, Accumulator};
use super::column::ColumnVec;
use super::kernel::{eval_vec, eval_vec_counted, mask_keep};
use super::metrics::OpMetricsCell;
use super::{
    cmp_sort_values, eval, join_chunks, split_join_on, truth, Chunk, ExecCtx, RowView,
};

/// Target rows per batch. Matches the default micro-partition size so a
/// partition usually maps to one batch.
pub const BATCH_ROWS: usize = 4096;

/// Executes a physical plan to completion, returning the ordered batch list.
///
/// Scan statistics accumulate into `ctx.stats` exactly as under the serial
/// executor (per-worker stats are summed, so `bytes_scanned` and partition
/// counts are identical for any thread count).
pub fn execute_physical(p: &PhysNode<'_>, ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    match &p.logical.kind {
        NodeKind::Values => {
            p.metrics.add_output(1, 1);
            Ok(vec![Chunk { cols: Vec::new(), rows: 1 }])
        }
        NodeKind::Scan { .. } => exec_scan(p, &[], ctx),
        NodeKind::Filter { .. } | NodeKind::Project { .. } => {
            if let Some((scan, stages)) = fused_chain(p) {
                exec_scan(scan, &stages, ctx)
            } else {
                match &p.logical.kind {
                    NodeKind::Filter { pred, .. } => exec_filter(p, pred, ctx),
                    NodeKind::Project { exprs, .. } => exec_project(p, exprs, ctx),
                    _ => unreachable!(),
                }
            }
        }
        NodeKind::Flatten { expr, outer, .. } => exec_flatten(p, expr, *outer, ctx),
        NodeKind::Aggregate { groups, aggs, .. } => exec_aggregate(p, groups, aggs, ctx),
        NodeKind::Join { kind, on, .. } => exec_join(p, *kind, on, ctx),
        NodeKind::Sort { keys, .. } => exec_sort(p, keys, ctx),
        NodeKind::Limit { n, .. } => exec_limit(p, *n, ctx),
        NodeKind::UnionAll { .. } => exec_union(p, ctx),
        NodeKind::Distinct { .. } => exec_distinct(p, ctx),
    }
}

/// Total rows across a batch list.
pub fn total_rows(batches: &[Chunk]) -> usize {
    batches.iter().map(|c| c.rows).sum()
}

/// Concatenates a batch list into one chunk (moves, no cell clones).
pub fn concat_batches(batches: Vec<Chunk>, arity: usize) -> Chunk {
    let mut iter = batches.into_iter();
    let Some(mut first) = iter.next() else {
        return Chunk::empty(arity);
    };
    for c in iter {
        for (dst, src) in first.cols.iter_mut().zip(c.cols) {
            dst.append(src);
        }
        first.rows += c.rows;
    }
    first
}

/// Splits a chunk into batches of at most [`BATCH_ROWS`] rows (moves, no cell
/// clones). Zero-row chunks produce an empty list.
fn split_into_batches(mut chunk: Chunk) -> Vec<Chunk> {
    if chunk.rows == 0 {
        return Vec::new();
    }
    if chunk.rows <= BATCH_ROWS {
        return vec![chunk];
    }
    let mut out = Vec::with_capacity(chunk.rows.div_ceil(BATCH_ROWS));
    while chunk.rows > BATCH_ROWS {
        let mut head = Vec::with_capacity(chunk.cols.len());
        for col in chunk.cols.iter_mut() {
            let tail = col.split_off(BATCH_ROWS);
            head.push(std::mem::replace(col, tail));
        }
        chunk.rows -= BATCH_ROWS;
        out.push(Chunk { cols: head, rows: BATCH_ROWS });
    }
    out.push(chunk);
    out
}

/// Output arity of a batch list, falling back to the plan's schema when the
/// list is empty.
fn batches_arity(batches: &[Chunk], p: &PhysNode<'_>) -> usize {
    batches.first().map_or(p.logical.arity(), |c| c.cols.len())
}

/// Static operator tag for governance checkpoints. The checkpoint hot path
/// must not allocate; the full display name (with table suffix) is built by
/// [`PhysNode::op_name`] only where a per-call allocation is already paid.
fn op_tag(p: &PhysNode<'_>) -> &'static str {
    match &p.logical.kind {
        NodeKind::Scan { .. } => "Scan",
        NodeKind::Values => "Values",
        NodeKind::Project { .. } => "Project",
        NodeKind::Filter { .. } => "Filter",
        NodeKind::Flatten { .. } => "Flatten",
        NodeKind::Aggregate { .. } => "Aggregate",
        NodeKind::Join { .. } => "Join",
        NodeKind::Sort { .. } => "Sort",
        NodeKind::Limit { .. } => "Limit",
        NodeKind::UnionAll { .. } => "UnionAll",
        NodeKind::Distinct { .. } => "Distinct",
    }
}

/// Accounts one produced batch: raises the operator's peak-memory watermark
/// and charges the governor's cumulative memory budget.
fn charge_batch(
    p: &PhysNode<'_>,
    ctx: &ExecCtx,
    op: &str,
    chunk: &Chunk,
) -> Result<()> {
    let bytes = chunk.approx_bytes();
    p.metrics.add_mem(bytes);
    ctx.gov.charge_memory(bytes, op)
}

/// The typed error a panicking worker is converted into (the morsel layer
/// catches the unwind and reports the lowest-index failure).
fn worker_panic_error(op: &str, index: usize, msg: String) -> SnowError {
    SnowError::internal(op, format!("worker panic at index {index}: {msg}"))
}

/// Exclusive prefix sum of batch row counts: the global index of each batch's
/// first row, which seeds the deterministic `SEQ8()` / `FLATTEN` bases.
fn row_bases(batches: &[Chunk]) -> Vec<usize> {
    let mut bases = Vec::with_capacity(batches.len());
    let mut acc = 0usize;
    for c in batches {
        bases.push(acc);
        acc += c.rows;
    }
    bases
}

// ---------------------------------------------------------------------------
// Fused scan pipeline
// ---------------------------------------------------------------------------

/// Walks a `Filter`/`Project` chain down to a `Scan`, returning the scan node
/// and the stages bottom-up, or `None` when the chain is broken. Volatile
/// projections are excluded: they need the global row index for `SEQ8()`,
/// which a streaming fused stage does not know.
fn fused_chain<'b, 'a>(
    p: &'b PhysNode<'a>,
) -> Option<(&'b PhysNode<'a>, Vec<&'b PhysNode<'a>>)> {
    let mut stages = Vec::new();
    let mut cur = p;
    loop {
        match &cur.logical.kind {
            NodeKind::Filter { pred, .. } if !pred.is_volatile() => {
                stages.push(cur);
                cur = &cur.children[0];
            }
            NodeKind::Project { exprs, .. }
                if !exprs.iter().any(PExpr::is_volatile) =>
            {
                stages.push(cur);
                cur = &cur.children[0];
            }
            NodeKind::Scan { .. } => {
                stages.reverse();
                return Some((cur, stages));
            }
            _ => return None,
        }
    }
}

/// Applies one fused stage to a batch, updating the stage's metrics.
fn apply_stage(stage: &PhysNode<'_>, chunk: Chunk, ctx: &mut ExecCtx) -> Result<Chunk> {
    let op = op_tag(stage);
    ctx.gov.checkpoint(op)?;
    let start = Instant::now();
    let rows_in = chunk.rows as u64;
    let out = match &stage.logical.kind {
        NodeKind::Filter { pred, .. } => {
            filter_batch(pred, &chunk, ctx, Some(&stage.metrics))?
        }
        NodeKind::Project { exprs, .. } => {
            project_batch(exprs, &chunk, ctx, 0, Some(&stage.metrics))?
        }
        _ => unreachable!("fused stages are filters and projections"),
    };
    stage.metrics.record_batch(rows_in, out.rows as u64, start.elapsed());
    charge_batch(stage, ctx, op, &out)?;
    Ok(out)
}

/// Scans a table partition-parallel, pushing each materialized batch through
/// the fused `stages` before the morsel barrier. Workers keep private
/// [`ScanStats`](crate::storage::ScanStats) that are summed in partition
/// order, so the accounting is exact and thread-count independent.
fn exec_scan(
    scan: &PhysNode<'_>,
    stages: &[&PhysNode<'_>],
    ctx: &mut ExecCtx,
) -> Result<Vec<Chunk>> {
    let NodeKind::Scan { table, pushed, materialize } = &scan.logical.kind else {
        unreachable!("exec_scan on a non-scan node")
    };
    let parts = table.partitions();
    let arity = table.schema().len();
    let gov = ctx.gov.clone();
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let op = scan.op_name();
    let results = try_parallel_indexed_governed(
        parts.len(),
        scan.parallelism,
        || gov.claim_checkpoint(&op),
        |pi, msg| worker_panic_error(&op, pi, msg),
        |pi| {
            let part = &parts[pi];
            let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
            wctx.stats.partitions_total = 1;
            // Zone-map pruning: skip the partition when any pushed predicate
            // proves no row can match. Pruned partitions contribute zero bytes.
            let prunable = pushed.iter().any(|p| {
                part.zone_map(p.col).is_some_and(|zm| !zm.may_match(p.cmp, &p.lit))
            });
            if prunable {
                wctx.stats.partitions_pruned = 1;
                for (i, m) in materialize.iter().enumerate() {
                    if *m {
                        wctx.stats.bytes_skipped += part.column_bytes(i);
                    }
                }
                return Ok((Vec::new(), wctx.stats));
            }
            wctx.stats.partitions_scanned = 1;
            wctx.stats.rows_scanned = part.row_count() as u64;
            // Materialize the surviving columns through the scan source:
            // in-memory partitions hand back shared column vectors, disk
            // partitions lazily read exactly the projected blocks (through
            // the buffer cache), so skipped columns cost zero file bytes.
            let mut data: Vec<Option<std::sync::Arc<crate::storage::ColumnData>>> =
                vec![None; arity];
            for (i, m) in materialize.iter().enumerate() {
                if *m {
                    let read = part.read_column_governed(i, &wctx.gov, &op)?;
                    wctx.stats.record_read(&read);
                    data[i] = Some(read.data);
                } else {
                    wctx.stats.columns_skipped += 1;
                    wctx.stats.bytes_skipped += part.column_bytes(i);
                }
            }
            wctx.gov.charge_scanned(wctx.stats.bytes_scanned, &op)?;
            let mut out = Vec::new();
            let n = part.row_count();
            let mut lo = 0usize;
            while lo < n {
                wctx.gov.checkpoint(&op)?;
                let start = Instant::now();
                let hi = (lo + BATCH_ROWS).min(n);
                // Shredded storage columns transfer into typed ColumnVecs
                // directly — values are never boxed into per-row Variants on
                // the way into the pipeline.
                let mut cols: Vec<ColumnVec> = Vec::with_capacity(arity);
                for src in data.iter().take(arity) {
                    if let Some(data) = src {
                        cols.push(ColumnVec::from_column_data(data, lo, hi, encode));
                    } else {
                        // Unreferenced columns are never read; fill with nulls
                        // to keep positional addressing intact.
                        let mut col = ColumnVec::new();
                        col.push_nulls(hi - lo);
                        cols.push(col);
                    }
                }
                let mut chunk = Chunk { cols, rows: hi - lo };
                scan.metrics.record_batch(0, chunk.rows as u64, start.elapsed());
                charge_batch(scan, &wctx, &op, &chunk)?;
                for stage in stages {
                    chunk = apply_stage(stage, chunk, &mut wctx)?;
                }
                if chunk.rows > 0 {
                    out.push(chunk);
                }
                lo = hi;
            }
            Ok((out, wctx.stats))
        },
    )?;
    let mut batches = Vec::new();
    for (mut chunks, stats) in results {
        ctx.stats.merge(&stats);
        batches.append(&mut chunks);
    }
    Ok(batches)
}

// ---------------------------------------------------------------------------
// Streaming operators over batch lists
// ---------------------------------------------------------------------------

fn filter_batch(
    pred: &PExpr,
    inp: &Chunk,
    ctx: &mut ExecCtx,
    cell: Option<&OpMetricsCell>,
) -> Result<Chunk> {
    if ctx.vectorize {
        if let Some(mask) = eval_vec_counted(pred, inp, cell) {
            // A non-boolean mask value falls through to the row loop, which
            // raises the serial type error at the offending row.
            if let Some(keep) = mask_keep(&mask) {
                if let Some(cell) = cell {
                    cell.add_vectorized(inp.rows as u64);
                }
                let cols = inp.cols.iter().map(|c| c.gather(&keep)).collect();
                return Ok(Chunk { cols, rows: keep.len() });
            }
        }
    }
    if let Some(cell) = cell {
        cell.add_fallback(inp.rows as u64);
    }
    let mut keep = Vec::with_capacity(inp.rows);
    for r in 0..inp.rows {
        let parts = [(inp, r)];
        let v = eval(pred, RowView::new(&parts), ctx)?;
        if truth(&v)? == Some(true) {
            keep.push(r);
        }
    }
    let cols = inp.cols.iter().map(|c| c.gather(&keep)).collect();
    Ok(Chunk { cols, rows: keep.len() })
}

/// Projects one batch. `seq_base` is the global index of the batch's first
/// row: setting the counter to `base + r` before each row reproduces the
/// serial per-projection-site `SEQ8()` numbering (the serial executor holds
/// the counter at `r` when row `r` starts; see `NodeKind::Project` in
/// [`super::execute`]).
fn project_batch(
    exprs: &[PExpr],
    inp: &Chunk,
    ctx: &mut ExecCtx,
    seq_base: i64,
    cell: Option<&OpMetricsCell>,
) -> Result<Chunk> {
    if ctx.vectorize && !exprs.iter().any(PExpr::is_volatile) {
        let tried: Vec<Option<ColumnVec>> =
            exprs.iter().map(|e| eval_vec_counted(e, inp, cell)).collect();
        if tried.iter().all(Option::is_some) {
            if let Some(cell) = cell {
                cell.add_vectorized(inp.rows as u64);
            }
            let cols = tried.into_iter().map(Option::unwrap).collect();
            return Ok(Chunk { cols, rows: inp.rows });
        }
        // Mixed outcome: keep the kernel results and evaluate the declined
        // expressions row-major *together*, preserving the serial
        // (row, expression) error order among them — the vectorized ones are
        // infallible, so they cannot mask an earlier serial error.
        if let Some(cell) = cell {
            cell.add_fallback(inp.rows as u64);
        }
        let mut cols: Vec<ColumnVec> = Vec::with_capacity(exprs.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, t) in tried.into_iter().enumerate() {
            match t {
                Some(c) => cols.push(c),
                None => {
                    cols.push(ColumnVec::new());
                    missing.push(i);
                }
            }
        }
        for r in 0..inp.rows {
            let parts = [(inp, r)];
            let view = RowView::new(&parts);
            for &i in &missing {
                let v = eval(&exprs[i], view, ctx)?;
                cols[i].push(v);
            }
        }
        return Ok(Chunk { cols, rows: inp.rows });
    }
    if let Some(cell) = cell {
        cell.add_fallback(inp.rows as u64);
    }
    let mut cols: Vec<ColumnVec> = exprs.iter().map(|_| ColumnVec::new()).collect();
    let saved_seq = ctx.seq_counter;
    for r in 0..inp.rows {
        ctx.seq_counter = seq_base + r as i64;
        let parts = [(inp, r)];
        let view = RowView::new(&parts);
        for (e, out) in exprs.iter().zip(cols.iter_mut()) {
            out.push(eval(e, view, ctx)?);
        }
    }
    ctx.seq_counter = saved_seq;
    Ok(Chunk { cols, rows: inp.rows })
}

fn exec_filter(p: &PhysNode<'_>, pred: &PExpr, ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    if pred.is_volatile() {
        // Serial fallback keeps the SEQ8 stream identical to the reference
        // executor (a volatile filter predicate does not occur in bound
        // plans today, but must not silently change meaning if it does).
        let mut out = Vec::new();
        for c in &input {
            ctx.gov.checkpoint("Filter")?;
            let start = Instant::now();
            let f = filter_batch(pred, c, ctx, Some(&p.metrics))?;
            p.metrics.record_batch(c.rows as u64, f.rows as u64, start.elapsed());
            charge_batch(p, ctx, "Filter", &f)?;
            if f.rows > 0 {
                out.push(f);
            }
        }
        return Ok(out);
    }
    let gov = ctx.gov.clone();
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let batches = try_parallel_indexed_governed(
        input.len(),
        p.parallelism,
        || gov.claim_checkpoint("Filter"),
        |bi, msg| worker_panic_error("Filter", bi, msg),
        |bi| {
            let start = Instant::now();
            let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
            let out = filter_batch(pred, &input[bi], &mut wctx, Some(&p.metrics))?;
            p.metrics.record_batch(input[bi].rows as u64, out.rows as u64, start.elapsed());
            charge_batch(p, &wctx, "Filter", &out)?;
            Ok(out)
        },
    )?;
    Ok(batches.into_iter().filter(|c| c.rows > 0).collect())
}

fn exec_project(
    p: &PhysNode<'_>,
    exprs: &[PExpr],
    ctx: &mut ExecCtx,
) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let bases = row_bases(&input);
    // Volatile projections parallelize too: each batch knows its global row
    // base, so SEQ8 ids are assigned exactly as in serial row order. The
    // per-worker context leaves the caller's counter untouched, mirroring the
    // serial executor's save/restore.
    let gov = ctx.gov.clone();
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let batches = try_parallel_indexed_governed(
        input.len(),
        p.parallelism,
        || gov.claim_checkpoint("Project"),
        |bi, msg| worker_panic_error("Project", bi, msg),
        |bi| {
            let start = Instant::now();
            let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
            let out =
                project_batch(exprs, &input[bi], &mut wctx, bases[bi] as i64, Some(&p.metrics))?;
            p.metrics.record_batch(input[bi].rows as u64, out.rows as u64, start.elapsed());
            charge_batch(p, &wctx, "Project", &out)?;
            Ok(out)
        },
    )?;
    Ok(batches.into_iter().filter(|c| c.rows > 0).collect())
}

/// Flattens one batch. `row_base` is the global index of the batch's first
/// row; the emitted `SEQ` column carries `row_base + r`, the parent row's
/// index in the whole flatten input, as in the serial executor.
fn flatten_batch(
    expr: &PExpr,
    outer: bool,
    inp: &Chunk,
    ctx: &mut ExecCtx,
    row_base: i64,
    cell: Option<&OpMetricsCell>,
) -> Result<Chunk> {
    let in_arity = inp.cols.len();
    let mut out = Chunk::empty(in_arity + 5);
    // The flatten source evaluates vectorized when possible; the emit loop is
    // per-row either way (output cardinality is data-dependent), but input
    // columns pass through typed via `push_from` and the `SEQ` column stays a
    // typed Int column.
    let vec_src = if ctx.vectorize && !expr.is_volatile() {
        eval_vec_counted(expr, inp, cell)
    } else {
        None
    };
    if let Some(cell) = cell {
        if vec_src.is_some() {
            cell.add_vectorized(inp.rows as u64);
        } else {
            cell.add_fallback(inp.rows as u64);
        }
    }
    for r in 0..inp.rows {
        let v = match &vec_src {
            Some(col) => col.get(r),
            None => {
                let parts = [(inp, r)];
                eval(expr, RowView::new(&parts), ctx)?
            }
        };
        let emit = |out: &mut Chunk,
                    value: Variant,
                    index: Variant,
                    key: Variant,
                    this: Variant| {
            for (i, col) in out.cols.iter_mut().enumerate().take(in_arity) {
                col.push_from(&inp.cols[i], r);
            }
            out.cols[in_arity].push(value);
            out.cols[in_arity + 1].push(index);
            out.cols[in_arity + 2].push(key);
            out.cols[in_arity + 3].push(Variant::Int(row_base + r as i64));
            out.cols[in_arity + 4].push(this);
            out.rows += 1;
        };
        match &v {
            Variant::Array(items) if !items.is_empty() => {
                for (i, item) in items.iter().enumerate() {
                    emit(&mut out, item.clone(), Variant::Int(i as i64), Variant::Null, v.clone());
                }
            }
            Variant::Object(obj) if !obj.is_empty() => {
                for (k, val) in obj.iter() {
                    emit(&mut out, val.clone(), Variant::Null, Variant::from(k), v.clone());
                }
            }
            _ => {
                if outer {
                    emit(&mut out, Variant::Null, Variant::Null, Variant::Null, v.clone());
                }
            }
        }
    }
    Ok(out)
}

fn exec_flatten(
    p: &PhysNode<'_>,
    expr: &PExpr,
    outer: bool,
    ctx: &mut ExecCtx,
) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let bases = row_bases(&input);
    if expr.is_volatile() {
        let mut out = Vec::new();
        for (bi, c) in input.iter().enumerate() {
            ctx.gov.checkpoint("Flatten")?;
            let start = Instant::now();
            let f = flatten_batch(expr, outer, c, ctx, bases[bi] as i64, Some(&p.metrics))?;
            p.metrics.record_batch(c.rows as u64, f.rows as u64, start.elapsed());
            charge_batch(p, ctx, "Flatten", &f)?;
            if f.rows > 0 {
                out.push(f);
            }
        }
        return Ok(out);
    }
    let gov = ctx.gov.clone();
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let batches = try_parallel_indexed_governed(
        input.len(),
        p.parallelism,
        || gov.claim_checkpoint("Flatten"),
        |bi, msg| worker_panic_error("Flatten", bi, msg),
        |bi| {
            let start = Instant::now();
            let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
            let out = flatten_batch(
                expr,
                outer,
                &input[bi],
                &mut wctx,
                bases[bi] as i64,
                Some(&p.metrics),
            )?;
            p.metrics.record_batch(input[bi].rows as u64, out.rows as u64, start.elapsed());
            charge_batch(p, &wctx, "Flatten", &out)?;
            Ok(out)
        },
    )?;
    Ok(batches.into_iter().filter(|c| c.rows > 0).collect())
}

// ---------------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------------

/// Hash-aggregate state: groups in first-seen order plus accumulator rows.
#[derive(Default)]
struct AggState {
    index: HashMap<Vec<Key>, usize>,
    index1: HashMap<Key, usize>,
    group_vals: Vec<Vec<Variant>>,
    states: Vec<Vec<Accumulator>>,
}

impl AggState {
    /// Folds one batch into the state (serial reference semantics: rows in
    /// order, group entries keep insertion order, single-key fast path).
    fn fold(
        &mut self,
        groups: &[PExpr],
        aggs: &[AggExpr],
        inp: &Chunk,
        ctx: &mut ExecCtx,
    ) -> Result<()> {
        let single = groups.len() == 1;
        for r in 0..inp.rows {
            let parts = [(inp, r)];
            let view = RowView::new(&parts);
            let mut gv = Vec::with_capacity(groups.len());
            for g in groups {
                gv.push(eval(g, view, ctx)?);
            }
            let slot = if single {
                let key = Key::of(&gv[0]);
                match self.index1.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = self.states.len();
                        self.index1.insert(key, s);
                        self.group_vals.push(std::mem::take(&mut gv));
                        self.states
                            .push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                        s
                    }
                }
            } else {
                let key: Vec<Key> = gv.iter().map(Key::of).collect();
                match self.index.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = self.states.len();
                        self.index.insert(key, s);
                        self.group_vals.push(std::mem::take(&mut gv));
                        self.states
                            .push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                        s
                    }
                }
            };
            for (a, st) in aggs.iter().zip(self.states[slot].iter_mut()) {
                let v = match &a.arg {
                    Some(e) => eval(e, view, ctx)?,
                    None => Variant::Null,
                };
                match &a.arg2 {
                    Some(k) => {
                        let kv = eval(k, view, ctx)?;
                        st.update2(&v, &kv)?;
                    }
                    None => st.update(&v)?,
                }
            }
        }
        Ok(())
    }

    /// Folds one batch, preferring the column-major path. Returns through the
    /// row-at-a-time [`AggState::fold`] whenever [`AggState::try_fold_vec`]
    /// declines, counting rows on the matching metrics counter.
    fn fold_batch(
        &mut self,
        groups: &[PExpr],
        aggs: &[AggExpr],
        inp: &Chunk,
        ctx: &mut ExecCtx,
        cell: &OpMetricsCell,
    ) -> Result<()> {
        if ctx.vectorize && self.try_fold_vec(groups, aggs, inp)? {
            cell.add_vectorized(inp.rows as u64);
            return Ok(());
        }
        cell.add_fallback(inp.rows as u64);
        self.fold(groups, aggs, inp, ctx)
    }

    /// Attempts a column-major fold of one batch: group keys and aggregate
    /// arguments evaluate through the typed kernels, group slots come from
    /// [`ColumnVec::key_at`], and accumulators consume whole columns (global
    /// aggregation) or per-row typed values (grouped).
    ///
    /// Returns `Ok(false)` — with the state untouched — when any expression
    /// declines to vectorize or a two-argument aggregate is present. The
    /// global path additionally requires every accumulator to be provably
    /// infallible for its column ([`column_eligible`] plus a numeric `SUM`
    /// state), so column-major evaluation can never reorder errors across
    /// aggregates relative to the serial row loop.
    fn try_fold_vec(
        &mut self,
        groups: &[PExpr],
        aggs: &[AggExpr],
        inp: &Chunk,
    ) -> Result<bool> {
        if aggs.iter().any(|a| a.arg2.is_some()) {
            return Ok(false);
        }
        let mut gcols = Vec::with_capacity(groups.len());
        for g in groups {
            match eval_vec(g, inp) {
                Some(c) => gcols.push(c),
                None => return Ok(false),
            }
        }
        if groups.is_empty() {
            // A SUM accumulator holding a non-numeric value (stored unchecked
            // by an earlier row-major batch) errors on the next numeric value;
            // take the row path so the (row, aggregate) error order matches.
            if let Some(&slot) = self.index.get(&Vec::new()) {
                if self.states[slot].iter().any(|st| {
                    matches!(st, Accumulator::Sum { acc: Some(v) }
                        if !matches!(v, Variant::Int(_) | Variant::Float(_)))
                }) {
                    return Ok(false);
                }
            }
            // Evaluate and eligibility-check one aggregate at a time so an
            // ineligible argument (e.g. SUM over a mixed Variant column)
            // declines before the remaining arguments pay for evaluation —
            // bare column references decline without even a clone.
            let mut acols = Vec::with_capacity(aggs.len());
            for a in aggs {
                if let Some(PExpr::Col(i)) = &a.arg {
                    match inp.cols.get(*i) {
                        Some(c) if column_eligible(a.kind, c) => {}
                        _ => return Ok(false),
                    }
                }
                let col = match &a.arg {
                    Some(e) => match eval_vec(e, inp) {
                        Some(c) => c,
                        None => return Ok(false),
                    },
                    None => ColumnVec::Null(inp.rows),
                };
                if !column_eligible(a.kind, &col) {
                    return Ok(false);
                }
                acols.push(col);
            }
            if inp.rows == 0 {
                return Ok(true);
            }
            let slot = match self.index.get(&Vec::new()) {
                Some(&s) => s,
                None => {
                    let s = self.states.len();
                    self.index.insert(Vec::new(), s);
                    self.group_vals.push(Vec::new());
                    self.states
                        .push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                    s
                }
            };
            for (st, col) in self.states[slot].iter_mut().zip(&acols) {
                st.update_column(col)?;
            }
            return Ok(true);
        }
        // Grouped path: typed keys and typed per-row argument values feed the
        // ordinary row accumulators, so any update error surfaces at exactly
        // the serial (row, aggregate) position.
        let mut acols = Vec::with_capacity(aggs.len());
        for a in aggs {
            let col = match &a.arg {
                Some(e) => match eval_vec(e, inp) {
                    Some(c) => c,
                    None => return Ok(false),
                },
                None => ColumnVec::Null(inp.rows),
            };
            acols.push(col);
        }
        let single = groups.len() == 1;
        // Dictionary-coded single group key: resolve each distinct code to its
        // group slot at most once per batch, so the per-row work is an array
        // lookup instead of boxing the string into a `Key`. First-appearance
        // order is preserved — rows still insert into `index1` in row order.
        if single {
            if let ColumnVec::DictStr { codes, dict } = &gcols[0] {
                let mut memo: Vec<Option<usize>> = vec![None; dict.len() + 1];
                for (r, &code) in codes.iter().enumerate().take(inp.rows) {
                    let mi = if code == crate::storage::NULL_CODE {
                        dict.len()
                    } else {
                        code as usize
                    };
                    let slot = match memo[mi] {
                        Some(s) => s,
                        None => {
                            let key = gcols[0].key_at(r);
                            let s = match self.index1.get(&key) {
                                Some(&s) => s,
                                None => {
                                    let s = self.states.len();
                                    self.index1.insert(key, s);
                                    self.group_vals.push(vec![gcols[0].get(r)]);
                                    self.states.push(
                                        aggs.iter()
                                            .map(|a| Accumulator::new(a.kind))
                                            .collect(),
                                    );
                                    s
                                }
                            };
                            memo[mi] = Some(s);
                            s
                        }
                    };
                    for (st, col) in self.states[slot].iter_mut().zip(&acols) {
                        st.update(&col.get(r))?;
                    }
                }
                return Ok(true);
            }
        }
        for r in 0..inp.rows {
            let slot = if single {
                let key = gcols[0].key_at(r);
                match self.index1.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = self.states.len();
                        self.index1.insert(key, s);
                        self.group_vals.push(vec![gcols[0].get(r)]);
                        self.states
                            .push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                        s
                    }
                }
            } else {
                let key: Vec<Key> = gcols.iter().map(|c| c.key_at(r)).collect();
                match self.index.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = self.states.len();
                        self.index.insert(key, s);
                        self.group_vals.push(gcols.iter().map(|c| c.get(r)).collect());
                        self.states
                            .push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                        s
                    }
                }
            };
            for (st, col) in self.states[slot].iter_mut().zip(&acols) {
                st.update(&col.get(r))?;
            }
        }
        Ok(true)
    }

    /// Merges a later partial into this one, in input order: new groups
    /// append (preserving global first-seen order), existing groups merge
    /// accumulators.
    fn merge(&mut self, other: AggState, single: bool) -> Result<()> {
        for (gv, accs) in other.group_vals.into_iter().zip(other.states) {
            let slot = if single {
                let key = Key::of(&gv[0]);
                match self.index1.get(&key) {
                    Some(&s) => Some(s),
                    None => {
                        self.index1.insert(key, self.states.len());
                        None
                    }
                }
            } else {
                let key: Vec<Key> = gv.iter().map(Key::of).collect();
                match self.index.get(&key) {
                    Some(&s) => Some(s),
                    None => {
                        self.index.insert(key, self.states.len());
                        None
                    }
                }
            };
            match slot {
                Some(s) => {
                    for (st, acc) in self.states[s].iter_mut().zip(accs) {
                        st.merge(acc)?;
                    }
                }
                None => {
                    self.group_vals.push(gv);
                    self.states.push(accs);
                }
            }
        }
        Ok(())
    }
}

/// True when per-batch partial states of this kind merge to the exact serial
/// result. `SUM`/`AVG` are excluded: float addition is not associative, so
/// only a serial fold in row order is bit-reproducible.
fn exactly_mergeable(kind: AggKind) -> bool {
    !matches!(kind, AggKind::Sum | AggKind::Avg)
}

fn exec_aggregate(
    p: &PhysNode<'_>,
    groups: &[PExpr],
    aggs: &[AggExpr],
    ctx: &mut ExecCtx,
) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let in_rows = total_rows(&input) as u64;
    p.metrics.add_rows_in(in_rows);
    p.metrics.peak(in_rows);
    let start = Instant::now();

    let volatile = groups.iter().any(PExpr::is_volatile)
        || aggs.iter().any(|a| {
            a.arg.as_ref().is_some_and(PExpr::is_volatile)
                || a.arg2.as_ref().is_some_and(PExpr::is_volatile)
        });
    let single = groups.len() == 1;
    let parallel = !volatile
        && aggs.iter().all(|a| exactly_mergeable(a.kind))
        && p.parallelism > 1
        && input.len() > 1;

    let mut state = if parallel {
        // Thread-local partial aggregation per batch, merged at the barrier
        // in batch order so group order and tie-breaks match serial.
        let gov = ctx.gov.clone();
        let vectorize = ctx.vectorize;
        let encode = ctx.encode;
        let partials = try_parallel_indexed_governed(
            input.len(),
            p.parallelism,
            || gov.claim_checkpoint("Aggregate"),
            |bi, msg| worker_panic_error("Aggregate", bi, msg),
            |bi| {
                let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
                let mut st = AggState::default();
                st.fold_batch(groups, aggs, &input[bi], &mut wctx, &p.metrics)?;
                Ok(st)
            },
        )?;
        let mut merged = AggState::default();
        for partial in partials {
            merged.merge(partial, single)?;
        }
        merged
    } else {
        let mut st = AggState::default();
        for c in &input {
            ctx.gov.checkpoint("Aggregate")?;
            st.fold_batch(groups, aggs, c, ctx, &p.metrics)?;
        }
        st
    };

    // Global aggregation over zero rows still yields one row.
    if groups.is_empty() && state.states.is_empty() {
        state.group_vals.push(Vec::new());
        state.states.push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
    }

    let n_out = state.group_vals.len();
    let mut cols: Vec<ColumnVec> = vec![ColumnVec::new(); groups.len() + aggs.len()];
    for (gv, st) in state.group_vals.into_iter().zip(state.states) {
        for (i, v) in gv.into_iter().enumerate() {
            cols[i].push(v);
        }
        for (j, acc) in st.into_iter().enumerate() {
            cols[groups.len() + j].push(acc.finish());
        }
    }
    p.metrics.add_busy(start.elapsed());
    let out = Chunk { cols, rows: n_out };
    charge_batch(p, ctx, "Aggregate", &out)?;
    let batches = split_into_batches(out);
    p.metrics.add_output(n_out as u64, batches.len() as u64);
    Ok(batches)
}

fn exec_join(
    p: &PhysNode<'_>,
    kind: JoinKind,
    on: &Option<PExpr>,
    ctx: &mut ExecCtx,
) -> Result<Vec<Chunk>> {
    let l_batches = execute_physical(&p.children[0], ctx)?;
    let r_batches = execute_physical(&p.children[1], ctx)?;
    let la = batches_arity(&l_batches, &p.children[0]);
    let ra = batches_arity(&r_batches, &p.children[1]);
    let l_rows = total_rows(&l_batches) as u64;
    let r_rows = total_rows(&r_batches) as u64;
    p.metrics.add_rows_in(l_rows + r_rows);
    p.metrics.peak(l_rows + r_rows);
    let start = Instant::now();

    // The build side is materialized whole for O(1) row addressing — same
    // memory shape as the serial executor.
    let r = concat_batches(r_batches, ra);
    charge_batch(p, ctx, "Join", &r)?;

    if on.as_ref().is_some_and(PExpr::is_volatile) {
        // Serial reference fallback for volatile join conditions.
        let l = concat_batches(l_batches, la);
        charge_batch(p, ctx, "Join", &l)?;
        let out = join_chunks(&l, &r, kind, on, ctx)?;
        charge_batch(p, ctx, "Join", &out)?;
        p.metrics.add_busy(start.elapsed());
        let batches = split_into_batches(out);
        p.metrics
            .add_output(batches.iter().map(|c| c.rows as u64).sum(), batches.len() as u64);
        return Ok(batches);
    }

    let (equi, residual) = match on {
        Some(e) => split_join_on(e, la),
        None => (Vec::new(), Vec::new()),
    };

    // Hash join: build on the right side (serial — the build is a hash
    // insert in row order; probe is the parallel phase). Key expressions go
    // through the typed kernels when possible; `key_at` then yields exactly
    // the group key `Key::of` would for the boxed value.
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let hash: Option<HashMap<Vec<Key>, Vec<usize>>> = if equi.is_empty() {
        None
    } else {
        let mut table: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
        let build_cols: Option<Vec<ColumnVec>> = if vectorize {
            equi.iter().map(|(_, rk)| eval_vec(rk, &r)).collect()
        } else {
            None
        };
        match build_cols {
            Some(kcols) => {
                for rr in 0..r.rows {
                    if rr % BATCH_ROWS == 0 {
                        ctx.gov.checkpoint("Join")?;
                    }
                    // NULL keys never match in SQL equality.
                    if kcols.iter().any(|c| c.is_null_at(rr)) {
                        continue;
                    }
                    let key: Vec<Key> = kcols.iter().map(|c| c.key_at(rr)).collect();
                    table.entry(key).or_default().push(rr);
                }
            }
            None => {
                let mut bctx = ExecCtx::worker(ctx.gov.clone(), vectorize, ctx.encode);
                for rr in 0..r.rows {
                    if rr % BATCH_ROWS == 0 {
                        bctx.gov.checkpoint("Join")?;
                    }
                    let parts = [(&r, rr)];
                    let view = RowView::new(&parts);
                    let mut key = Vec::with_capacity(equi.len());
                    let mut has_null = false;
                    for (_, rk) in &equi {
                        let v = eval(rk, view, &mut bctx)?;
                        if v.is_null() {
                            has_null = true;
                            break;
                        }
                        key.push(Key::of(&v));
                    }
                    // NULL keys never match in SQL equality.
                    if !has_null {
                        table.entry(key).or_default().push(rr);
                    }
                }
            }
        }
        Some(table)
    };

    let gov = ctx.gov.clone();
    let probe = |lb: &Chunk| -> Result<Chunk> {
        let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
        // Matches accumulate as (left, right) row indices; the output chunk
        // is a typed gather at the end, so column representations survive the
        // join untouched (`None` right rows become NULLs on the outer side).
        let mut lidx: Vec<usize> = Vec::new();
        let mut ridx: Vec<Option<usize>> = Vec::new();
        let residual_ok = |wctx: &mut ExecCtx, lr: usize, rr: usize| -> Result<bool> {
            for e in &residual {
                let parts = [(lb, lr), (&r, rr)];
                let v = eval(e, RowView::new(&parts), wctx)?;
                if truth(&v)? != Some(true) {
                    return Ok(false);
                }
            }
            Ok(true)
        };
        match &hash {
            None => {
                // Nested-loop join for cross joins and non-equi conditions.
                for lr in 0..lb.rows {
                    let mut matched = false;
                    for rr in 0..r.rows {
                        if residual_ok(&mut wctx, lr, rr)? {
                            lidx.push(lr);
                            ridx.push(Some(rr));
                            matched = true;
                        }
                    }
                    if kind == JoinKind::LeftOuter && !matched {
                        lidx.push(lr);
                        ridx.push(None);
                    }
                }
            }
            Some(table) => {
                let probe_cols: Option<Vec<ColumnVec>> = if wctx.vectorize {
                    equi.iter().map(|(lk, _)| eval_vec(lk, lb)).collect()
                } else {
                    None
                };
                if probe_cols.is_some() {
                    p.metrics.add_vectorized(lb.rows as u64);
                } else {
                    p.metrics.add_fallback(lb.rows as u64);
                }
                for lr in 0..lb.rows {
                    let mut key = Vec::with_capacity(equi.len());
                    let mut has_null = false;
                    match &probe_cols {
                        Some(kcols) => {
                            if kcols.iter().any(|c| c.is_null_at(lr)) {
                                has_null = true;
                            } else {
                                key.extend(kcols.iter().map(|c| c.key_at(lr)));
                            }
                        }
                        None => {
                            let parts = [(lb, lr)];
                            let view = RowView::new(&parts);
                            for (lk, _) in &equi {
                                let v = eval(lk, view, &mut wctx)?;
                                if v.is_null() {
                                    has_null = true;
                                    break;
                                }
                                key.push(Key::of(&v));
                            }
                        }
                    }
                    let mut matched = false;
                    if !has_null {
                        if let Some(rows) = table.get(&key) {
                            for &rr in rows {
                                if residual_ok(&mut wctx, lr, rr)? {
                                    lidx.push(lr);
                                    ridx.push(Some(rr));
                                    matched = true;
                                }
                            }
                        }
                    }
                    if kind == JoinKind::LeftOuter && !matched {
                        lidx.push(lr);
                        ridx.push(None);
                    }
                }
            }
        }
        let mut cols: Vec<ColumnVec> = Vec::with_capacity(la + ra);
        for c in &lb.cols {
            cols.push(c.gather(&lidx));
        }
        for c in &r.cols {
            cols.push(c.gather_opt(&ridx));
        }
        Ok(Chunk { cols, rows: lidx.len() })
    };

    let batches = try_parallel_indexed_governed(
        l_batches.len(),
        p.parallelism,
        || gov.claim_checkpoint("Join"),
        |bi, msg| worker_panic_error("Join", bi, msg),
        |bi| {
            let t0 = Instant::now();
            let out = probe(&l_batches[bi])?;
            p.metrics
                .record_batch(l_batches[bi].rows as u64, out.rows as u64, t0.elapsed());
            let bytes = out.approx_bytes();
            p.metrics.add_mem(bytes);
            gov.charge_memory(bytes, "Join")?;
            Ok(out)
        },
    )?;
    p.metrics.add_busy(start.elapsed());
    Ok(batches.into_iter().filter(|c| c.rows > 0).collect())
}

fn exec_sort(p: &PhysNode<'_>, keys: &[SortKey], ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let in_rows = total_rows(&input);
    p.metrics.add_rows_in(in_rows as u64);
    p.metrics.peak(in_rows as u64);
    let start = Instant::now();

    let gov = ctx.gov.clone();
    let vectorize = ctx.vectorize;
    let encode = ctx.encode;
    let volatile = keys.iter().any(|k| k.expr.is_volatile());
    // Key evaluation parallelizes per batch; each result is key-major.
    let key_cols: Vec<Vec<Vec<Variant>>> = if volatile {
        let mut all = Vec::with_capacity(input.len());
        for c in &input {
            ctx.gov.checkpoint("Sort")?;
            all.push(eval_sort_keys(keys, c, ctx, Some(&p.metrics))?);
        }
        all
    } else {
        try_parallel_indexed_governed(
            input.len(),
            p.parallelism,
            || gov.claim_checkpoint("Sort"),
            |bi, msg| worker_panic_error("Sort", bi, msg),
            |bi| {
                let mut wctx = ExecCtx::worker(gov.clone(), vectorize, encode);
                eval_sort_keys(keys, &input[bi], &mut wctx, Some(&p.metrics))
            },
        )?
    };

    // Global merge: a stable sort over (batch, row) in input order applies
    // the exact comparator of the serial executor, so the permutation — and
    // therefore tie order — is identical.
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(in_rows);
    for (bi, c) in input.iter().enumerate() {
        for r in 0..c.rows {
            order.push((bi as u32, r as u32));
        }
    }
    order.sort_by(|&(ab, ar), &(bb, br)| {
        for (ki, k) in keys.iter().enumerate() {
            let va = &key_cols[ab as usize][ki][ar as usize];
            let vb = &key_cols[bb as usize][ki][br as usize];
            let c = cmp_sort_values(k, va, vb);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });

    // Parallel gather into output batches.
    let arity = batches_arity(&input, &p.children[0]);
    let n_batches = in_rows.div_ceil(BATCH_ROWS);
    let batches = try_parallel_indexed_governed(
        n_batches,
        p.parallelism,
        || gov.claim_checkpoint("Sort"),
        |ob, msg| worker_panic_error("Sort", ob, msg),
        |ob| {
            let t0 = Instant::now();
            let lo = ob * BATCH_ROWS;
            let hi = (lo + BATCH_ROWS).min(in_rows);
            let mut cols: Vec<ColumnVec> = vec![ColumnVec::new(); arity];
            for &(bi, r) in &order[lo..hi] {
                for (i, col) in cols.iter_mut().enumerate() {
                    col.push_from(&input[bi as usize].cols[i], r as usize);
                }
            }
            let out = Chunk { cols, rows: hi - lo };
            p.metrics.record_batch(0, out.rows as u64, t0.elapsed());
            let bytes = out.approx_bytes();
            p.metrics.add_mem(bytes);
            gov.charge_memory(bytes, "Sort")?;
            Ok(out)
        },
    )?;
    p.metrics.add_busy(start.elapsed());
    Ok(batches)
}

fn eval_sort_keys(
    keys: &[SortKey],
    inp: &Chunk,
    ctx: &mut ExecCtx,
    cell: Option<&OpMetricsCell>,
) -> Result<Vec<Vec<Variant>>> {
    let mut out = Vec::with_capacity(keys.len());
    let mut all_vec = true;
    for k in keys {
        if ctx.vectorize && !k.expr.is_volatile() {
            if let Some(col) = eval_vec(&k.expr, inp) {
                out.push(col.into_variants());
                continue;
            }
        }
        all_vec = false;
        let mut col = Vec::with_capacity(inp.rows);
        for r in 0..inp.rows {
            let parts = [(inp, r)];
            col.push(eval(&k.expr, RowView::new(&parts), ctx)?);
        }
        out.push(col);
    }
    if let Some(cell) = cell {
        if all_vec {
            cell.add_vectorized(inp.rows as u64);
        } else {
            cell.add_fallback(inp.rows as u64);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Serial batch-list operators
// ---------------------------------------------------------------------------

fn exec_limit(p: &PhysNode<'_>, n: u64, ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let start = Instant::now();
    let mut remaining = n as usize;
    let mut out = Vec::new();
    for mut c in input {
        if remaining == 0 {
            break;
        }
        ctx.gov.checkpoint("Limit")?;
        p.metrics.add_rows_in(c.rows as u64);
        if c.rows > remaining {
            for col in c.cols.iter_mut() {
                col.truncate(remaining);
            }
            c.rows = remaining;
        }
        remaining -= c.rows;
        p.metrics.add_output(c.rows as u64, 1);
        out.push(c);
    }
    p.metrics.add_busy(start.elapsed());
    Ok(out)
}

fn exec_union(p: &PhysNode<'_>, ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    let mut l = execute_physical(&p.children[0], ctx)?;
    let r = execute_physical(&p.children[1], ctx)?;
    let start = Instant::now();
    ctx.gov.checkpoint("UnionAll")?;
    if batches_arity(&l, &p.children[0]) != batches_arity(&r, &p.children[1]) {
        return Err(SnowError::Exec("UNION ALL arity mismatch".into()));
    }
    let rows = (total_rows(&l) + total_rows(&r)) as u64;
    l.extend(r);
    p.metrics.add_rows_in(rows);
    p.metrics.add_output(rows, l.len() as u64);
    p.metrics.add_busy(start.elapsed());
    Ok(l)
}

fn exec_distinct(p: &PhysNode<'_>, ctx: &mut ExecCtx) -> Result<Vec<Chunk>> {
    let input = execute_physical(&p.children[0], ctx)?;
    let start = Instant::now();
    let in_rows = total_rows(&input) as u64;
    p.metrics.add_rows_in(in_rows);
    p.metrics.peak(in_rows);
    // One hash set over the batches in input order: first occurrence wins,
    // as in the serial executor.
    let arity = batches_arity(&input, &p.children[0]);
    let mut seen = std::collections::HashSet::new();
    let mut out: Vec<Chunk> = Vec::new();
    let mut cur = Chunk::empty(arity);
    for c in &input {
        ctx.gov.checkpoint("Distinct")?;
        for r in 0..c.rows {
            let key: Vec<Key> = c.cols.iter().map(|col| col.key_at(r)).collect();
            if seen.insert(key) {
                cur.push_row_from(c, r);
                if cur.rows == BATCH_ROWS {
                    charge_batch(p, ctx, "Distinct", &cur)?;
                    out.push(std::mem::replace(&mut cur, Chunk::empty(arity)));
                }
            }
        }
    }
    if cur.rows > 0 {
        charge_batch(p, ctx, "Distinct", &cur)?;
        out.push(cur);
    }
    let out_rows: u64 = out.iter().map(|c| c.rows as u64).sum();
    p.metrics.add_output(out_rows, out.len() as u64);
    p.metrics.add_busy(start.elapsed());
    Ok(out)
}
