//! Row-at-a-time expression evaluator.

use std::cmp::Ordering;

use crate::error::{Result, SnowError};
use crate::plan::{CastType, FuncId, PExpr, PStep};
use crate::sql::{BinOp, UnaryOp};
use crate::variant::{cmp_variants, NumericPair, Object, Variant};

use super::{Chunk, ExecCtx};

/// A logical row assembled from one or more chunks laid side by side; column
/// indices address the concatenation. Joins use two parts, everything else one.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    parts: &'a [(&'a Chunk, usize)],
}

impl<'a> RowView<'a> {
    /// A view over a single chunk row.
    pub fn new(parts: &'a [(&'a Chunk, usize)]) -> RowView<'a> {
        RowView { parts }
    }

    /// Reads the value of logical column `idx`.
    ///
    /// Column indices are produced by the binder against the node schema, so an
    /// out-of-range index is a planner bug — but it must surface as a query
    /// error, not a panic: a worker-thread panic poisons the morsel dispatcher
    /// and takes the whole process down instead of failing one statement.
    pub fn col(&self, idx: usize) -> Result<Variant> {
        let mut rest = idx;
        for (chunk, row) in self.parts {
            if rest < chunk.cols.len() {
                return Ok(chunk.cols[rest].get(*row));
            }
            rest -= chunk.cols.len();
        }
        let arity: usize = self.parts.iter().map(|(c, _)| c.cols.len()).sum();
        Err(SnowError::Exec(format!(
            "internal: column index {idx} out of range for row of {arity} columns"
        )))
    }
}

/// Evaluates a bound expression for one row.
pub fn eval(e: &PExpr, row: RowView<'_>, ctx: &mut ExecCtx) -> Result<Variant> {
    match e {
        PExpr::Col(i) => row.col(*i),
        PExpr::Lit(v) => Ok(v.clone()),
        PExpr::Unary { op, expr } => {
            let v = eval(expr, row, ctx)?;
            match op {
                UnaryOp::Plus => Ok(v),
                UnaryOp::Neg => match v {
                    Variant::Null => Ok(Variant::Null),
                    Variant::Int(i) => Ok(Variant::Int(-i)),
                    Variant::Float(f) => Ok(Variant::Float(-f)),
                    other => Err(SnowError::Exec(format!(
                        "cannot negate value of type {}",
                        other.type_name()
                    ))),
                },
            }
        }
        PExpr::Binary { left, op, right } => eval_binary(left, *op, right, row, ctx),
        PExpr::Not(x) => match eval(x, row, ctx)? {
            Variant::Null => Ok(Variant::Null),
            Variant::Bool(b) => Ok(Variant::Bool(!b)),
            other => Err(SnowError::Exec(format!(
                "NOT requires a boolean, got {}",
                other.type_name()
            ))),
        },
        PExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            Ok(Variant::Bool(v.is_null() != *negated))
        }
        PExpr::InList { expr, list, negated } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Variant::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, ctx)?;
                if iv.is_null() {
                    saw_null = true;
                } else if iv == v {
                    return Ok(Variant::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Variant::Null)
            } else {
                Ok(Variant::Bool(*negated))
            }
        }
        PExpr::Case { operand, branches, else_expr } => {
            let op_val = operand.as_ref().map(|o| eval(o, row, ctx)).transpose()?;
            for (cond, val) in branches {
                let hit = match &op_val {
                    Some(ov) => {
                        let cv = eval(cond, row, ctx)?;
                        !ov.is_null() && !cv.is_null() && *ov == cv
                    }
                    None => matches!(eval(cond, row, ctx)?, Variant::Bool(true)),
                };
                if hit {
                    return eval(val, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, row, ctx),
                None => Ok(Variant::Null),
            }
        }
        PExpr::Func { f, args } => eval_func(*f, args, row, ctx),
        PExpr::Cast { expr, ty } => {
            let v = eval(expr, row, ctx)?;
            cast(v, *ty)
        }
        PExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, row, ctx)?;
            let p = eval(pattern, row, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Variant::Null);
            }
            match (v.as_str(), p.as_str()) {
                (Some(text), Some(pat)) => {
                    Ok(Variant::Bool(like_match(text, pat) != *negated))
                }
                _ => Err(SnowError::Exec("LIKE expects string operands".into())),
            }
        }
        PExpr::Path { base, steps } => {
            let mut v = eval(base, row, ctx)?;
            for s in steps {
                v = match s {
                    PStep::Field(f) => v.get_field(f),
                    PStep::Index(i) => v.get_index(*i),
                    PStep::IndexExpr(e) => {
                        let idx = eval(e, row, ctx)?;
                        match idx.as_i64() {
                            Some(i) => v.get_index(i),
                            None => Variant::Null,
                        }
                    }
                };
                if v.is_null() {
                    break;
                }
            }
            Ok(v)
        }
    }
}

fn eval_binary(
    left: &PExpr,
    op: BinOp,
    right: &PExpr,
    row: RowView<'_>,
    ctx: &mut ExecCtx,
) -> Result<Variant> {
    // Three-valued logic with short-circuiting for AND/OR.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, row, ctx)?;
        let lb = truth(&l)?;
        match (op, lb) {
            (BinOp::And, Some(false)) => return Ok(Variant::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Variant::Bool(true)),
            _ => {}
        }
        let r = eval(right, row, ctx)?;
        let rb = truth(&r)?;
        return Ok(match (op, lb, rb) {
            (BinOp::And, Some(true), Some(b)) => Variant::Bool(b),
            (BinOp::And, _, Some(false)) => Variant::Bool(false),
            (BinOp::Or, Some(false), Some(b)) => Variant::Bool(b),
            (BinOp::Or, _, Some(true)) => Variant::Bool(true),
            _ => Variant::Null,
        });
    }

    let l = eval(left, row, ctx)?;
    let r = eval(right, row, ctx)?;
    if l.is_null() || r.is_null() {
        return Ok(Variant::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => arith(&l, op, &r),
        BinOp::Div => match NumericPair::coerce(&l, &r) {
            Some(NumericPair::Int(a, b)) => {
                if b == 0 {
                    Err(SnowError::Exec("division by zero".into()))
                } else {
                    // Snowflake `/` produces a fractional result.
                    Ok(Variant::Float(a as f64 / b as f64))
                }
            }
            Some(NumericPair::Float(a, b)) => {
                if b == 0.0 {
                    Err(SnowError::Exec("division by zero".into()))
                } else {
                    Ok(Variant::Float(a / b))
                }
            }
            None => Err(type_err("divide", &l, &r)),
        },
        BinOp::Mod => match NumericPair::coerce(&l, &r) {
            Some(NumericPair::Int(a, b)) => {
                if b == 0 {
                    Err(SnowError::Exec("division by zero".into()))
                } else {
                    Ok(Variant::Int(a % b))
                }
            }
            Some(NumericPair::Float(a, b)) => Ok(Variant::Float(a % b)),
            None => Err(type_err("mod", &l, &r)),
        },
        BinOp::Eq => Ok(Variant::Bool(l == r)),
        BinOp::NotEq => Ok(Variant::Bool(l != r)),
        BinOp::Lt => Ok(Variant::Bool(ordered(&l, &r)? == Ordering::Less)),
        BinOp::LtEq => Ok(Variant::Bool(ordered(&l, &r)? != Ordering::Greater)),
        BinOp::Gt => Ok(Variant::Bool(ordered(&l, &r)? == Ordering::Greater)),
        BinOp::GtEq => Ok(Variant::Bool(ordered(&l, &r)? != Ordering::Less)),
        BinOp::Concat => match (&l, &r) {
            (Variant::Str(a), Variant::Str(b)) => {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                Ok(Variant::from(s))
            }
            _ => Ok(Variant::from(format!("{l}{r}"))),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(l: &Variant, op: BinOp, r: &Variant) -> Result<Variant> {
    match NumericPair::coerce(l, r) {
        Some(NumericPair::Int(a, b)) => {
            let res = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                _ => unreachable!(),
            };
            Ok(match res {
                Some(v) => Variant::Int(v),
                // Promote to double on i64 overflow rather than failing the query.
                None => {
                    let (af, bf) = (a as f64, b as f64);
                    Variant::Float(match op {
                        BinOp::Add => af + bf,
                        BinOp::Sub => af - bf,
                        BinOp::Mul => af * bf,
                        _ => unreachable!(),
                    })
                }
            })
        }
        Some(NumericPair::Float(a, b)) => Ok(Variant::Float(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            _ => unreachable!(),
        })),
        None => Err(type_err("apply arithmetic to", l, r)),
    }
}

fn ordered(l: &Variant, r: &Variant) -> Result<Ordering> {
    let comparable = matches!(
        (l, r),
        (Variant::Int(_) | Variant::Float(_), Variant::Int(_) | Variant::Float(_))
            | (Variant::Str(_), Variant::Str(_))
            | (Variant::Bool(_), Variant::Bool(_))
    );
    if !comparable {
        return Err(type_err("compare", l, r));
    }
    Ok(cmp_variants(l, r))
}

fn type_err(what: &str, l: &Variant, r: &Variant) -> SnowError {
    SnowError::Exec(format!(
        "cannot {what} values of types {} and {}",
        l.type_name(),
        r.type_name()
    ))
}

/// SQL `LIKE` matching: `%` matches any run of characters, `_` any single one.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                (0..=t.len()).any(|skip| rec(&t[skip..], rest))
            }
            Some(('_', rest)) => match t.split_first() {
                Some((_, tr)) => rec(tr, rest),
                None => false,
            },
            Some((c, rest)) => match t.split_first() {
                Some((tc, tr)) => tc == c && rec(tr, rest),
                None => false,
            },
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// SQL truth value of an expression result: `Some(bool)` or `None` for NULL.
pub fn truth(v: &Variant) -> Result<Option<bool>> {
    match v {
        Variant::Null => Ok(None),
        Variant::Bool(b) => Ok(Some(*b)),
        other => Err(SnowError::Exec(format!(
            "expected a boolean condition, got {}",
            other.type_name()
        ))),
    }
}

/// Casts a value (`::type`, `CAST`, `TO_DOUBLE`, ...).
pub fn cast(v: Variant, ty: CastType) -> Result<Variant> {
    if v.is_null() {
        return Ok(Variant::Null);
    }
    match ty {
        CastType::Variant => Ok(v),
        CastType::Int => match &v {
            Variant::Int(_) => Ok(v),
            // Snowflake rounds half away from zero when casting to integer.
            Variant::Float(f) if f.is_finite() => Ok(Variant::Int(f.round() as i64)),
            Variant::Bool(b) => Ok(Variant::Int(*b as i64)),
            Variant::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Variant::Int)
                .map_err(|_| SnowError::Exec(format!("cannot cast '{s}' to INTEGER"))),
            _ => Err(SnowError::Exec(format!("cannot cast {} to INTEGER", v.type_name()))),
        },
        CastType::Float => match &v {
            Variant::Float(_) => Ok(v),
            Variant::Int(i) => Ok(Variant::Float(*i as f64)),
            Variant::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Variant::Float)
                .map_err(|_| SnowError::Exec(format!("cannot cast '{s}' to DOUBLE"))),
            _ => Err(SnowError::Exec(format!("cannot cast {} to DOUBLE", v.type_name()))),
        },
        CastType::Bool => match &v {
            Variant::Bool(_) => Ok(v),
            Variant::Int(i) => Ok(Variant::Bool(*i != 0)),
            Variant::Str(s) if s.eq_ignore_ascii_case("true") => Ok(Variant::Bool(true)),
            Variant::Str(s) if s.eq_ignore_ascii_case("false") => Ok(Variant::Bool(false)),
            _ => Err(SnowError::Exec(format!("cannot cast {} to BOOLEAN", v.type_name()))),
        },
        CastType::Str => match &v {
            Variant::Str(_) => Ok(v),
            other => Ok(Variant::from(crate::variant::to_json(other))),
        },
    }
}

fn need_f64(v: &Variant, fname: &str) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| SnowError::Exec(format!("{fname} expects a number, got {}", v.type_name())))
}

fn eval_func(f: FuncId, args: &[PExpr], row: RowView<'_>, ctx: &mut ExecCtx) -> Result<Variant> {
    // COALESCE must not evaluate later arguments eagerly only in the presence
    // of side effects; all our functions are pure except SEQ8, so eager
    // evaluation is fine and keeps the code simple.
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, row, ctx)?);
    }
    let argc = vals.len();
    let arity = |want: usize| -> Result<()> {
        if argc == want {
            Ok(())
        } else {
            Err(SnowError::Exec(format!("{f:?} expects {want} arguments, got {argc}")))
        }
    };
    // NULL-propagating unary math helper.
    macro_rules! math1 {
        ($f:expr) => {{
            arity(1)?;
            if vals[0].is_null() {
                return Ok(Variant::Null);
            }
            let x = need_f64(&vals[0], &format!("{f:?}"))?;
            #[allow(clippy::redundant_closure_call)]
            Ok(Variant::Float(($f)(x)))
        }};
    }
    match f {
        FuncId::Abs => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Int(i) => Ok(Variant::Int(i.abs())),
                Variant::Float(x) => Ok(Variant::Float(x.abs())),
                other => Err(SnowError::Exec(format!("ABS expects a number, got {}", other.type_name()))),
            }
        }
        FuncId::Sqrt => math1!(f64::sqrt),
        FuncId::Exp => math1!(f64::exp),
        FuncId::Ln => math1!(f64::ln),
        FuncId::Atan => math1!(f64::atan),
        FuncId::Asin => math1!(f64::asin),
        FuncId::Acos => math1!(f64::acos),
        FuncId::Sin => math1!(f64::sin),
        FuncId::Cos => math1!(f64::cos),
        FuncId::Tan => math1!(f64::tan),
        FuncId::Sinh => math1!(f64::sinh),
        FuncId::Cosh => math1!(f64::cosh),
        FuncId::Tanh => math1!(f64::tanh),
        FuncId::Power => {
            arity(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Variant::Null);
            }
            let a = need_f64(&vals[0], "POWER")?;
            let b = need_f64(&vals[1], "POWER")?;
            Ok(Variant::Float(a.powf(b)))
        }
        FuncId::Atan2 => {
            arity(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Variant::Null);
            }
            let y = need_f64(&vals[0], "ATAN2")?;
            let x = need_f64(&vals[1], "ATAN2")?;
            Ok(Variant::Float(y.atan2(x)))
        }
        FuncId::Log => {
            arity(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Variant::Null);
            }
            let base = need_f64(&vals[0], "LOG")?;
            let x = need_f64(&vals[1], "LOG")?;
            Ok(Variant::Float(x.log(base)))
        }
        FuncId::Floor => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Int(i) => Ok(Variant::Int(*i)),
                Variant::Float(x) => Ok(Variant::Float(x.floor())),
                other => Err(SnowError::Exec(format!("FLOOR expects a number, got {}", other.type_name()))),
            }
        }
        FuncId::Ceil => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Int(i) => Ok(Variant::Int(*i)),
                Variant::Float(x) => Ok(Variant::Float(x.ceil())),
                other => Err(SnowError::Exec(format!("CEIL expects a number, got {}", other.type_name()))),
            }
        }
        FuncId::Round => {
            if argc == 1 {
                match &vals[0] {
                    Variant::Null => Ok(Variant::Null),
                    Variant::Int(i) => Ok(Variant::Int(*i)),
                    Variant::Float(x) => Ok(Variant::Float(x.round())),
                    other => Err(SnowError::Exec(format!("ROUND expects a number, got {}", other.type_name()))),
                }
            } else {
                arity(2)?;
                if vals[0].is_null() || vals[1].is_null() {
                    return Ok(Variant::Null);
                }
                let x = need_f64(&vals[0], "ROUND")?;
                let d = vals[1]
                    .as_i64()
                    .ok_or_else(|| SnowError::Exec("ROUND scale must be an integer".into()))?;
                let m = 10f64.powi(d as i32);
                Ok(Variant::Float((x * m).round() / m))
            }
        }
        FuncId::Sign => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Int(i) => Ok(Variant::Int(i.signum())),
                Variant::Float(x) => Ok(Variant::Int(if *x > 0.0 {
                    1
                } else if *x < 0.0 {
                    -1
                } else {
                    0
                })),
                other => Err(SnowError::Exec(format!("SIGN expects a number, got {}", other.type_name()))),
            }
        }
        FuncId::Mod => {
            arity(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Variant::Null);
            }
            match NumericPair::coerce(&vals[0], &vals[1]) {
                Some(NumericPair::Int(a, b)) if b != 0 => Ok(Variant::Int(a % b)),
                Some(NumericPair::Int(..)) => Err(SnowError::Exec("division by zero".into())),
                Some(NumericPair::Float(a, b)) => Ok(Variant::Float(a % b)),
                None => Err(SnowError::Exec("MOD expects numbers".into())),
            }
        }
        FuncId::Div0 => {
            arity(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Variant::Null);
            }
            match NumericPair::coerce(&vals[0], &vals[1]) {
                Some(NumericPair::Int(a, b)) => {
                    Ok(if b == 0 { Variant::Int(0) } else { Variant::Float(a as f64 / b as f64) })
                }
                Some(NumericPair::Float(a, b)) => {
                    Ok(if b == 0.0 { Variant::Int(0) } else { Variant::Float(a / b) })
                }
                None => Err(SnowError::Exec("DIV0 expects numbers".into())),
            }
        }
        FuncId::Pi => {
            arity(0)?;
            Ok(Variant::Float(std::f64::consts::PI))
        }
        FuncId::Greatest | FuncId::Least => {
            if vals.is_empty() {
                return Err(SnowError::Exec(format!("{f:?} needs at least one argument")));
            }
            if vals.iter().any(Variant::is_null) {
                return Ok(Variant::Null);
            }
            let want = if f == FuncId::Greatest { Ordering::Greater } else { Ordering::Less };
            let mut best = vals[0].clone();
            for v in &vals[1..] {
                if cmp_variants(v, &best) == want {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        FuncId::Coalesce => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Variant::Null)
        }
        FuncId::Nvl => {
            arity(2)?;
            if vals[0].is_null() {
                Ok(vals[1].clone())
            } else {
                Ok(vals[0].clone())
            }
        }
        FuncId::NullIf => {
            arity(2)?;
            if !vals[0].is_null() && vals[0] == vals[1] {
                Ok(Variant::Null)
            } else {
                Ok(vals[0].clone())
            }
        }
        FuncId::Iff => {
            arity(3)?;
            match truth(&vals[0])? {
                Some(true) => Ok(vals[1].clone()),
                _ => Ok(vals[2].clone()),
            }
        }
        FuncId::ObjectConstruct => {
            if argc % 2 != 0 {
                return Err(SnowError::Exec(
                    "OBJECT_CONSTRUCT expects an even number of arguments".into(),
                ));
            }
            // Keep-null semantics (OBJECT_CONSTRUCT_KEEP_NULL): the JSONiq
            // object constructor preserves null-valued fields.
            let mut obj = Object::with_capacity(argc / 2);
            for pair in vals.chunks_exact(2) {
                let key = pair[0].as_str().ok_or_else(|| {
                    SnowError::Exec("OBJECT_CONSTRUCT keys must be strings".into())
                })?;
                obj.insert(key, pair[1].clone());
            }
            Ok(Variant::object(obj))
        }
        FuncId::ArrayConstruct => Ok(Variant::array(vals)),
        FuncId::ArraySize => {
            arity(1)?;
            match &vals[0] {
                Variant::Array(a) => Ok(Variant::Int(a.len() as i64)),
                _ => Ok(Variant::Null),
            }
        }
        FuncId::ArrayCat => {
            arity(2)?;
            match (&vals[0], &vals[1]) {
                (Variant::Array(a), Variant::Array(b)) => {
                    let mut out = Vec::with_capacity(a.len() + b.len());
                    out.extend(a.iter().cloned());
                    out.extend(b.iter().cloned());
                    Ok(Variant::array(out))
                }
                _ => Ok(Variant::Null),
            }
        }
        FuncId::ArrayFilter => {
            arity(4)?;
            let arr = match &vals[0] {
                Variant::Array(a) => a,
                _ => return Ok(Variant::Null),
            };
            let field = match &vals[1] {
                Variant::Null => None,
                Variant::Str(s) => Some(s.clone()),
                _ => return Err(SnowError::Exec("ARRAY_FILTER field must be a string or NULL".into())),
            };
            let op = vals[2]
                .as_str()
                .ok_or_else(|| SnowError::Exec("ARRAY_FILTER op must be a string".into()))?
                .to_string();
            let lit = vals[3].clone();
            let mut out = Vec::new();
            for item in arr.iter() {
                let subject = match &field {
                    Some(f) => item.get_field(f),
                    None => item.clone(),
                };
                if subject.is_null() {
                    continue;
                }
                let keep = match op.as_str() {
                    "=" => subject == lit,
                    "<>" => subject != lit,
                    "<" => ordered(&subject, &lit)? == Ordering::Less,
                    "<=" => ordered(&subject, &lit)? != Ordering::Greater,
                    ">" => ordered(&subject, &lit)? == Ordering::Greater,
                    ">=" => ordered(&subject, &lit)? != Ordering::Less,
                    other => {
                        return Err(SnowError::Exec(format!(
                            "ARRAY_FILTER: unsupported operator '{other}'"
                        )))
                    }
                };
                if keep {
                    out.push(item.clone());
                }
            }
            Ok(Variant::array(out))
        }
        FuncId::ArrayContains => {
            arity(2)?;
            match &vals[1] {
                Variant::Array(a) => Ok(Variant::Bool(a.iter().any(|x| *x == vals[0]))),
                _ => Ok(Variant::Null),
            }
        }
        FuncId::Get => {
            arity(2)?;
            match &vals[1] {
                Variant::Str(k) => Ok(vals[0].get_field(k)),
                v => match v.as_i64() {
                    Some(i) => Ok(vals[0].get_index(i)),
                    None => Ok(Variant::Null),
                },
            }
        }
        FuncId::TypeOf => {
            arity(1)?;
            Ok(Variant::from(vals[0].type_name()))
        }
        FuncId::ToDouble => {
            arity(1)?;
            cast(vals[0].clone(), CastType::Float)
        }
        FuncId::Upper => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Str(s) => Ok(Variant::from(s.to_uppercase())),
                other => Err(SnowError::Exec(format!("UPPER expects a string, got {}", other.type_name()))),
            }
        }
        FuncId::Lower => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Str(s) => Ok(Variant::from(s.to_lowercase())),
                other => Err(SnowError::Exec(format!("LOWER expects a string, got {}", other.type_name()))),
            }
        }
        FuncId::Substr => {
            if argc != 2 && argc != 3 {
                return Err(SnowError::Exec("SUBSTR expects 2 or 3 arguments".into()));
            }
            if vals.iter().any(Variant::is_null) {
                return Ok(Variant::Null);
            }
            let s = vals[0]
                .as_str()
                .ok_or_else(|| SnowError::Exec("SUBSTR expects a string".into()))?;
            let start = vals[1]
                .as_i64()
                .ok_or_else(|| SnowError::Exec("SUBSTR start must be an integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            // SQL is 1-based; negative counts from the end.
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub((-start) as usize)
            } else {
                0
            };
            let len = if argc == 3 {
                vals[2]
                    .as_i64()
                    .ok_or_else(|| SnowError::Exec("SUBSTR length must be an integer".into()))?
                    .max(0) as usize
            } else {
                usize::MAX
            };
            let out: String = chars.iter().skip(begin).take(len).collect();
            Ok(Variant::from(out))
        }
        FuncId::Length => {
            arity(1)?;
            match &vals[0] {
                Variant::Null => Ok(Variant::Null),
                Variant::Str(s) => Ok(Variant::Int(s.chars().count() as i64)),
                other => Err(SnowError::Exec(format!("LENGTH expects a string, got {}", other.type_name()))),
            }
        }
        FuncId::Concat => {
            let mut out = String::new();
            for v in &vals {
                if v.is_null() {
                    return Ok(Variant::Null);
                }
                match v {
                    Variant::Str(s) => out.push_str(s),
                    other => out.push_str(&format!("{other}")),
                }
            }
            Ok(Variant::from(out))
        }
        FuncId::Seq8 => {
            arity(0)?;
            let v = ctx.seq_counter;
            ctx.seq_counter += 1;
            Ok(Variant::Int(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Chunk;

    fn ectx() -> ExecCtx {
        ExecCtx::default()
    }

    fn one_row() -> Chunk {
        Chunk { cols: vec![], rows: 1 }
    }

    fn ev(e: &PExpr) -> Result<Variant> {
        let c = one_row();
        let parts = [(&c, 0usize)];
        eval(e, RowView::new(&parts), &mut ectx())
    }

    fn lit(v: Variant) -> PExpr {
        PExpr::Lit(v)
    }

    fn bin(l: PExpr, op: BinOp, r: PExpr) -> PExpr {
        PExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    #[test]
    fn out_of_range_column_is_a_typed_error_not_a_panic() {
        let c = Chunk {
            cols: vec![crate::exec::ColumnVec::from_variants(vec![Variant::Int(1)])],
            rows: 1,
        };
        let parts = [(&c, 0usize)];
        let err = eval(&PExpr::Col(5), RowView::new(&parts), &mut ectx()).unwrap_err();
        assert!(matches!(err, SnowError::Exec(_)));
        assert!(err.to_string().contains("column index 5 out of range"));
    }

    #[test]
    fn arithmetic_with_coercion() {
        assert_eq!(
            ev(&bin(lit(Variant::Int(2)), BinOp::Add, lit(Variant::Float(0.5)))).unwrap(),
            Variant::Float(2.5)
        );
        assert_eq!(
            ev(&bin(lit(Variant::Int(7)), BinOp::Div, lit(Variant::Int(2)))).unwrap(),
            Variant::Float(3.5)
        );
        assert_eq!(
            ev(&bin(lit(Variant::Int(7)), BinOp::Mod, lit(Variant::Int(4)))).unwrap(),
            Variant::Int(3)
        );
    }

    #[test]
    fn overflow_promotes_to_float() {
        let v = ev(&bin(lit(Variant::Int(i64::MAX)), BinOp::Add, lit(Variant::Int(1)))).unwrap();
        assert_eq!(v, Variant::Float(i64::MAX as f64 + 1.0));
    }

    #[test]
    fn three_valued_logic() {
        let t = lit(Variant::Bool(true));
        let f = lit(Variant::Bool(false));
        let n = lit(Variant::Null);
        assert_eq!(ev(&bin(f.clone(), BinOp::And, n.clone())).unwrap(), Variant::Bool(false));
        assert_eq!(ev(&bin(t.clone(), BinOp::And, n.clone())).unwrap(), Variant::Null);
        assert_eq!(ev(&bin(t.clone(), BinOp::Or, n.clone())).unwrap(), Variant::Bool(true));
        assert_eq!(ev(&bin(f, BinOp::Or, n.clone())).unwrap(), Variant::Null);
        assert_eq!(ev(&PExpr::Not(Box::new(n))).unwrap(), Variant::Null);
    }

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(
            ev(&bin(lit(Variant::Null), BinOp::Eq, lit(Variant::Int(1)))).unwrap(),
            Variant::Null
        );
    }

    #[test]
    fn in_list_null_semantics() {
        // 1 IN (2, NULL) => NULL; 1 IN (1, NULL) => TRUE
        let e = PExpr::InList {
            expr: Box::new(lit(Variant::Int(1))),
            list: vec![lit(Variant::Int(2)), lit(Variant::Null)],
            negated: false,
        };
        assert_eq!(ev(&e).unwrap(), Variant::Null);
        let e = PExpr::InList {
            expr: Box::new(lit(Variant::Int(1))),
            list: vec![lit(Variant::Int(1)), lit(Variant::Null)],
            negated: false,
        };
        assert_eq!(ev(&e).unwrap(), Variant::Bool(true));
    }

    #[test]
    fn cast_rounds_to_int() {
        assert_eq!(cast(Variant::Float(2.5), CastType::Int).unwrap(), Variant::Int(3));
        assert_eq!(cast(Variant::Float(-2.5), CastType::Int).unwrap(), Variant::Int(-3));
        assert_eq!(cast(Variant::str(" 42 "), CastType::Int).unwrap(), Variant::Int(42));
        assert!(cast(Variant::str("x"), CastType::Int).is_err());
    }

    #[test]
    fn object_construct_keeps_nulls() {
        let e = PExpr::Func {
            f: FuncId::ObjectConstruct,
            args: vec![lit(Variant::str("a")), lit(Variant::Null)],
        };
        let v = ev(&e).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.len(), 1);
        assert!(o.get("a").unwrap().is_null());
    }

    #[test]
    fn path_access_through_arrays() {
        let inner = Variant::array(vec![Variant::Int(5), Variant::Int(6)]);
        let mut obj = Object::new();
        obj.insert("XS", inner);
        let e = PExpr::Path {
            base: Box::new(lit(Variant::object(obj))),
            steps: vec![PStep::Field("XS".into()), PStep::Index(1)],
        };
        assert_eq!(ev(&e).unwrap(), Variant::Int(6));
    }

    #[test]
    fn seq8_is_monotone() {
        let c = one_row();
        let parts = [(&c, 0usize)];
        let mut ctx = ectx();
        let e = PExpr::Func { f: FuncId::Seq8, args: vec![] };
        let a = eval(&e, RowView::new(&parts), &mut ctx).unwrap();
        let b = eval(&e, RowView::new(&parts), &mut ctx).unwrap();
        assert_eq!(a, Variant::Int(0));
        assert_eq!(b, Variant::Int(1));
    }

    #[test]
    fn substr_is_one_based() {
        let e = PExpr::Func {
            f: FuncId::Substr,
            args: vec![lit(Variant::str("hello")), lit(Variant::Int(2)), lit(Variant::Int(3))],
        };
        assert_eq!(ev(&e).unwrap(), Variant::str("ell"));
    }

    #[test]
    fn iff_and_coalesce() {
        let e = PExpr::Func {
            f: FuncId::Iff,
            args: vec![lit(Variant::Bool(false)), lit(Variant::Int(1)), lit(Variant::Int(2))],
        };
        assert_eq!(ev(&e).unwrap(), Variant::Int(2));
        let e = PExpr::Func {
            f: FuncId::Coalesce,
            args: vec![lit(Variant::Null), lit(Variant::Int(9))],
        };
        assert_eq!(ev(&e).unwrap(), Variant::Int(9));
    }
}
