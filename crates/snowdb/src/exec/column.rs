//! Typed column vectors for execution batches.
//!
//! Storage already shreds declared columns into typed vectors
//! ([`ColumnData`]); before this module the executor un-did that work at the
//! scan boundary by boxing every cell into a [`Variant`]. [`ColumnVec`] keeps
//! the shredded representation flowing through the whole pipeline: a batch
//! column is a dense typed vector plus a validity bitmap, and only genuinely
//! mixed data pays for boxed `Variant` storage.
//!
//! ## Adaptivity contract
//!
//! A `ColumnVec` starts as [`ColumnVec::Null`] (an untyped run of NULLs) and
//! commits to the type of the first non-null value pushed into it. When a
//! later value does not match the committed type the column *promotes* to
//! [`ColumnVec::Var`] — values are re-boxed, never coerced, so
//! `col.push(v); col.get(col.len() - 1)` always returns exactly `v`. This
//! mirrors the storage-side rule of [`ColumnData::push`] but is stricter: the
//! executor never cross-promotes Int↔Float, because expression semantics
//! (e.g. `TYPEOF`, integer overflow promotion) can observe the difference.

use std::sync::Arc;

use crate::storage::encode::{run_index, NULL_CODE};
use crate::storage::ColumnData;
use crate::variant::{Key, Variant};

/// Validity bitmap: bit `i` set means row `i` holds a value (not NULL).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Bitmap of `n` cleared (NULL) bits.
    pub fn nulls(n: usize) -> Bitmap {
        Bitmap { blocks: vec![0; n.div_ceil(64)], len: n }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, valid: bool) {
        let (block, bit) = (self.len / 64, self.len % 64);
        if bit == 0 {
            self.blocks.push(0);
        }
        if valid {
            self.blocks[block] |= 1 << bit;
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set (valid) bits. Bits beyond `len` are kept zero by
    /// construction, so a plain popcount over the blocks is exact.
    pub fn count_valid(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Keeps the first `n` bits, clearing any tail bits in the last block so
    /// `count_valid` stays exact.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.blocks.truncate(n.div_ceil(64));
        if !n.is_multiple_of(64) {
            let last = self.blocks.len() - 1;
            self.blocks[last] &= (1u64 << (n % 64)) - 1;
        }
        self.len = n;
    }

    /// Splits off the bits at `at..` into a new bitmap. Batches are at most a
    /// few thousand bits, so the bit-at-a-time copy is not a hot path.
    pub fn split_off(&mut self, at: usize) -> Bitmap {
        let mut tail = Bitmap::new();
        for i in at..self.len {
            tail.push(self.get(i));
        }
        self.truncate(at);
        tail
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// One column of an execution batch: a typed vector with a validity bitmap,
/// or boxed variants for mixed/nested data. Fields are public so vectorized
/// kernels can match on the representation directly.
#[derive(Clone, Debug)]
pub enum ColumnVec {
    /// An untyped run of NULLs — the state of a column before any non-null
    /// value commits it to a type, and the free representation for columns a
    /// scan was told not to materialize.
    Null(usize),
    Int { vals: Vec<i64>, valid: Bitmap },
    Float { vals: Vec<f64>, valid: Bitmap },
    Bool { vals: Vec<bool>, valid: Bitmap },
    /// Strings use the `Option` niche directly; the `Arc` payload makes
    /// copies cheap.
    Str(Vec<Option<Arc<str>>>),
    /// Dictionary-encoded strings flowing straight off an encoded partition
    /// block: `codes[i]` indexes the shared dictionary,
    /// [`NULL_CODE`] marks a NULL row. Kernels compare/hash the codes and
    /// defer string materialization to project/sort/result boundaries.
    DictStr { codes: Vec<u32>, dict: Arc<Vec<Arc<str>>> },
    /// Run-length runs off an encoded partition block: run `r` covers rows
    /// `ends[r-1]..ends[r]` (local to this batch) and `values` holds one row
    /// per run.
    Runs { ends: Vec<u32>, values: Box<ColumnVec> },
    /// Boxed fallback for mixed types and nested values.
    Var(Vec<Variant>),
}

impl Default for ColumnVec {
    fn default() -> ColumnVec {
        ColumnVec::Null(0)
    }
}

impl ColumnVec {
    /// Empty untyped column.
    pub fn new() -> ColumnVec {
        ColumnVec::Null(0)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Null(n) => *n,
            ColumnVec::Int { vals, .. } => vals.len(),
            ColumnVec::Float { vals, .. } => vals.len(),
            ColumnVec::Bool { vals, .. } => vals.len(),
            ColumnVec::Str(v) => v.len(),
            ColumnVec::DictStr { codes, .. } => codes.len(),
            ColumnVec::Runs { ends, .. } => ends.last().map_or(0, |&e| e as usize),
            ColumnVec::Var(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads row `i` back as a variant.
    pub fn get(&self, i: usize) -> Variant {
        match self {
            ColumnVec::Null(n) => {
                debug_assert!(i < *n);
                Variant::Null
            }
            ColumnVec::Int { vals, valid } => {
                if valid.get(i) {
                    Variant::Int(vals[i])
                } else {
                    Variant::Null
                }
            }
            ColumnVec::Float { vals, valid } => {
                if valid.get(i) {
                    Variant::Float(vals[i])
                } else {
                    Variant::Null
                }
            }
            ColumnVec::Bool { vals, valid } => {
                if valid.get(i) {
                    Variant::Bool(vals[i])
                } else {
                    Variant::Null
                }
            }
            ColumnVec::Str(v) => v[i].clone().map_or(Variant::Null, Variant::Str),
            ColumnVec::DictStr { codes, dict } => {
                if codes[i] == NULL_CODE {
                    Variant::Null
                } else {
                    Variant::Str(dict[codes[i] as usize].clone())
                }
            }
            ColumnVec::Runs { ends, values } => values.get(run_index(ends, i)),
            ColumnVec::Var(v) => v[i].clone(),
        }
    }

    /// True when row `i` is NULL.
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            ColumnVec::Null(_) => true,
            ColumnVec::Int { valid, .. } => !valid.get(i),
            ColumnVec::Float { valid, .. } => !valid.get(i),
            ColumnVec::Bool { valid, .. } => !valid.get(i),
            ColumnVec::Str(v) => v[i].is_none(),
            ColumnVec::DictStr { codes, .. } => codes[i] == NULL_CODE,
            ColumnVec::Runs { ends, values } => values.is_null_at(run_index(ends, i)),
            ColumnVec::Var(v) => v[i].is_null(),
        }
    }

    /// Canonical group/distinct/join key for row `i`, equal to
    /// `Key::of(&self.get(i))` but without boxing typed values.
    pub fn key_at(&self, i: usize) -> Key {
        match self {
            ColumnVec::Null(_) => Key::Null,
            ColumnVec::Int { vals, valid } => {
                if valid.get(i) {
                    Key::Int(vals[i])
                } else {
                    Key::Null
                }
            }
            ColumnVec::Float { vals, valid } => {
                if valid.get(i) {
                    Key::of_f64(vals[i])
                } else {
                    Key::Null
                }
            }
            ColumnVec::Bool { vals, valid } => {
                if valid.get(i) {
                    Key::Bool(vals[i])
                } else {
                    Key::Null
                }
            }
            ColumnVec::Str(v) => v[i].clone().map_or(Key::Null, Key::Str),
            ColumnVec::DictStr { codes, dict } => {
                if codes[i] == NULL_CODE {
                    Key::Null
                } else {
                    Key::Str(dict[codes[i] as usize].clone())
                }
            }
            ColumnVec::Runs { ends, values } => values.key_at(run_index(ends, i)),
            ColumnVec::Var(v) => Key::of(&v[i]),
        }
    }

    /// Appends a value, adapting the representation per the module contract:
    /// first non-null value commits the type, mismatches promote to `Var`.
    pub fn push(&mut self, v: Variant) {
        match (&mut *self, v) {
            (ColumnVec::Null(n), Variant::Null) => *n += 1,
            (ColumnVec::Int { vals, valid }, Variant::Int(i)) => {
                vals.push(i);
                valid.push(true);
            }
            (ColumnVec::Int { vals, valid }, Variant::Null) => {
                vals.push(0);
                valid.push(false);
            }
            (ColumnVec::Float { vals, valid }, Variant::Float(f)) => {
                vals.push(f);
                valid.push(true);
            }
            (ColumnVec::Float { vals, valid }, Variant::Null) => {
                vals.push(0.0);
                valid.push(false);
            }
            (ColumnVec::Bool { vals, valid }, Variant::Bool(b)) => {
                vals.push(b);
                valid.push(true);
            }
            (ColumnVec::Bool { vals, valid }, Variant::Null) => {
                vals.push(false);
                valid.push(false);
            }
            (ColumnVec::Str(vals), Variant::Str(s)) => vals.push(Some(s)),
            (ColumnVec::Str(vals), Variant::Null) => vals.push(None),
            (ColumnVec::DictStr { codes, .. }, Variant::Null) => codes.push(NULL_CODE),
            (ColumnVec::DictStr { .. } | ColumnVec::Runs { .. }, v) => {
                // Encoded columns are scan-produced; a stray row push decodes
                // in place and retries under the adaptive contract.
                self.decode_in_place();
                self.push(v);
            }
            (ColumnVec::Var(vals), v) => vals.push(v),
            (_, v) => {
                self.adapt_for(&v);
                self.push(v);
            }
        }
    }

    /// Appends one NULL.
    pub fn push_null(&mut self) {
        self.push(Variant::Null);
    }

    /// Appends `n` NULLs.
    pub fn push_nulls(&mut self, n: usize) {
        if let ColumnVec::Null(len) = self {
            *len += n;
            return;
        }
        for _ in 0..n {
            self.push(Variant::Null);
        }
    }

    /// Re-types the column so `v` can be pushed natively: an untyped NULL run
    /// commits to `v`'s type (backfilling null slots); a committed column
    /// promotes to `Var`.
    fn adapt_for(&mut self, v: &Variant) {
        match self {
            ColumnVec::Null(n) => {
                let n = *n;
                *self = match v {
                    Variant::Int(_) => {
                        ColumnVec::Int { vals: vec![0; n], valid: Bitmap::nulls(n) }
                    }
                    Variant::Float(_) => {
                        ColumnVec::Float { vals: vec![0.0; n], valid: Bitmap::nulls(n) }
                    }
                    Variant::Bool(_) => {
                        ColumnVec::Bool { vals: vec![false; n], valid: Bitmap::nulls(n) }
                    }
                    Variant::Str(_) => ColumnVec::Str(vec![None; n]),
                    Variant::Array(_) | Variant::Object(_) => {
                        ColumnVec::Var(vec![Variant::Null; n])
                    }
                    Variant::Null => unreachable!("null never forces a type"),
                };
            }
            _ => {
                let vals = std::mem::take(self).into_variants();
                *self = ColumnVec::Var(vals);
            }
        }
    }

    /// Re-types an untyped NULL run to the representation of `other` so
    /// subsequent typed row copies stay typed.
    fn adapt_to(&mut self, other: &ColumnVec) {
        let ColumnVec::Null(n) = self else { return };
        let n = *n;
        *self = match other {
            ColumnVec::Null(_) => return,
            ColumnVec::Int { .. } => {
                ColumnVec::Int { vals: vec![0; n], valid: Bitmap::nulls(n) }
            }
            ColumnVec::Float { .. } => {
                ColumnVec::Float { vals: vec![0.0; n], valid: Bitmap::nulls(n) }
            }
            ColumnVec::Bool { .. } => {
                ColumnVec::Bool { vals: vec![false; n], valid: Bitmap::nulls(n) }
            }
            ColumnVec::Str(_) => ColumnVec::Str(vec![None; n]),
            // Sharing the dictionary keeps subsequent same-dict copies on the
            // cheap code path.
            ColumnVec::DictStr { dict, .. } => {
                ColumnVec::DictStr { codes: vec![NULL_CODE; n], dict: dict.clone() }
            }
            ColumnVec::Runs { values, .. } => {
                self.adapt_to(values);
                return;
            }
            ColumnVec::Var(_) => ColumnVec::Var(vec![Variant::Null; n]),
        };
    }

    /// Copies row `i` of `other` to the end of this column without boxing
    /// when the representations match.
    pub fn push_from(&mut self, other: &ColumnVec, i: usize) {
        if matches!(self, ColumnVec::Null(_)) && !matches!(other, ColumnVec::Null(_)) {
            self.adapt_to(other);
        }
        match (&mut *self, other) {
            (ColumnVec::Null(n), ColumnVec::Null(_)) => *n += 1,
            (
                ColumnVec::Int { vals, valid },
                ColumnVec::Int { vals: ov, valid: ovalid },
            ) => {
                vals.push(ov[i]);
                valid.push(ovalid.get(i));
            }
            (
                ColumnVec::Float { vals, valid },
                ColumnVec::Float { vals: ov, valid: ovalid },
            ) => {
                vals.push(ov[i]);
                valid.push(ovalid.get(i));
            }
            (
                ColumnVec::Bool { vals, valid },
                ColumnVec::Bool { vals: ov, valid: ovalid },
            ) => {
                vals.push(ov[i]);
                valid.push(ovalid.get(i));
            }
            (ColumnVec::Str(vals), ColumnVec::Str(ov)) => vals.push(ov[i].clone()),
            (
                ColumnVec::DictStr { codes, dict },
                ColumnVec::DictStr { codes: oc, dict: od },
            ) if Arc::ptr_eq(dict, od) => codes.push(oc[i]),
            (ColumnVec::Str(vals), ColumnVec::DictStr { codes, dict }) => vals
                .push((codes[i] != NULL_CODE).then(|| dict[codes[i] as usize].clone())),
            (ColumnVec::Var(vals), ColumnVec::Var(ov)) => vals.push(ov[i].clone()),
            _ => self.push(other.get(i)),
        }
    }

    /// Appends all rows of `other`, promoting on representation mismatch.
    pub fn append(&mut self, other: ColumnVec) {
        if matches!(self, ColumnVec::Null(0)) {
            *self = other;
            return;
        }
        if matches!(self, ColumnVec::Null(_)) && !matches!(other, ColumnVec::Null(_)) {
            self.adapt_to(&other);
        }
        match (&mut *self, other) {
            (ColumnVec::Null(n), ColumnVec::Null(m)) => *n += m,
            (
                ColumnVec::Int { vals, valid },
                ColumnVec::Int { vals: ov, valid: ovalid },
            ) => {
                vals.extend(ov);
                valid.extend_from(&ovalid);
            }
            (
                ColumnVec::Float { vals, valid },
                ColumnVec::Float { vals: ov, valid: ovalid },
            ) => {
                vals.extend(ov);
                valid.extend_from(&ovalid);
            }
            (
                ColumnVec::Bool { vals, valid },
                ColumnVec::Bool { vals: ov, valid: ovalid },
            ) => {
                vals.extend(ov);
                valid.extend_from(&ovalid);
            }
            (ColumnVec::Str(vals), ColumnVec::Str(ov)) => vals.extend(ov),
            (
                ColumnVec::DictStr { codes, dict },
                ColumnVec::DictStr { codes: oc, dict: od },
            ) if Arc::ptr_eq(dict, &od) => codes.extend(oc),
            (ColumnVec::Str(vals), ColumnVec::DictStr { codes, dict }) => {
                vals.extend(codes.iter().map(|&c| {
                    (c != NULL_CODE).then(|| dict[c as usize].clone())
                }));
            }
            (ColumnVec::Var(vals), ColumnVec::Var(ov)) => vals.extend(ov),
            (_, other) => {
                // Representation mismatch: row-wise pushes promote as needed.
                for i in 0..other.len() {
                    self.push(other.get(i));
                }
            }
        }
    }

    /// Splits the column at `at`, returning the tail.
    pub fn split_off(&mut self, at: usize) -> ColumnVec {
        match self {
            ColumnVec::Null(n) => {
                let tail = *n - at;
                *n = at;
                ColumnVec::Null(tail)
            }
            ColumnVec::Int { vals, valid } => {
                ColumnVec::Int { vals: vals.split_off(at), valid: valid.split_off(at) }
            }
            ColumnVec::Float { vals, valid } => {
                ColumnVec::Float { vals: vals.split_off(at), valid: valid.split_off(at) }
            }
            ColumnVec::Bool { vals, valid } => {
                ColumnVec::Bool { vals: vals.split_off(at), valid: valid.split_off(at) }
            }
            ColumnVec::Str(v) => ColumnVec::Str(v.split_off(at)),
            ColumnVec::DictStr { codes, dict } => {
                ColumnVec::DictStr { codes: codes.split_off(at), dict: dict.clone() }
            }
            ColumnVec::Runs { ends, values } => {
                // Runs fully before `at` stay; a run straddling `at` is
                // truncated in the head and re-opened (same value) in the
                // tail.
                let at_u = at as u32;
                let r = ends.partition_point(|&e| e <= at_u);
                let run_start = if r == 0 { 0 } else { ends[r - 1] };
                let straddle = r < ends.len() && run_start < at_u;
                let tail_ends: Vec<u32> = ends[r..].iter().map(|&e| e - at_u).collect();
                ends.truncate(r);
                let tail_values = values.split_off(r);
                if straddle {
                    ends.push(at_u);
                    values.push_from(&tail_values, 0);
                }
                ColumnVec::Runs { ends: tail_ends, values: Box::new(tail_values) }
            }
            ColumnVec::Var(v) => ColumnVec::Var(v.split_off(at)),
        }
    }

    /// Keeps the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        match self {
            ColumnVec::Null(len) => *len = (*len).min(n),
            ColumnVec::Int { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Float { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Bool { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Str(v) => v.truncate(n),
            ColumnVec::DictStr { codes, .. } => codes.truncate(n),
            ColumnVec::Runs { ends, values } => {
                let r = ends.partition_point(|&e| (e as usize) <= n);
                let run_start = if r == 0 { 0 } else { ends[r - 1] as usize };
                if r < ends.len() && run_start < n {
                    values.truncate(r + 1);
                    ends.truncate(r);
                    ends.push(n as u32);
                } else {
                    values.truncate(r);
                    ends.truncate(r);
                }
            }
            ColumnVec::Var(v) => v.truncate(n),
        }
    }

    /// Builds a new column of `idx.len()` rows taking row `idx[j]` for output
    /// row `j`, preserving the typed representation.
    pub fn gather(&self, idx: &[usize]) -> ColumnVec {
        match self {
            ColumnVec::Null(_) => ColumnVec::Null(idx.len()),
            ColumnVec::Int { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    out.push(vals[i]);
                    ovalid.push(valid.get(i));
                }
                ColumnVec::Int { vals: out, valid: ovalid }
            }
            ColumnVec::Float { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    out.push(vals[i]);
                    ovalid.push(valid.get(i));
                }
                ColumnVec::Float { vals: out, valid: ovalid }
            }
            ColumnVec::Bool { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    out.push(vals[i]);
                    ovalid.push(valid.get(i));
                }
                ColumnVec::Bool { vals: out, valid: ovalid }
            }
            ColumnVec::Str(v) => {
                ColumnVec::Str(idx.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnVec::DictStr { codes, dict } => ColumnVec::DictStr {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
            ColumnVec::Runs { ends, values } => {
                // Gathered runs lose contiguity; emit the typed decoded form.
                let mut out = ColumnVec::new();
                for &i in idx {
                    out.push_from(values, run_index(ends, i));
                }
                out
            }
            ColumnVec::Var(v) => {
                ColumnVec::Var(idx.iter().map(|&i| v[i].clone()).collect())
            }
        }
    }

    /// Like [`ColumnVec::gather`], but `None` entries produce NULL rows
    /// (the outer-join emit path).
    pub fn gather_opt(&self, idx: &[Option<usize>]) -> ColumnVec {
        match self {
            ColumnVec::Null(_) => ColumnVec::Null(idx.len()),
            ColumnVec::Int { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    match i {
                        Some(i) => {
                            out.push(vals[i]);
                            ovalid.push(valid.get(i));
                        }
                        None => {
                            out.push(0);
                            ovalid.push(false);
                        }
                    }
                }
                ColumnVec::Int { vals: out, valid: ovalid }
            }
            ColumnVec::Float { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    match i {
                        Some(i) => {
                            out.push(vals[i]);
                            ovalid.push(valid.get(i));
                        }
                        None => {
                            out.push(0.0);
                            ovalid.push(false);
                        }
                    }
                }
                ColumnVec::Float { vals: out, valid: ovalid }
            }
            ColumnVec::Bool { vals, valid } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut ovalid = Bitmap::new();
                for &i in idx {
                    match i {
                        Some(i) => {
                            out.push(vals[i]);
                            ovalid.push(valid.get(i));
                        }
                        None => {
                            out.push(false);
                            ovalid.push(false);
                        }
                    }
                }
                ColumnVec::Bool { vals: out, valid: ovalid }
            }
            ColumnVec::Str(v) => ColumnVec::Str(
                idx.iter().map(|&i| i.and_then(|i| v[i].clone())).collect(),
            ),
            ColumnVec::DictStr { codes, dict } => ColumnVec::DictStr {
                codes: idx.iter().map(|&i| i.map_or(NULL_CODE, |i| codes[i])).collect(),
                dict: dict.clone(),
            },
            ColumnVec::Runs { ends, values } => {
                let mut out = ColumnVec::new();
                for &i in idx {
                    match i {
                        Some(i) => out.push_from(values, run_index(ends, i)),
                        None => out.push_null(),
                    }
                }
                out
            }
            ColumnVec::Var(v) => ColumnVec::Var(
                idx.iter()
                    .map(|&i| i.map_or(Variant::Null, |i| v[i].clone()))
                    .collect(),
            ),
        }
    }

    /// Materializes rows `lo..hi` of a storage column without boxing: typed
    /// storage vectors land in the matching typed representation. This is the
    /// scan boundary that used to un-shred every batch.
    ///
    /// `encode` controls what happens to encoded storage blocks: `true` keeps
    /// them encoded (codes are sliced, the dictionary `Arc` is shared, runs
    /// are re-based) so kernels can execute on the encoding; `false` decodes
    /// eagerly at the scan — the reference behaviour the encoded path must
    /// match bit for bit.
    pub fn from_column_data(
        data: &ColumnData,
        lo: usize,
        hi: usize,
        encode: bool,
    ) -> ColumnVec {
        match data {
            ColumnData::Int(v) => {
                let mut vals = Vec::with_capacity(hi - lo);
                let mut valid = Bitmap::new();
                for x in &v[lo..hi] {
                    vals.push(x.unwrap_or(0));
                    valid.push(x.is_some());
                }
                ColumnVec::Int { vals, valid }
            }
            ColumnData::Float(v) => {
                let mut vals = Vec::with_capacity(hi - lo);
                let mut valid = Bitmap::new();
                for x in &v[lo..hi] {
                    vals.push(x.unwrap_or(0.0));
                    valid.push(x.is_some());
                }
                ColumnVec::Float { vals, valid }
            }
            ColumnData::Bool(v) => {
                let mut vals = Vec::with_capacity(hi - lo);
                let mut valid = Bitmap::new();
                for x in &v[lo..hi] {
                    vals.push(x.unwrap_or(false));
                    valid.push(x.is_some());
                }
                ColumnVec::Bool { vals, valid }
            }
            ColumnData::Str(v) => ColumnVec::Str(v[lo..hi].to_vec()),
            ColumnData::DictStr { codes, dict } => {
                if encode {
                    ColumnVec::DictStr { codes: codes[lo..hi].to_vec(), dict: dict.clone() }
                } else {
                    ColumnVec::Str(
                        codes[lo..hi]
                            .iter()
                            .map(|&c| {
                                (c != NULL_CODE).then(|| dict[c as usize].clone())
                            })
                            .collect(),
                    )
                }
            }
            ColumnData::Runs { ends, values } => {
                let lo_r = run_index(ends, lo);
                if encode {
                    let hi_r =
                        if hi == lo { lo_r } else { run_index(ends, hi - 1) + 1 };
                    let new_ends: Vec<u32> = ends[lo_r..hi_r]
                        .iter()
                        .map(|&e| (e as usize).min(hi) as u32 - lo as u32)
                        .collect();
                    let vals =
                        ColumnVec::from_column_data(values, lo_r, hi_r, encode);
                    ColumnVec::Runs { ends: new_ends, values: Box::new(vals) }
                } else {
                    // Decode run-by-run: one boxed value per run, typed rows.
                    let mut out = ColumnVec::new();
                    let mut row = lo;
                    for (r, &e) in ends.iter().enumerate().skip(lo_r) {
                        if row >= hi {
                            break;
                        }
                        let end = (e as usize).min(hi);
                        let v = values.get(r);
                        if v.is_null() {
                            out.push_nulls(end - row);
                        } else {
                            for _ in row..end {
                                out.push(v.clone());
                            }
                        }
                        row = end;
                    }
                    out
                }
            }
            ColumnData::Variant(v) => ColumnVec::Var(v[lo..hi].to_vec()),
        }
    }

    /// True when the column is an encoded (dictionary or run-length)
    /// representation.
    pub fn is_encoded(&self) -> bool {
        matches!(self, ColumnVec::DictStr { .. } | ColumnVec::Runs { .. })
    }

    /// Plain (decoded) copy of the column: `DictStr` materializes strings,
    /// `Runs` expands to its typed form; plain columns clone.
    pub fn decoded(&self) -> ColumnVec {
        match self {
            ColumnVec::DictStr { codes, dict } => ColumnVec::Str(
                codes
                    .iter()
                    .map(|&c| (c != NULL_CODE).then(|| dict[c as usize].clone()))
                    .collect(),
            ),
            ColumnVec::Runs { ends, values } => {
                let mut out = ColumnVec::new();
                let mut start = 0usize;
                for (r, &end) in ends.iter().enumerate() {
                    let v = values.get(r);
                    if v.is_null() {
                        out.push_nulls(end as usize - start);
                    } else {
                        for _ in start..end as usize {
                            out.push(v.clone());
                        }
                    }
                    start = end as usize;
                }
                out
            }
            other => other.clone(),
        }
    }

    /// Replaces an encoded column with its decoded form in place; plain
    /// columns are untouched.
    pub fn decode_in_place(&mut self) {
        if self.is_encoded() {
            *self = self.decoded();
        }
    }

    /// Builds a column from boxed variants via adaptive pushes.
    pub fn from_variants(vals: Vec<Variant>) -> ColumnVec {
        let mut col = ColumnVec::new();
        for v in vals {
            col.push(v);
        }
        col
    }

    /// Consumes the column into boxed variants.
    pub fn into_variants(self) -> Vec<Variant> {
        match self {
            ColumnVec::Var(v) => v,
            other => (0..other.len()).map(|i| other.get(i)).collect(),
        }
    }

    /// Cheap memory estimate for governance accounting. Typed columns are
    /// exact; `Str`/`Var` columns extrapolate a first-row sample over all
    /// rows, matching the pre-vectorization `Chunk` estimate in spirit (O(1)
    /// per column, catches the large-nested-value blow-ups).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            ColumnVec::Null(n) => *n as u64,
            ColumnVec::Int { vals, .. } => vals.len() as u64 * 8 + (vals.len() as u64 / 8),
            ColumnVec::Float { vals, .. } => {
                vals.len() as u64 * 8 + (vals.len() as u64 / 8)
            }
            ColumnVec::Bool { vals, .. } => vals.len() as u64 / 4 + 1,
            ColumnVec::Str(v) => {
                let sample = v
                    .iter()
                    .find_map(|s| s.as_ref())
                    .map_or(1, |s| s.len() as u64 + 2);
                v.len() as u64 * (sample + 8)
            }
            // Encoded columns charge their encoded footprint: codes/run ends
            // plus the (shared) dictionary or per-run values — not the
            // materialized strings they stand for.
            ColumnVec::DictStr { codes, dict } => {
                codes.len() as u64 * 4
                    + dict.iter().map(|s| s.len() as u64 + 2).sum::<u64>()
            }
            ColumnVec::Runs { ends, values } => {
                ends.len() as u64 * 4 + values.approx_bytes()
            }
            ColumnVec::Var(v) => {
                let flat = v.len() as u64 * std::mem::size_of::<Variant>() as u64;
                let sample = v.first().map_or(0, Variant::estimated_size);
                flat + sample * v.len() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip_and_truncate() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        let tail = b.split_off(65);
        assert_eq!(b.len(), 65);
        assert_eq!(tail.len(), 65);
        assert_eq!(tail.get(0), 65 % 3 == 0);
        b.truncate(3);
        assert_eq!(b.count_valid(), 1);
    }

    #[test]
    fn push_commits_type_on_first_value() {
        let mut c = ColumnVec::new();
        c.push(Variant::Null);
        c.push(Variant::Null);
        c.push(Variant::Int(7));
        assert!(matches!(c, ColumnVec::Int { .. }));
        assert!(c.get(0).is_null());
        assert!(c.is_null_at(1));
        assert_eq!(c.get(2), Variant::Int(7));
    }

    #[test]
    fn push_mismatch_promotes_without_loss() {
        let mut c = ColumnVec::new();
        c.push(Variant::Int(1));
        c.push(Variant::Float(2.5));
        assert!(matches!(c, ColumnVec::Var(_)));
        // Promotion preserves the exact variants — no Int→Float coercion.
        assert_eq!(c.get(0), Variant::Int(1));
        assert!(matches!(c.get(0), Variant::Int(_)));
        assert_eq!(c.get(1), Variant::Float(2.5));
    }

    #[test]
    fn gather_preserves_type_and_nulls() {
        let mut c = ColumnVec::new();
        for v in [Variant::Int(1), Variant::Null, Variant::Int(3)] {
            c.push(v);
        }
        let g = c.gather(&[2, 0, 1, 2]);
        assert!(matches!(g, ColumnVec::Int { .. }));
        assert_eq!(g.get(0), Variant::Int(3));
        assert_eq!(g.get(1), Variant::Int(1));
        assert!(g.is_null_at(2));
        assert_eq!(g.get(3), Variant::Int(3));
        let go = c.gather_opt(&[Some(0), None]);
        assert_eq!(go.get(0), Variant::Int(1));
        assert!(go.is_null_at(1));
    }

    #[test]
    fn append_and_split_roundtrip() {
        let mut a = ColumnVec::from_variants(vec![Variant::Int(1), Variant::Int(2)]);
        let b = ColumnVec::from_variants(vec![Variant::Int(3), Variant::Null]);
        a.append(b);
        assert_eq!(a.len(), 4);
        assert!(matches!(a, ColumnVec::Int { .. }));
        let tail = a.split_off(1);
        assert_eq!(a.len(), 1);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.get(0), Variant::Int(2));
        assert!(tail.is_null_at(2));
        // Mismatched append promotes.
        let mut m = ColumnVec::from_variants(vec![Variant::Int(1)]);
        m.append(ColumnVec::from_variants(vec![Variant::str("x")]));
        assert_eq!(m.get(1), Variant::str("x"));
    }

    #[test]
    fn from_column_data_stays_typed() {
        let data = ColumnData::Float(vec![Some(1.5), None, Some(2.5), Some(3.5)]);
        let c = ColumnVec::from_column_data(&data, 1, 4, true);
        assert!(matches!(c, ColumnVec::Float { .. }));
        assert_eq!(c.len(), 3);
        assert!(c.is_null_at(0));
        assert_eq!(c.get(2), Variant::Float(3.5));
    }

    fn dict_data() -> ColumnData {
        let dict: Vec<Arc<str>> = vec![Arc::from("a"), Arc::from("b")];
        ColumnData::DictStr {
            codes: vec![0, 1, NULL_CODE, 0, 1, 1],
            dict: Arc::new(dict),
        }
    }

    fn runs_data() -> ColumnData {
        ColumnData::Runs {
            ends: vec![3, 5, 9],
            values: Box::new(ColumnData::Int(vec![Some(7), None, Some(9)])),
        }
    }

    #[test]
    fn from_column_data_keeps_or_decodes_encodings() {
        let d = dict_data();
        let enc = ColumnVec::from_column_data(&d, 1, 5, true);
        assert!(matches!(enc, ColumnVec::DictStr { .. }));
        let dec = ColumnVec::from_column_data(&d, 1, 5, false);
        assert!(matches!(dec, ColumnVec::Str(_)));
        for i in 0..4 {
            assert_eq!(enc.get(i), dec.get(i), "row {i}");
            assert_eq!(enc.key_at(i), dec.key_at(i), "key {i}");
            assert_eq!(enc.is_null_at(i), dec.is_null_at(i), "null {i}");
        }

        let r = runs_data();
        let enc = ColumnVec::from_column_data(&r, 2, 8, true);
        assert!(matches!(enc, ColumnVec::Runs { .. }));
        assert_eq!(enc.len(), 6);
        let dec = ColumnVec::from_column_data(&r, 2, 8, false);
        assert!(matches!(dec, ColumnVec::Int { .. }));
        for i in 0..6 {
            assert_eq!(enc.get(i), dec.get(i), "row {i}");
            assert_eq!(enc.key_at(i), dec.key_at(i), "key {i}");
        }
    }

    #[test]
    fn encoded_columns_decode_on_mutation_and_stay_equal() {
        let mut c = ColumnVec::from_column_data(&dict_data(), 0, 6, true);
        c.push(Variant::str("z"));
        assert!(matches!(c, ColumnVec::Str(_)));
        assert_eq!(c.get(1), Variant::str("b"));
        assert_eq!(c.get(6), Variant::str("z"));
        assert!(c.is_null_at(2));

        let mut r = ColumnVec::from_column_data(&runs_data(), 0, 9, true);
        r.push(Variant::Int(42));
        assert!(matches!(r, ColumnVec::Int { .. }));
        assert_eq!(r.get(0), Variant::Int(7));
        assert!(r.is_null_at(3));
        assert_eq!(r.get(9), Variant::Int(42));
    }

    #[test]
    fn encoded_split_truncate_gather_match_decoded() {
        for at in 0..=9 {
            let mut enc = ColumnVec::from_column_data(&runs_data(), 0, 9, true);
            let mut dec = enc.decoded();
            let enc_tail = enc.split_off(at);
            let dec_tail = dec.split_off(at);
            assert_eq!(enc.len(), at, "head len at {at}");
            assert_eq!(enc_tail.len(), 9 - at);
            for i in 0..at {
                assert_eq!(enc.get(i), dec.get(i), "head row {i} at {at}");
            }
            for i in 0..9 - at {
                assert_eq!(enc_tail.get(i), dec_tail.get(i), "tail row {i} at {at}");
            }
        }
        for n in 0..=9 {
            let mut enc = ColumnVec::from_column_data(&runs_data(), 0, 9, true);
            let dec = enc.decoded();
            enc.truncate(n);
            assert_eq!(enc.len(), n, "truncate {n}");
            for i in 0..n {
                assert_eq!(enc.get(i), dec.get(i), "row {i} after truncate {n}");
            }
        }
        let enc = ColumnVec::from_column_data(&dict_data(), 0, 6, true);
        let g = enc.gather(&[5, 2, 0]);
        assert!(matches!(g, ColumnVec::DictStr { .. }));
        assert_eq!(g.get(0), Variant::str("b"));
        assert!(g.is_null_at(1));
        let go = enc.gather_opt(&[Some(1), None]);
        assert_eq!(go.get(0), Variant::str("b"));
        assert!(go.is_null_at(1));
        let r = ColumnVec::from_column_data(&runs_data(), 0, 9, true);
        let rg = r.gather(&[8, 4, 0]);
        assert!(matches!(rg, ColumnVec::Int { .. }));
        assert_eq!(rg.get(0), Variant::Int(9));
        assert!(rg.is_null_at(1));
        assert_eq!(rg.get(2), Variant::Int(7));
    }

    #[test]
    fn dict_append_shares_dictionary_and_push_from_stays_on_codes() {
        let data = dict_data();
        let mut a = ColumnVec::from_column_data(&data, 0, 3, true);
        let b = ColumnVec::from_column_data(&data, 3, 6, true);
        // Same dict Arc: append stays on codes.
        a.append(b.clone());
        assert!(matches!(a, ColumnVec::DictStr { .. }));
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(4), Variant::str("b"));
        // A NULL run adapts to the dictionary, then copies codes.
        let mut dst = ColumnVec::new();
        dst.push_nulls(1);
        dst.push_from(&b, 0);
        assert!(matches!(dst, ColumnVec::DictStr { .. }));
        assert!(dst.is_null_at(0));
        assert_eq!(dst.get(1), Variant::str("a"));
        // approx_bytes charges the encoded footprint, not materialized
        // strings.
        let enc = ColumnVec::from_column_data(&dict_data(), 0, 6, true);
        assert!(enc.approx_bytes() < enc.decoded().approx_bytes());
    }

    #[test]
    fn key_at_matches_boxed_keys() {
        let vals = vec![
            Variant::Int(1),
            Variant::Float(1.0),
            Variant::Float(-0.0),
            Variant::Float(f64::NAN),
            Variant::Null,
            Variant::str("s"),
            Variant::Bool(true),
        ];
        for v in &vals {
            let mut c = ColumnVec::new();
            c.push(v.clone());
            assert_eq!(c.key_at(0), Key::of(v), "typed key for {v:?}");
        }
        // And on a promoted mixed column.
        let c = ColumnVec::from_variants(vals.clone());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(c.key_at(i), Key::of(v));
        }
    }

    #[test]
    fn push_from_adapts_null_run_to_source_type() {
        let src = ColumnVec::from_variants(vec![Variant::Int(5), Variant::Null]);
        let mut dst = ColumnVec::new();
        dst.push_nulls(2);
        dst.push_from(&src, 0);
        dst.push_from(&src, 1);
        assert!(matches!(dst, ColumnVec::Int { .. }));
        assert!(dst.is_null_at(0));
        assert_eq!(dst.get(2), Variant::Int(5));
        assert!(dst.is_null_at(3));
    }
}
