//! Aggregate accumulators for the hash aggregation operator.

use std::collections::HashSet;

use crate::error::{Result, SnowError};
use crate::plan::AggKind;
use crate::variant::{cmp_variants, Key, Variant};

use super::column::ColumnVec;

/// True when [`Accumulator::update_column`] reproduces the serial row fold
/// exactly for this column representation — same values *and* same errors.
///
/// Kinds that can raise a type error mid-fold (`SUM`, `AVG`, `BOOLAND_AGG`,
/// `BOOLOR_AGG`) are only eligible when the column's type guarantees the
/// serial fold cannot error, so column-major agg evaluation never reorders an
/// error against another aggregate's row-major fold. Two-argument aggregates
/// (`MIN_BY`/`MAX_BY`) always take the row path.
pub fn column_eligible(kind: AggKind, col: &ColumnVec) -> bool {
    // Run-length columns fold like their per-run value type; the fold
    // decodes first (see `update_column`) so order-sensitive float sums stay
    // bit-identical to the serial row order.
    if let ColumnVec::Runs { values, .. } = col {
        return column_eligible(kind, values);
    }
    match kind {
        AggKind::CountStar
        | AggKind::Count
        | AggKind::CountDistinct
        | AggKind::Min
        | AggKind::Max
        | AggKind::ArrayAgg
        | AggKind::AnyValue => true,
        AggKind::Sum | AggKind::Avg => matches!(
            col,
            ColumnVec::Null(_) | ColumnVec::Int { .. } | ColumnVec::Float { .. }
        ),
        AggKind::BoolAnd | AggKind::BoolOr => {
            matches!(col, ColumnVec::Null(_) | ColumnVec::Bool { .. })
        }
        AggKind::MinBy | AggKind::MaxBy => false,
    }
}

/// Non-null count of a column without materializing any [`Variant`].
fn count_valid(col: &ColumnVec) -> i64 {
    match col {
        ColumnVec::Null(_) => 0,
        ColumnVec::Int { valid, .. }
        | ColumnVec::Float { valid, .. }
        | ColumnVec::Bool { valid, .. } => valid.count_valid() as i64,
        ColumnVec::Str(v) => v.iter().filter(|s| s.is_some()).count() as i64,
        // Encoded columns count without materializing: codes against the
        // NULL sentinel, runs by their lengths.
        ColumnVec::DictStr { codes, .. } => {
            codes.iter().filter(|&&c| c != crate::storage::NULL_CODE).count() as i64
        }
        ColumnVec::Runs { ends, values } => {
            let mut n = 0i64;
            let mut start = 0u32;
            for (r, &end) in ends.iter().enumerate() {
                if !values.is_null_at(r) {
                    n += i64::from(end - start);
                }
                start = end;
            }
            n
        }
        ColumnVec::Var(v) => v.iter().filter(|x| !x.is_null()).count() as i64,
    }
}

/// One running aggregate state.
#[derive(Debug)]
pub enum Accumulator {
    CountStar(i64),
    Count(i64),
    CountDistinct(HashSet<Key>),
    Sum { acc: Option<Variant> },
    Min(Option<Variant>),
    Max(Option<Variant>),
    Avg { sum: f64, n: i64 },
    ArrayAgg(Vec<Variant>),
    AnyValue(Option<Variant>),
    BoolAnd(Option<bool>),
    BoolOr(Option<bool>),
    MinBy { key: Option<Variant>, value: Variant },
    MaxBy { key: Option<Variant>, value: Variant },
}

impl Accumulator {
    /// Fresh accumulator for an aggregate kind.
    pub fn new(kind: AggKind) -> Accumulator {
        match kind {
            AggKind::CountStar => Accumulator::CountStar(0),
            AggKind::Count => Accumulator::Count(0),
            AggKind::CountDistinct => Accumulator::CountDistinct(HashSet::new()),
            AggKind::Sum => Accumulator::Sum { acc: None },
            AggKind::Min => Accumulator::Min(None),
            AggKind::Max => Accumulator::Max(None),
            AggKind::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggKind::ArrayAgg => Accumulator::ArrayAgg(Vec::new()),
            AggKind::AnyValue => Accumulator::AnyValue(None),
            AggKind::BoolAnd => Accumulator::BoolAnd(None),
            AggKind::BoolOr => Accumulator::BoolOr(None),
            AggKind::MinBy => Accumulator::MinBy { key: None, value: Variant::Null },
            AggKind::MaxBy => Accumulator::MaxBy { key: None, value: Variant::Null },
        }
    }

    /// Feeds one input value (`Variant::Null` for `COUNT(*)`'s placeholder).
    pub fn update(&mut self, v: &Variant) -> Result<()> {
        self.update2(v, &Variant::Null)
    }

    /// Feeds one input value plus the key for two-argument aggregates
    /// (`MIN_BY`/`MAX_BY`); NULL keys are skipped, and ties keep the first row,
    /// matching the JSONiq min+filter+first idiom.
    pub fn update2(&mut self, v: &Variant, key: &Variant) -> Result<()> {
        match self {
            Accumulator::CountStar(n) => *n += 1,
            Accumulator::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(Key::of(v));
                }
            }
            Accumulator::Sum { acc } => {
                if !v.is_null() {
                    let next = match acc.take() {
                        None => v.clone(),
                        Some(cur) => add(&cur, v)?,
                    };
                    *acc = Some(next);
                }
            }
            Accumulator::Min(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| cmp_variants(v, cur) == std::cmp::Ordering::Less)
                {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Max(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| cmp_variants(v, cur) == std::cmp::Ordering::Greater)
                {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(SnowError::Exec(format!(
                        "AVG expects numbers, got {}",
                        v.type_name()
                    )));
                }
            }
            // ARRAY_AGG skips NULLs — the paper's flag-column translation for
            // nested queries depends on exactly this behaviour (§IV-C1).
            Accumulator::ArrayAgg(items) => {
                if !v.is_null() {
                    items.push(v.clone());
                }
            }
            Accumulator::AnyValue(slot) => {
                if slot.is_none() {
                    *slot = Some(v.clone());
                }
            }
            Accumulator::BoolAnd(b) => {
                if let Some(x) = v.as_bool() {
                    *b = Some(b.unwrap_or(true) && x);
                } else if !v.is_null() {
                    return Err(SnowError::Exec("BOOLAND_AGG expects booleans".into()));
                }
            }
            Accumulator::BoolOr(b) => {
                if let Some(x) = v.as_bool() {
                    *b = Some(b.unwrap_or(false) || x);
                } else if !v.is_null() {
                    return Err(SnowError::Exec("BOOLOR_AGG expects booleans".into()));
                }
            }
            Accumulator::MinBy { key: cur, value } => {
                if !key.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| cmp_variants(key, c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(key.clone());
                    *value = v.clone();
                }
            }
            Accumulator::MaxBy { key: cur, value } => {
                if !key.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| cmp_variants(key, c) == std::cmp::Ordering::Greater)
                {
                    *cur = Some(key.clone());
                    *value = v.clone();
                }
            }
        }
        Ok(())
    }

    /// Folds a whole column into the state, replicating the serial
    /// row-at-a-time fold exactly (same values, same errors, same ties).
    /// Callers must check [`column_eligible`] for this accumulator's kind
    /// first; an ineligible column is an internal error.
    pub fn update_column(&mut self, col: &ColumnVec) -> Result<()> {
        // Run-length columns decode before folding: SUM/AVG float folds are
        // order-sensitive, and the decoded fold replays the serial row order
        // exactly. (Dictionary columns fold in place — every arm below goes
        // through the generic accessors.)
        if let ColumnVec::Runs { .. } = col {
            return self.update_column(&col.decoded());
        }
        match self {
            Accumulator::CountStar(n) => *n += col.len() as i64,
            Accumulator::Count(n) => *n += count_valid(col),
            Accumulator::CountDistinct(set) => {
                for r in 0..col.len() {
                    if !col.is_null_at(r) {
                        set.insert(col.key_at(r));
                    }
                }
            }
            Accumulator::Sum { acc } => return sum_column(acc, col),
            Accumulator::Avg { sum, n } => match col {
                ColumnVec::Null(_) => {}
                ColumnVec::Int { vals, valid } => {
                    for (i, &x) in vals.iter().enumerate() {
                        if valid.get(i) {
                            *sum += x as f64;
                            *n += 1;
                        }
                    }
                }
                ColumnVec::Float { vals, valid } => {
                    for (i, &x) in vals.iter().enumerate() {
                        if valid.get(i) {
                            *sum += x;
                            *n += 1;
                        }
                    }
                }
                _ => {
                    return Err(SnowError::Exec(
                        "internal: AVG column fold on non-numeric column".into(),
                    ))
                }
            },
            Accumulator::Min(m) => {
                for r in 0..col.len() {
                    let v = col.get(r);
                    if !v.is_null()
                        && m.as_ref()
                            .is_none_or(|cur| cmp_variants(&v, cur) == std::cmp::Ordering::Less)
                    {
                        *m = Some(v);
                    }
                }
            }
            Accumulator::Max(m) => {
                for r in 0..col.len() {
                    let v = col.get(r);
                    if !v.is_null()
                        && m.as_ref().is_none_or(|cur| {
                            cmp_variants(&v, cur) == std::cmp::Ordering::Greater
                        })
                    {
                        *m = Some(v);
                    }
                }
            }
            Accumulator::ArrayAgg(items) => {
                for r in 0..col.len() {
                    if !col.is_null_at(r) {
                        items.push(col.get(r));
                    }
                }
            }
            // The serial fold stores the first value even when it is NULL.
            Accumulator::AnyValue(slot) => {
                if slot.is_none() && !col.is_empty() {
                    *slot = Some(col.get(0));
                }
            }
            Accumulator::BoolAnd(b) => match col {
                ColumnVec::Null(_) => {}
                ColumnVec::Bool { vals, valid } => {
                    for (i, &x) in vals.iter().enumerate() {
                        if valid.get(i) {
                            *b = Some(b.unwrap_or(true) && x);
                        }
                    }
                }
                _ => {
                    return Err(SnowError::Exec(
                        "internal: BOOLAND_AGG column fold on non-bool column".into(),
                    ))
                }
            },
            Accumulator::BoolOr(b) => match col {
                ColumnVec::Null(_) => {}
                ColumnVec::Bool { vals, valid } => {
                    for (i, &x) in vals.iter().enumerate() {
                        if valid.get(i) {
                            *b = Some(b.unwrap_or(false) || x);
                        }
                    }
                }
                _ => {
                    return Err(SnowError::Exec(
                        "internal: BOOLOR_AGG column fold on non-bool column".into(),
                    ))
                }
            },
            Accumulator::MinBy { .. } | Accumulator::MaxBy { .. } => {
                return Err(SnowError::Exec(
                    "internal: column fold on a two-argument aggregate".into(),
                ))
            }
        }
        Ok(())
    }

    /// Folds another partial state of the same kind into this one.
    ///
    /// `other` must come from a *later* slice of the input than `self`:
    /// order-sensitive aggregates (`ARRAY_AGG` concatenation, `ANY_VALUE`
    /// first-wins, `MIN`/`MAX`/`MIN_BY`/`MAX_BY` first-among-ties) reproduce
    /// the serial row-order result only when partials merge in input order.
    /// `SUM`/`AVG` merges are mathematically correct but not guaranteed
    /// bit-identical to a serial fold for floats (addition is not
    /// associative); the parallel executor folds those kinds serially instead.
    pub fn merge(&mut self, other: Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::CountStar(n), Accumulator::CountStar(m))
            | (Accumulator::Count(n), Accumulator::Count(m)) => *n += m,
            (Accumulator::CountDistinct(set), Accumulator::CountDistinct(o)) => {
                set.extend(o);
            }
            (Accumulator::Sum { acc }, Accumulator::Sum { acc: o }) => {
                if let Some(v) = o {
                    let next = match acc.take() {
                        None => v,
                        Some(cur) => add(&cur, &v)?,
                    };
                    *acc = Some(next);
                }
            }
            (Accumulator::Min(m), Accumulator::Min(o)) => {
                if let Some(v) = o {
                    // Strict comparison keeps the earlier slice's value on
                    // ties, matching the serial first-among-equals choice.
                    if m.as_ref()
                        .is_none_or(|cur| cmp_variants(&v, cur) == std::cmp::Ordering::Less)
                    {
                        *m = Some(v);
                    }
                }
            }
            (Accumulator::Max(m), Accumulator::Max(o)) => {
                if let Some(v) = o {
                    if m.as_ref()
                        .is_none_or(|cur| cmp_variants(&v, cur) == std::cmp::Ordering::Greater)
                    {
                        *m = Some(v);
                    }
                }
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            (Accumulator::ArrayAgg(items), Accumulator::ArrayAgg(o)) => {
                items.extend(o);
            }
            (Accumulator::AnyValue(slot), Accumulator::AnyValue(o)) => {
                if slot.is_none() {
                    *slot = o;
                }
            }
            (Accumulator::BoolAnd(b), Accumulator::BoolAnd(o)) => {
                if let Some(x) = o {
                    *b = Some(b.unwrap_or(true) && x);
                }
            }
            (Accumulator::BoolOr(b), Accumulator::BoolOr(o)) => {
                if let Some(x) = o {
                    *b = Some(b.unwrap_or(false) || x);
                }
            }
            (
                Accumulator::MinBy { key: cur, value },
                Accumulator::MinBy { key: Some(k), value: v },
            ) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| cmp_variants(&k, c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(k);
                    *value = v;
                }
            }
            (
                Accumulator::MaxBy { key: cur, value },
                Accumulator::MaxBy { key: Some(k), value: v },
            ) => {
                if cur
                    .as_ref()
                    .is_none_or(|c| cmp_variants(&k, c) == std::cmp::Ordering::Greater)
                {
                    *cur = Some(k);
                    *value = v;
                }
            }
            (Accumulator::MinBy { .. }, Accumulator::MinBy { key: None, .. })
            | (Accumulator::MaxBy { .. }, Accumulator::MaxBy { key: None, .. }) => {}
            _ => {
                return Err(SnowError::Exec(
                    "internal: merging mismatched accumulator kinds".into(),
                ))
            }
        }
        Ok(())
    }

    /// Final value of the aggregate.
    pub fn finish(self) -> Variant {
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => Variant::Int(n),
            Accumulator::CountDistinct(set) => Variant::Int(set.len() as i64),
            Accumulator::Sum { acc } => acc.unwrap_or(Variant::Null),
            Accumulator::Min(m) | Accumulator::Max(m) => m.unwrap_or(Variant::Null),
            Accumulator::Avg { sum, n } => {
                if n == 0 {
                    Variant::Null
                } else {
                    Variant::Float(sum / n as f64)
                }
            }
            Accumulator::ArrayAgg(items) => Variant::array(items),
            Accumulator::AnyValue(slot) => slot.unwrap_or(Variant::Null),
            Accumulator::BoolAnd(b) | Accumulator::BoolOr(b) => {
                b.map_or(Variant::Null, Variant::Bool)
            }
            Accumulator::MinBy { key, value } | Accumulator::MaxBy { key, value } => {
                if key.is_some() {
                    value
                } else {
                    Variant::Null
                }
            }
        }
    }
}

/// Column-major `SUM` fold that is element-for-element identical to the
/// serial `update` loop: first non-null stored as-is, `Int` additions
/// checked-then-promoted to `Float` on overflow, mixed pairs coerced through
/// the same `as f64` path as [`add`]. A non-numeric accumulator (possible
/// when an earlier batch fell back row-major and stored a non-numeric first
/// value) raises exactly the serial type error via [`add`].
fn sum_column(acc: &mut Option<Variant>, col: &ColumnVec) -> Result<()> {
    match col {
        ColumnVec::Null(_) => Ok(()),
        ColumnVec::Int { vals, valid } => {
            for (i, &x) in vals.iter().enumerate() {
                if !valid.get(i) {
                    continue;
                }
                let next = match acc.take() {
                    None => Variant::Int(x),
                    Some(Variant::Int(cur)) => match cur.checked_add(x) {
                        Some(v) => Variant::Int(v),
                        None => Variant::Float(cur as f64 + x as f64),
                    },
                    Some(Variant::Float(f)) => Variant::Float(f + x as f64),
                    Some(cur) => add(&cur, &Variant::Int(x))?,
                };
                *acc = Some(next);
            }
            Ok(())
        }
        ColumnVec::Float { vals, valid } => {
            for (i, &x) in vals.iter().enumerate() {
                if !valid.get(i) {
                    continue;
                }
                let next = match acc.take() {
                    None => Variant::Float(x),
                    Some(Variant::Int(cur)) => Variant::Float(cur as f64 + x),
                    Some(Variant::Float(f)) => Variant::Float(f + x),
                    Some(cur) => add(&cur, &Variant::Float(x))?,
                };
                *acc = Some(next);
            }
            Ok(())
        }
        _ => Err(SnowError::Exec(
            "internal: SUM column fold on non-numeric column".into(),
        )),
    }
}

fn add(a: &Variant, b: &Variant) -> Result<Variant> {
    use crate::variant::NumericPair;
    match NumericPair::coerce(a, b) {
        Some(NumericPair::Int(x, y)) => Ok(match x.checked_add(y) {
            Some(v) => Variant::Int(v),
            None => Variant::Float(x as f64 + y as f64),
        }),
        Some(NumericPair::Float(x, y)) => Ok(Variant::Float(x + y)),
        None => Err(SnowError::Exec(format!(
            "SUM expects numbers, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, inputs: &[Variant]) -> Variant {
        let mut a = Accumulator::new(kind);
        for v in inputs {
            a.update(v).unwrap();
        }
        a.finish()
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let vals = [Variant::Int(1), Variant::Null, Variant::Int(2)];
        assert_eq!(run(AggKind::Count, &vals), Variant::Int(2));
        assert_eq!(run(AggKind::CountStar, &vals), Variant::Int(3));
    }

    #[test]
    fn count_distinct_unifies_numeric_types() {
        let vals = [Variant::Int(1), Variant::Float(1.0), Variant::Int(2), Variant::Null];
        assert_eq!(run(AggKind::CountDistinct, &vals), Variant::Int(2));
    }

    #[test]
    fn sum_over_empty_and_nulls() {
        assert_eq!(run(AggKind::Sum, &[]), Variant::Null);
        assert_eq!(run(AggKind::Sum, &[Variant::Null]), Variant::Null);
        assert_eq!(
            run(AggKind::Sum, &[Variant::Int(1), Variant::Float(2.5)]),
            Variant::Float(3.5)
        );
    }

    #[test]
    fn min_max_ignore_nulls() {
        let vals = [Variant::Null, Variant::Int(5), Variant::Int(3)];
        assert_eq!(run(AggKind::Min, &vals), Variant::Int(3));
        assert_eq!(run(AggKind::Max, &vals), Variant::Int(5));
    }

    #[test]
    fn array_agg_skips_nulls_and_keeps_order() {
        let vals = [Variant::Int(2), Variant::Null, Variant::Int(1)];
        assert_eq!(
            run(AggKind::ArrayAgg, &vals),
            Variant::array(vec![Variant::Int(2), Variant::Int(1)])
        );
        assert_eq!(run(AggKind::ArrayAgg, &[Variant::Null]), Variant::array(vec![]));
    }

    #[test]
    fn bool_aggregates() {
        assert_eq!(
            run(AggKind::BoolAnd, &[Variant::Bool(true), Variant::Bool(false)]),
            Variant::Bool(false)
        );
        assert_eq!(
            run(AggKind::BoolOr, &[Variant::Bool(false), Variant::Bool(true)]),
            Variant::Bool(true)
        );
        assert_eq!(run(AggKind::BoolAnd, &[Variant::Null]), Variant::Null);
    }

    #[test]
    fn avg_mixed_numeric() {
        assert_eq!(
            run(AggKind::Avg, &[Variant::Int(1), Variant::Float(2.0), Variant::Null]),
            Variant::Float(1.5)
        );
        assert_eq!(run(AggKind::Avg, &[]), Variant::Null);
    }

    #[test]
    fn merge_in_order_matches_serial_fold() {
        let vals = [
            Variant::Int(4),
            Variant::Null,
            Variant::Int(4),
            Variant::Int(1),
            Variant::Int(9),
        ];
        for kind in [
            AggKind::CountStar,
            AggKind::Count,
            AggKind::CountDistinct,
            AggKind::Min,
            AggKind::Max,
            AggKind::ArrayAgg,
            AggKind::AnyValue,
        ] {
            let serial = run(kind, &vals);
            for split in 0..=vals.len() {
                let mut a = Accumulator::new(kind);
                for v in &vals[..split] {
                    a.update(v).unwrap();
                }
                let mut b = Accumulator::new(kind);
                for v in &vals[split..] {
                    b.update(v).unwrap();
                }
                a.merge(b).unwrap();
                assert_eq!(a.finish(), serial, "kind {kind:?} split {split}");
            }
        }
    }

    #[test]
    fn merge_min_by_keeps_earlier_slice_on_ties() {
        let mut a = Accumulator::new(AggKind::MinBy);
        a.update2(&Variant::from("first"), &Variant::Int(1)).unwrap();
        let mut b = Accumulator::new(AggKind::MinBy);
        b.update2(&Variant::from("second"), &Variant::Int(1)).unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Variant::from("first"));
    }

    #[test]
    fn column_fold_matches_row_fold() {
        let batches: Vec<Vec<Variant>> = vec![
            vec![Variant::Int(4), Variant::Null, Variant::Int(1)],
            vec![Variant::Float(2.5), Variant::Float(f64::NAN), Variant::Null],
            vec![Variant::Int(i64::MAX), Variant::Int(i64::MAX)],
            vec![Variant::Bool(true), Variant::Null, Variant::Bool(false)],
            vec![Variant::Null, Variant::Null],
        ];
        for kind in [
            AggKind::CountStar,
            AggKind::Count,
            AggKind::CountDistinct,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
            AggKind::ArrayAgg,
            AggKind::AnyValue,
            AggKind::BoolAnd,
            AggKind::BoolOr,
        ] {
            for batch in &batches {
                let col = ColumnVec::from_variants(batch.clone());
                if !column_eligible(kind, &col) {
                    continue;
                }
                let mut serial = Accumulator::new(kind);
                let mut serial_err = None;
                for v in batch {
                    if let Err(e) = serial.update(v) {
                        serial_err = Some(e);
                        break;
                    }
                }
                let mut columnar = Accumulator::new(kind);
                let col_res = columnar.update_column(&col);
                match (serial_err, col_res) {
                    (None, Ok(())) => {
                        assert_eq!(
                            columnar.finish(),
                            serial.finish(),
                            "kind {kind:?} batch {batch:?}"
                        );
                    }
                    (Some(_), Err(_)) => {}
                    (s, c) => panic!("kind {kind:?}: serial {s:?} vs column {c:?}"),
                }
            }
        }
    }

    #[test]
    fn sum_column_reproduces_serial_error_on_poisoned_accumulator() {
        // A row-major batch can store a non-numeric first value unchecked;
        // the column fold over a later numeric batch must raise the same
        // type error the serial fold would.
        let mut serial = Accumulator::new(AggKind::Sum);
        serial.update(&Variant::from("oops")).unwrap();
        let e1 = serial.update(&Variant::Int(1)).unwrap_err();
        let mut columnar = Accumulator::new(AggKind::Sum);
        columnar.update(&Variant::from("oops")).unwrap();
        let e2 = columnar
            .update_column(&ColumnVec::from_variants(vec![Variant::Int(1)]))
            .unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
    }

    #[test]
    fn any_value_takes_first() {
        assert_eq!(
            run(AggKind::AnyValue, &[Variant::Int(7), Variant::Int(9)]),
            Variant::Int(7)
        );
    }
}
