//! Plan execution: materializing operators over columnar chunks.

pub mod agg;
pub mod column;
pub mod expr;
pub mod kernel;
pub mod metrics;
pub mod pipeline;

pub use column::{Bitmap, ColumnVec};
pub use expr::{eval, truth, RowView};

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, SnowError};
use crate::govern::QueryGovernor;
use crate::plan::{AggExpr, Node, NodeKind, PExpr, SortKey};
use crate::sql::{BinOp, JoinKind};
use crate::storage::ScanStats;
use crate::variant::{cmp_variants, Key, Variant};

use agg::Accumulator;

/// A fully materialized intermediate result: typed columns with validity
/// bitmaps ([`ColumnVec`]); genuinely mixed data falls back to boxed variants
/// per column.
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    pub cols: Vec<ColumnVec>,
    pub rows: usize,
}

impl Chunk {
    /// An empty chunk with the given arity.
    pub fn empty(arity: usize) -> Chunk {
        Chunk { cols: vec![ColumnVec::new(); arity], rows: 0 }
    }

    /// Reads one row as a vector (used at the result boundary).
    pub fn row(&self, i: usize) -> Vec<Variant> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    fn push_row_from(&mut self, other: &Chunk, row: usize) {
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst.push_from(src, row);
        }
        self.rows += 1;
    }

    /// Cheap memory estimate for governance accounting: typed columns are
    /// measured exactly; string/variant columns extrapolate a first-row
    /// sample over all rows. O(arity) per batch — not per-row — so the
    /// estimate costs nothing on the hot path while still catching the
    /// `ARRAY_AGG`/join blow-ups where every row carries a large nested
    /// value.
    pub fn approx_bytes(&self) -> u64 {
        self.cols.iter().map(ColumnVec::approx_bytes).sum()
    }

    /// Consumes the chunk into row vectors; boxed values are moved, typed
    /// values materialize exactly once. This is the result-boundary path;
    /// [`Chunk::row`] stays for callers that only borrow the chunk.
    pub fn into_rows(self) -> Vec<Vec<Variant>> {
        let arity = self.cols.len();
        let mut out: Vec<Vec<Variant>> =
            (0..self.rows).map(|_| Vec::with_capacity(arity)).collect();
        for col in self.cols {
            debug_assert_eq!(col.len(), out.len());
            for (row, v) in out.iter_mut().zip(col.into_variants()) {
                row.push(v);
            }
        }
        out
    }
}

/// Resolves the `SNOWDB_VECTORIZE` environment default: vectorized kernels
/// are on unless the variable is set to `0`/`false`/`off`.
pub fn vectorize_from_env() -> bool {
    match std::env::var("SNOWDB_VECTORIZE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "FALSE" | "off" | "OFF"),
        Err(_) => true,
    }
}

/// Mutable per-query execution state.
#[derive(Debug)]
pub struct ExecCtx {
    pub stats: ScanStats,
    /// Counter backing `SEQ8()`.
    pub seq_counter: i64,
    /// Lifecycle governor for the running query: cancellation, deadline,
    /// budgets, chaos. Defaults to an unbounded governor, so ungoverned
    /// callers pay only a relaxed atomic load per batch boundary.
    pub gov: Arc<QueryGovernor>,
    /// Whether the batched executor may use vectorized kernels. The serial
    /// reference executor ignores this — it is the never-vectorizing
    /// baseline the oracle compares against.
    pub vectorize: bool,
    /// Whether batched scans keep dictionary/run-length encoded blocks
    /// encoded (kernels then execute on codes where they can). The serial
    /// reference executor ignores this too — it always decodes at the scan,
    /// making it the baseline the encoded path must match bit for bit.
    pub encode: bool,
}

impl Default for ExecCtx {
    fn default() -> ExecCtx {
        ExecCtx {
            stats: ScanStats::default(),
            seq_counter: 0,
            gov: Arc::default(),
            vectorize: vectorize_from_env(),
            encode: crate::storage::encode_from_env(),
        }
    }
}

impl ExecCtx {
    /// A context governed by `gov`; worker threads build their own contexts
    /// from the same governor so all checkpoints observe one set of limits.
    pub fn with_governor(gov: Arc<QueryGovernor>) -> ExecCtx {
        ExecCtx { gov, ..ExecCtx::default() }
    }

    /// A worker-thread context sharing `gov` and inheriting explicit
    /// vectorization/encoding choices (workers must not re-read the
    /// environment: the per-query options may override it).
    pub fn worker(gov: Arc<QueryGovernor>, vectorize: bool, encode: bool) -> ExecCtx {
        ExecCtx { gov, vectorize, encode, ..ExecCtx::default() }
    }
}

/// Executes a bound (and optimized) plan to completion.
pub fn execute(node: &Node, ctx: &mut ExecCtx) -> Result<Chunk> {
    match &node.kind {
        NodeKind::Values => Ok(Chunk { cols: Vec::new(), rows: 1 }),
        NodeKind::Scan { table, pushed, materialize } => {
            let mut cols: Vec<ColumnVec> =
                vec![ColumnVec::new(); table.schema().len()];
            let mut rows = 0usize;
            for part in table.partitions() {
                ctx.stats.partitions_total += 1;
                // Zone-map pruning: skip the partition when any pushed
                // predicate proves no row can match.
                let prunable = pushed.iter().any(|p| {
                    part.zone_map(p.col)
                        .is_some_and(|zm| !zm.may_match(p.cmp, &p.lit))
                });
                if prunable {
                    ctx.stats.partitions_pruned += 1;
                    for (i, m) in materialize.iter().enumerate() {
                        if *m {
                            ctx.stats.bytes_skipped += part.column_bytes(i);
                        }
                    }
                    continue;
                }
                ctx.stats.partitions_scanned += 1;
                ctx.stats.rows_scanned += part.row_count() as u64;
                for (i, out) in cols.iter_mut().enumerate() {
                    if materialize[i] {
                        let read = part.read_column_governed(i, &ctx.gov, "Scan")?;
                        ctx.stats.record_read(&read);
                        let data = read.data;
                        // Shredded storage lands in the matching typed
                        // representation — no per-value boxing. The serial
                        // executor always decodes encoded blocks here: it is
                        // the reference the encoded path is verified against.
                        out.append(ColumnVec::from_column_data(
                            &data,
                            0,
                            data.len(),
                            false,
                        ));
                    } else {
                        // Unreferenced columns are never read; fill with nulls
                        // to keep positional addressing intact.
                        ctx.stats.columns_skipped += 1;
                        ctx.stats.bytes_skipped += part.column_bytes(i);
                        out.push_nulls(part.row_count());
                    }
                }
                rows += part.row_count();
            }
            Ok(Chunk { cols, rows })
        }
        NodeKind::Project { input, exprs } => {
            let inp = execute(input, ctx)?;
            let mut cols: Vec<ColumnVec> =
                exprs.iter().map(|_| ColumnVec::new()).collect();
            // SEQ8() numbers rows within the projection evaluating it, starting
            // at zero. This makes row ids deterministic per plan site, so two
            // occurrences of the same subquery (the JOIN-based nested-query
            // strategy of paper §IV-C2 duplicates one) assign identical ids.
            let saved_seq = ctx.seq_counter;
            ctx.seq_counter = 0;
            for r in 0..inp.rows {
                let parts = [(&inp, r)];
                let view = RowView::new(&parts);
                for (e, out) in exprs.iter().zip(cols.iter_mut()) {
                    out.push(eval(e, view, ctx)?);
                }
                // The first SEQ8() call in each row yields the row number.
                ctx.seq_counter = r as i64 + 1;
            }
            ctx.seq_counter = saved_seq;
            Ok(Chunk { cols, rows: inp.rows })
        }
        NodeKind::Filter { input, pred } => {
            let inp = execute(input, ctx)?;
            let mut keep = Vec::with_capacity(inp.rows);
            for r in 0..inp.rows {
                let parts = [(&inp, r)];
                let v = eval(pred, RowView::new(&parts), ctx)?;
                if truth(&v)? == Some(true) {
                    keep.push(r);
                }
            }
            let cols = inp.cols.iter().map(|c| c.gather(&keep)).collect();
            Ok(Chunk { cols, rows: keep.len() })
        }
        NodeKind::Flatten { input, expr, outer } => {
            let inp = execute(input, ctx)?;
            let in_arity = inp.cols.len();
            let mut out = Chunk::empty(in_arity + 5);
            for r in 0..inp.rows {
                let parts = [(&inp, r)];
                let v = eval(expr, RowView::new(&parts), ctx)?;
                let emit = |out: &mut Chunk,
                            value: Variant,
                            index: Variant,
                            key: Variant,
                            this: Variant| {
                    for (i, col) in out.cols.iter_mut().enumerate().take(in_arity) {
                        col.push_from(&inp.cols[i], r);
                    }
                    out.cols[in_arity].push(value);
                    out.cols[in_arity + 1].push(index);
                    out.cols[in_arity + 2].push(key);
                    out.cols[in_arity + 3].push(Variant::Int(r as i64));
                    out.cols[in_arity + 4].push(this);
                    out.rows += 1;
                };
                match &v {
                    Variant::Array(items) if !items.is_empty() => {
                        for (i, item) in items.iter().enumerate() {
                            emit(
                                &mut out,
                                item.clone(),
                                Variant::Int(i as i64),
                                Variant::Null,
                                v.clone(),
                            );
                        }
                    }
                    Variant::Object(obj) if !obj.is_empty() => {
                        for (k, val) in obj.iter() {
                            emit(
                                &mut out,
                                val.clone(),
                                Variant::Null,
                                Variant::from(k),
                                v.clone(),
                            );
                        }
                    }
                    _ => {
                        if *outer {
                            emit(&mut out, Variant::Null, Variant::Null, Variant::Null, v.clone());
                        }
                    }
                }
            }
            Ok(out)
        }
        NodeKind::Aggregate { input, groups, aggs } => {
            exec_aggregate(input, groups, aggs, ctx)
        }
        NodeKind::Join { left, right, kind, on } => exec_join(left, right, *kind, on, ctx),
        NodeKind::Sort { input, keys } => exec_sort(input, keys, ctx),
        NodeKind::Limit { input, n } => {
            let inp = execute(input, ctx)?;
            let n = (*n as usize).min(inp.rows);
            let mut cols = inp.cols;
            for c in &mut cols {
                c.truncate(n);
            }
            Ok(Chunk { cols, rows: n })
        }
        NodeKind::UnionAll { left, right } => {
            let mut l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            if l.cols.len() != r.cols.len() {
                return Err(SnowError::Exec("UNION ALL arity mismatch".into()));
            }
            for (dst, src) in l.cols.iter_mut().zip(r.cols) {
                dst.append(src);
            }
            l.rows += r.rows;
            Ok(l)
        }
        NodeKind::Distinct { input } => {
            let inp = execute(input, ctx)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Chunk::empty(inp.cols.len());
            for r in 0..inp.rows {
                let key: Vec<Key> = inp.cols.iter().map(|c| c.key_at(r)).collect();
                if seen.insert(key) {
                    out.push_row_from(&inp, r);
                }
            }
            Ok(out)
        }
    }
}

fn exec_aggregate(
    input: &Node,
    groups: &[PExpr],
    aggs: &[AggExpr],
    ctx: &mut ExecCtx,
) -> Result<Chunk> {
    let inp = execute(input, ctx)?;
    // Group entries keep insertion order so results are deterministic. A
    // single-key fast path avoids the per-row Vec allocation — translated
    // nested queries group by a lone row-id column on every reaggregation.
    let single = groups.len() == 1;
    let mut index: HashMap<Vec<Key>, usize> = HashMap::new();
    let mut index1: HashMap<Key, usize> = HashMap::new();
    let mut group_vals: Vec<Vec<Variant>> = Vec::new();
    let mut states: Vec<Vec<Accumulator>> = Vec::new();

    for r in 0..inp.rows {
        let parts = [(&inp, r)];
        let view = RowView::new(&parts);
        let mut gv = Vec::with_capacity(groups.len());
        for g in groups {
            gv.push(eval(g, view, ctx)?);
        }
        let slot = if single {
            let key = Key::of(&gv[0]);
            match index1.get(&key) {
                Some(&s) => s,
                None => {
                    let s = states.len();
                    index1.insert(key, s);
                    group_vals.push(std::mem::take(&mut gv));
                    states.push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                    s
                }
            }
        } else {
            let key: Vec<Key> = gv.iter().map(Key::of).collect();
            match index.get(&key) {
                Some(&s) => s,
                None => {
                    let s = states.len();
                    index.insert(key, s);
                    group_vals.push(std::mem::take(&mut gv));
                    states.push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
                    s
                }
            }
        };
        for (a, st) in aggs.iter().zip(states[slot].iter_mut()) {
            let v = match &a.arg {
                Some(e) => eval(e, view, ctx)?,
                None => Variant::Null,
            };
            match &a.arg2 {
                Some(k) => {
                    let kv = eval(k, view, ctx)?;
                    st.update2(&v, &kv)?;
                }
                None => st.update(&v)?,
            }
        }
    }

    // Global aggregation over zero rows still yields one row.
    if groups.is_empty() && states.is_empty() {
        group_vals.push(Vec::new());
        states.push(aggs.iter().map(|a| Accumulator::new(a.kind)).collect());
    }

    let n_out = group_vals.len();
    let mut cols: Vec<ColumnVec> =
        vec![ColumnVec::new(); groups.len() + aggs.len()];
    for (gv, st) in group_vals.into_iter().zip(states) {
        for (i, v) in gv.into_iter().enumerate() {
            cols[i].push(v);
        }
        for (j, acc) in st.into_iter().enumerate() {
            cols[groups.len() + j].push(acc.finish());
        }
    }
    Ok(Chunk { cols, rows: n_out })
}

/// Splits an ON predicate into equi-join pairs and a residual.
fn split_join_on(
    on: &PExpr,
    left_arity: usize,
) -> (Vec<(PExpr, PExpr)>, Vec<PExpr>) {
    fn conjuncts(e: &PExpr, out: &mut Vec<PExpr>) {
        if let PExpr::Binary { left, op: BinOp::And, right } = e {
            conjuncts(left, out);
            conjuncts(right, out);
        } else {
            out.push(e.clone());
        }
    }
    fn side(e: &PExpr, left_arity: usize) -> Option<bool> {
        // Some(true) = uses only left columns, Some(false) = only right,
        // None = mixed or no columns.
        let mut cols = Vec::new();
        e.collect_cols(&mut cols);
        if cols.is_empty() {
            return None;
        }
        let all_left = cols.iter().all(|&c| c < left_arity);
        let all_right = cols.iter().all(|&c| c >= left_arity);
        match (all_left, all_right) {
            (true, _) => Some(true),
            (_, true) => Some(false),
            _ => None,
        }
    }
    let mut cs = Vec::new();
    conjuncts(on, &mut cs);
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for c in cs {
        if let PExpr::Binary { left, op: BinOp::Eq, right } = &c {
            match (side(left, left_arity), side(right, left_arity)) {
                (Some(true), Some(false)) => {
                    equi.push((*left.clone(), shift(right, left_arity)));
                    continue;
                }
                (Some(false), Some(true)) => {
                    equi.push((*right.clone(), shift(left, left_arity)));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }
    (equi, residual)
}

/// Rewrites column indices of a right-side expression to be relative to the
/// right input.
fn shift(e: &PExpr, left_arity: usize) -> PExpr {
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    let max = cols.iter().max().copied().unwrap_or(0);
    let subs: Vec<PExpr> = (0..=max)
        .map(|i| PExpr::Col(i.saturating_sub(left_arity)))
        .collect();
    e.substitute(&subs)
}

fn exec_join(
    left: &Node,
    right: &Node,
    kind: JoinKind,
    on: &Option<PExpr>,
    ctx: &mut ExecCtx,
) -> Result<Chunk> {
    let l = execute(left, ctx)?;
    let r = execute(right, ctx)?;
    join_chunks(&l, &r, kind, on, ctx)
}

/// Joins two materialized chunks (the serial reference implementation; the
/// batched executor falls back to it when the ON predicate is volatile).
fn join_chunks(
    l: &Chunk,
    r: &Chunk,
    kind: JoinKind,
    on: &Option<PExpr>,
    ctx: &mut ExecCtx,
) -> Result<Chunk> {
    let la = l.cols.len();
    let ra = r.cols.len();
    let mut out = Chunk::empty(la + ra);

    let (equi, residual) = match on {
        Some(e) => split_join_on(e, la),
        None => (Vec::new(), Vec::new()),
    };

    let residual_ok = |out_ctx: &mut ExecCtx, lr: usize, rr: usize| -> Result<bool> {
        for e in &residual {
            let parts = [(l, lr), (r, rr)];
            let v = eval(e, RowView::new(&parts), out_ctx)?;
            if truth(&v)? != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    };

    let emit = |out: &mut Chunk, lr: usize, rr: Option<usize>| {
        for (i, col) in out.cols.iter_mut().enumerate().take(la) {
            col.push_from(&l.cols[i], lr);
        }
        for (i, col) in out.cols.iter_mut().enumerate().skip(la) {
            match rr {
                Some(rr) => col.push_from(&r.cols[i - la], rr),
                None => col.push_null(),
            }
        }
        out.rows += 1;
    };
    debug_assert!(ra + la == out.cols.len());

    if equi.is_empty() {
        // Nested-loop join for cross joins and non-equi conditions.
        for lr in 0..l.rows {
            let mut matched = false;
            for rr in 0..r.rows {
                if residual_ok(ctx, lr, rr)? {
                    emit(&mut out, lr, Some(rr));
                    matched = true;
                }
            }
            if kind == JoinKind::LeftOuter && !matched {
                emit(&mut out, lr, None);
            }
        }
        return Ok(out);
    }

    // Hash join: build on the right side.
    let mut table: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
    for rr in 0..r.rows {
        let parts = [(r, rr)];
        let view = RowView::new(&parts);
        let mut key = Vec::with_capacity(equi.len());
        let mut has_null = false;
        for (_, rk) in &equi {
            let v = eval(rk, view, ctx)?;
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(Key::of(&v));
        }
        // NULL keys never match in SQL equality.
        if !has_null {
            table.entry(key).or_default().push(rr);
        }
    }
    for lr in 0..l.rows {
        let parts = [(l, lr)];
        let view = RowView::new(&parts);
        let mut key = Vec::with_capacity(equi.len());
        let mut has_null = false;
        for (lk, _) in &equi {
            let v = eval(lk, view, ctx)?;
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(Key::of(&v));
        }
        let mut matched = false;
        if !has_null {
            if let Some(rows) = table.get(&key) {
                for &rr in rows {
                    if residual_ok(ctx, lr, rr)? {
                        emit(&mut out, lr, Some(rr));
                        matched = true;
                    }
                }
            }
        }
        if kind == JoinKind::LeftOuter && !matched {
            emit(&mut out, lr, None);
        }
    }
    Ok(out)
}

/// Compares two values under one sort key (shared by the serial and batched
/// sort implementations so their orders are identical).
fn cmp_sort_values(k: &SortKey, va: &Variant, vb: &Variant) -> std::cmp::Ordering {
    // Explicit NULL placement overrides the natural order.
    let nulls_first = k.nulls_first.unwrap_or(k.desc);
    match (va.is_null(), vb.is_null()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => {
            if nulls_first {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }
        (false, true) => {
            if nulls_first {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            }
        }
        (false, false) => {
            let base = cmp_variants(va, vb);
            if k.desc {
                base.reverse()
            } else {
                base
            }
        }
    }
}

fn exec_sort(input: &Node, keys: &[SortKey], ctx: &mut ExecCtx) -> Result<Chunk> {
    let inp = execute(input, ctx)?;
    // Evaluate all keys up front.
    let mut key_cols: Vec<Vec<Variant>> = Vec::with_capacity(keys.len());
    for k in keys {
        let mut col = Vec::with_capacity(inp.rows);
        for r in 0..inp.rows {
            let parts = [(&inp, r)];
            col.push(eval(&k.expr, RowView::new(&parts), ctx)?);
        }
        key_cols.push(col);
    }
    let mut order: Vec<usize> = (0..inp.rows).collect();
    order.sort_by(|&a, &b| {
        for (k, col) in keys.iter().zip(&key_cols) {
            let c = cmp_sort_values(k, &col[a], &col[b]);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    let cols = inp.cols.iter().map(|c| c.gather(&order)).collect();
    Ok(Chunk { cols, rows: inp.rows })
}
