//! Vectorized expression kernels over typed [`ColumnVec`] batches.
//!
//! [`eval_vec`] evaluates a bound expression for a whole batch at once,
//! without the per-row interpreter (no recursion, no `RowView`, no `Result`
//! plumbing). It is **infallible by construction**: a kernel is attempted
//! only for operator/type combinations that can be proven never to raise the
//! errors the serial evaluator can raise, and anything else returns `None` so
//! the caller falls back to the row-at-a-time path — which then reproduces
//! the serial semantics *including* error identity and ordering. The
//! verification lattice runs every query with vectorization on and off, so
//! any divergence between the two paths is an oracle failure.
//!
//! Rules that keep the two paths identical:
//! - Volatile functions (`SEQ8`) are `PExpr::Func`, which never vectorizes.
//! - Mixed Int/Float comparisons use the exact [`cmp_i64_f64`] /
//!   [`cmp_f64`] helpers — the same total order as the serial path.
//! - Integer arithmetic replicates the serial checked-op-then-promote rule
//!   per element, so overflow yields the identical `Float` promotion.
//! - `Neg` of `i64::MIN` falls back (the serial evaluator's behavior there
//!   is build-profile-dependent; the fallback reproduces it exactly).
//! - `AND`/`OR` vectorize only when both operands evaluate to booleans or
//!   NULLs: eager evaluation is then observationally identical to the serial
//!   short-circuit, because vectorized operands cannot error.
//! - Mixed-class `=`/`<>` vectorize to constant false/true with NULL
//!   propagation (the serial `l == r` is false across classes); mixed-class
//!   *ordering* errors in the serial path, so it falls back.

use std::cell::Cell;
use std::cmp::Ordering;
use std::sync::Arc;

use crate::plan::{PExpr, PStep};
use crate::sql::{BinOp, UnaryOp};
use crate::storage::NULL_CODE;
use crate::variant::{cmp_f64, cmp_i64_f64, Variant};

use super::column::{Bitmap, ColumnVec};
use super::metrics::OpMetricsCell;
use super::Chunk;

thread_local! {
    /// Rows this worker evaluated directly on dictionary codes since the last
    /// [`eval_vec_counted`] reset.
    static ENC_CODES: Cell<u64> = const { Cell::new(0) };
    /// Rows whose encoded column a kernel had to materialize since the last
    /// [`eval_vec_counted`] reset.
    static ENC_MAT: Cell<u64> = const { Cell::new(0) };
}

fn note_on_codes(rows: usize) {
    ENC_CODES.with(|c| c.set(c.get() + rows as u64));
}

fn note_materialized(rows: usize) {
    ENC_MAT.with(|c| c.set(c.get() + rows as u64));
}

/// [`eval_vec`] plus per-operator accounting of encoded-execution rows: rows
/// the kernels evaluated directly on dictionary codes versus rows whose
/// encoded column had to be materialized first. `EXPLAIN ANALYZE` renders the
/// two as `enc=C/M` next to the existing `vec=V/F` counters.
pub fn eval_vec_counted(
    e: &PExpr,
    inp: &Chunk,
    cell: Option<&OpMetricsCell>,
) -> Option<ColumnVec> {
    ENC_CODES.with(|c| c.set(0));
    ENC_MAT.with(|c| c.set(0));
    let out = eval_vec(e, inp);
    if let Some(cell) = cell {
        let codes = ENC_CODES.with(Cell::get);
        let mat = ENC_MAT.with(Cell::get);
        if codes > 0 {
            cell.add_on_codes(codes);
        }
        if mat > 0 {
            cell.add_materialized(mat);
        }
    }
    out
}

/// Evaluates `e` over all rows of `inp`, or `None` when the expression shape
/// or operand types have no infallible kernel.
pub fn eval_vec(e: &PExpr, inp: &Chunk) -> Option<ColumnVec> {
    match eval_op(e, inp)? {
        Op::Col(c) => Some(c.clone()),
        Op::Own(c) => Some(c),
        Op::Scalar(v) => {
            let mut out = ColumnVec::new();
            for _ in 0..inp.rows {
                out.push(v.clone());
            }
            Some(out)
        }
    }
}

/// Converts a vectorized filter mask into the kept row indices, or `None`
/// when the mask is not boolean (the row path then raises the serial
/// type error at the first offending row).
pub fn mask_keep(mask: &ColumnVec) -> Option<Vec<usize>> {
    match mask {
        ColumnVec::Bool { vals, valid } => Some(
            (0..vals.len()).filter(|&i| valid.get(i) && vals[i]).collect(),
        ),
        // An all-NULL mask keeps nothing: truth(NULL) is "unknown".
        ColumnVec::Null(_) => Some(Vec::new()),
        _ => None,
    }
}

/// Intermediate operand: a borrowed input column, an owned kernel result, or
/// a scalar to broadcast. Bare column references flow through without clones.
enum Op<'a> {
    Col(&'a ColumnVec),
    Own(ColumnVec),
    Scalar(Variant),
}

impl Op<'_> {
    fn col(&self) -> Option<&ColumnVec> {
        match self {
            Op::Col(c) => Some(c),
            Op::Own(c) => Some(c),
            Op::Scalar(_) => None,
        }
    }

    /// True when every element is NULL regardless of row.
    fn all_null(&self) -> bool {
        match self {
            Op::Scalar(v) => v.is_null(),
            _ => matches!(self.col(), Some(ColumnVec::Null(_))),
        }
    }

    fn get(&self, i: usize) -> Variant {
        match self {
            Op::Scalar(v) => v.clone(),
            Op::Col(c) => c.get(i),
            Op::Own(c) => c.get(i),
        }
    }

    fn is_null_at(&self, i: usize) -> bool {
        match self {
            Op::Scalar(v) => v.is_null(),
            Op::Col(c) => c.is_null_at(i),
            Op::Own(c) => c.is_null_at(i),
        }
    }
}

fn eval_op<'a>(e: &'a PExpr, inp: &'a Chunk) -> Option<Op<'a>> {
    match e {
        // Out-of-range column indices fall back so the row path raises the
        // serial "column index out of range" error.
        PExpr::Col(i) => {
            let c = inp.cols.get(*i)?;
            // Run-length columns decode at the kernel boundary: the dict
            // fast paths below are code-indexed, runs are not. Dictionary
            // columns flow through encoded.
            if let ColumnVec::Runs { .. } = c {
                note_materialized(c.len());
                return Some(Op::Own(c.decoded()));
            }
            Some(Op::Col(c))
        }
        PExpr::Lit(v) => Some(Op::Scalar(v.clone())),
        PExpr::Unary { op: UnaryOp::Plus, expr } => eval_op(expr, inp),
        PExpr::Unary { op: UnaryOp::Neg, expr } => neg_kernel(&eval_op(expr, inp)?),
        PExpr::Not(x) => not_kernel(&eval_op(x, inp)?),
        PExpr::IsNull { expr, negated } => {
            let op = eval_op(expr, inp)?;
            Some(match op {
                Op::Scalar(v) => Op::Scalar(Variant::Bool(v.is_null() != *negated)),
                op => {
                    let n = op.col().map_or(inp.rows, ColumnVec::len);
                    let mut vals = Vec::with_capacity(n);
                    let mut valid = Bitmap::new();
                    for i in 0..n {
                        vals.push(op.is_null_at(i) != *negated);
                        valid.push(true);
                    }
                    Op::Own(ColumnVec::Bool { vals, valid })
                }
            })
        }
        PExpr::Binary { left, op, right } => {
            let l = eval_op(left, inp)?;
            let r = eval_op(right, inp)?;
            binary_kernel(&l, *op, &r, inp.rows)
        }
        PExpr::Path { base, steps } => {
            if steps.iter().any(|s| matches!(s, PStep::IndexExpr(_))) {
                return None;
            }
            let base = eval_op(base, inp)?;
            let mut out = ColumnVec::new();
            for i in 0..inp.rows {
                let mut v = base.get(i);
                for s in steps {
                    v = match s {
                        PStep::Field(f) => v.get_field(f),
                        PStep::Index(ix) => v.get_index(*ix),
                        PStep::IndexExpr(_) => unreachable!("filtered above"),
                    };
                    if v.is_null() {
                        break;
                    }
                }
                out.push(v);
            }
            Some(Op::Own(out))
        }
        // IN over a dictionary column with an all-literal list evaluates
        // per dictionary entry, then maps codes. Any other IN shape takes
        // the row path.
        PExpr::InList { expr, list, negated } => {
            let op = eval_op(expr, inp)?;
            in_list_kernel(&op, list, *negated)
        }
        // Everything else (CASE, functions, CAST, LIKE) takes the row
        // path; SEQ8 in particular is a Func and must never vectorize.
        _ => None,
    }
}

/// Dictionary IN-list kernel: the membership of each dictionary entry is
/// decided once against the literal list (in list order, reproducing the
/// serial first-match and NULL-item semantics), then broadcast over the
/// codes. Non-dictionary operands and non-literal lists decline.
fn in_list_kernel<'a>(op: &Op<'_>, list: &[PExpr], negated: bool) -> Option<Op<'a>> {
    let lits: Vec<&Variant> = list
        .iter()
        .map(|e| if let PExpr::Lit(v) = e { Some(v) } else { None })
        .collect::<Option<_>>()?;
    let ColumnVec::DictStr { codes, dict } = op.col()? else { return None };
    let has_null = lits.iter().any(|v| v.is_null());
    // Per-entry three-valued result: Some(bool) decided, None for NULL.
    let table: Vec<Option<bool>> = dict
        .iter()
        .map(|d| {
            let s = Variant::Str(d.clone());
            if lits.iter().any(|&v| !v.is_null() && *v == s) {
                Some(!negated)
            } else if has_null {
                None
            } else {
                Some(negated)
            }
        })
        .collect();
    let mut vals = Vec::with_capacity(codes.len());
    let mut valid = Bitmap::new();
    for &c in codes {
        match if c == NULL_CODE { None } else { table[c as usize] } {
            Some(b) => {
                vals.push(b);
                valid.push(true);
            }
            None => {
                vals.push(false);
                valid.push(false);
            }
        }
    }
    note_on_codes(codes.len());
    Some(Op::Own(ColumnVec::Bool { vals, valid }))
}

fn neg_kernel<'a>(op: &Op<'_>) -> Option<Op<'a>> {
    match op {
        Op::Scalar(Variant::Null) => Some(Op::Scalar(Variant::Null)),
        Op::Scalar(Variant::Int(i)) => i.checked_neg().map(|n| Op::Scalar(Variant::Int(n))),
        Op::Scalar(Variant::Float(f)) => Some(Op::Scalar(Variant::Float(-f))),
        Op::Scalar(_) => None,
        op => match op.col()? {
            ColumnVec::Null(n) => Some(Op::Own(ColumnVec::Null(*n))),
            ColumnVec::Int { vals, valid } => {
                let mut out = Vec::with_capacity(vals.len());
                for (i, &x) in vals.iter().enumerate() {
                    if valid.get(i) {
                        // i64::MIN has no negation; fall back to the row path.
                        out.push(x.checked_neg()?);
                    } else {
                        out.push(0);
                    }
                }
                Some(Op::Own(ColumnVec::Int { vals: out, valid: valid.clone() }))
            }
            ColumnVec::Float { vals, valid } => Some(Op::Own(ColumnVec::Float {
                vals: vals.iter().map(|f| -f).collect(),
                valid: valid.clone(),
            })),
            _ => None,
        },
    }
}

fn not_kernel<'a>(op: &Op<'_>) -> Option<Op<'a>> {
    match op {
        Op::Scalar(Variant::Null) => Some(Op::Scalar(Variant::Null)),
        Op::Scalar(Variant::Bool(b)) => Some(Op::Scalar(Variant::Bool(!b))),
        Op::Scalar(_) => None,
        op => match op.col()? {
            ColumnVec::Null(n) => Some(Op::Own(ColumnVec::Null(*n))),
            ColumnVec::Bool { vals, valid } => Some(Op::Own(ColumnVec::Bool {
                vals: vals.iter().map(|b| !b).collect(),
                valid: valid.clone(),
            })),
            _ => None,
        },
    }
}

fn binary_kernel<'a>(l: &Op<'_>, op: BinOp, r: &Op<'_>, rows: usize) -> Option<Op<'a>> {
    if matches!(op, BinOp::And | BinOp::Or) {
        return logic_kernel(l, op, r, rows);
    }
    // For every other operator the serial evaluator checks NULLs first, so an
    // always-NULL side forces an all-NULL result — no type errors possible.
    if l.all_null() || r.all_null() {
        return Some(Op::Own(ColumnVec::Null(rows)));
    }
    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            compare_kernel(l, op, r, rows)
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => arith_kernel(l, op, r, rows),
        BinOp::Concat => concat_kernel(l, r, rows),
        // Division and modulo raise data-dependent errors (zero divisors);
        // the row path keeps their error identity.
        BinOp::Div | BinOp::Mod => None,
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

/// Type class of an operand, ignoring NULL slots. `None` for `Var` columns,
/// whose per-row types are unknown without inspection.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Num,
    Str,
    Bool,
    Nested,
}

fn op_class(op: &Op<'_>) -> Option<Class> {
    match op {
        Op::Scalar(v) => match v {
            Variant::Int(_) | Variant::Float(_) => Some(Class::Num),
            Variant::Str(_) => Some(Class::Str),
            Variant::Bool(_) => Some(Class::Bool),
            Variant::Array(_) | Variant::Object(_) => Some(Class::Nested),
            Variant::Null => None,
        },
        op => col_class(op.col()?),
    }
}

fn col_class(c: &ColumnVec) -> Option<Class> {
    match c {
        ColumnVec::Int { .. } | ColumnVec::Float { .. } => Some(Class::Num),
        ColumnVec::Str(_) | ColumnVec::DictStr { .. } => Some(Class::Str),
        ColumnVec::Bool { .. } => Some(Class::Bool),
        ColumnVec::Runs { values, .. } => col_class(values),
        ColumnVec::Null(_) | ColumnVec::Var(_) => None,
    }
}

/// Decoded string payload of a dictionary operand, or `None` when the
/// operand is not dictionary-encoded. Counts the rows as materialized.
fn materialize_dict(op: &Op<'_>) -> Option<Vec<Option<Arc<str>>>> {
    if let Some(ColumnVec::DictStr { codes, dict }) = op.col() {
        note_materialized(codes.len());
        Some(
            codes
                .iter()
                .map(|&c| (c != NULL_CODE).then(|| dict[c as usize].clone()))
                .collect(),
        )
    } else {
        None
    }
}

/// A numeric element, preserving the Int/Float distinction for exactness.
#[derive(Clone, Copy)]
enum NumVal {
    I(i64),
    F(f64),
}

impl NumVal {
    /// The serial arithmetic coercion (`NumericPair`): integers convert via
    /// `as f64`. Comparisons never use this — they stay exact.
    fn as_f64(self) -> f64 {
        match self {
            NumVal::I(i) => i as f64,
            NumVal::F(f) => f,
        }
    }
}

/// Typed accessor over a numeric operand.
enum NumSide<'a> {
    IntCol(&'a [i64], &'a Bitmap),
    FloatCol(&'a [f64], &'a Bitmap),
    IntScalar(i64),
    FloatScalar(f64),
}

impl NumSide<'_> {
    fn at(&self, i: usize) -> Option<NumVal> {
        match self {
            NumSide::IntCol(vals, valid) => valid.get(i).then(|| NumVal::I(vals[i])),
            NumSide::FloatCol(vals, valid) => valid.get(i).then(|| NumVal::F(vals[i])),
            NumSide::IntScalar(x) => Some(NumVal::I(*x)),
            NumSide::FloatScalar(x) => Some(NumVal::F(*x)),
        }
    }
}

fn num_side<'a>(op: &'a Op<'_>) -> Option<NumSide<'a>> {
    match op {
        Op::Scalar(Variant::Int(i)) => Some(NumSide::IntScalar(*i)),
        Op::Scalar(Variant::Float(f)) => Some(NumSide::FloatScalar(*f)),
        Op::Scalar(_) => None,
        op => match op.col()? {
            ColumnVec::Int { vals, valid } => Some(NumSide::IntCol(vals, valid)),
            ColumnVec::Float { vals, valid } => Some(NumSide::FloatCol(vals, valid)),
            _ => None,
        },
    }
}

/// Exact numeric comparison — the same total order as `cmp_variants`.
fn cmp_num(a: NumVal, b: NumVal) -> Ordering {
    match (a, b) {
        (NumVal::I(x), NumVal::I(y)) => x.cmp(&y),
        (NumVal::I(x), NumVal::F(y)) => cmp_i64_f64(x, y),
        (NumVal::F(x), NumVal::I(y)) => cmp_i64_f64(y, x).reverse(),
        (NumVal::F(x), NumVal::F(y)) => cmp_f64(x, y),
    }
}

fn cmp_to_bool(op: BinOp, c: Ordering) -> bool {
    match op {
        BinOp::Eq => c == Ordering::Equal,
        BinOp::NotEq => c != Ordering::Equal,
        BinOp::Lt => c == Ordering::Less,
        BinOp::LtEq => c != Ordering::Greater,
        BinOp::Gt => c == Ordering::Greater,
        BinOp::GtEq => c != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Maps a per-dictionary-entry decision table over codes: one comparison per
/// dictionary entry instead of one per row.
fn map_codes<'a>(codes: &[u32], table: &[bool]) -> Op<'a> {
    let mut vals = Vec::with_capacity(codes.len());
    let mut valid = Bitmap::new();
    for &c in codes {
        if c == NULL_CODE {
            vals.push(false);
            valid.push(false);
        } else {
            vals.push(table[c as usize]);
            valid.push(true);
        }
    }
    note_on_codes(codes.len());
    Op::Own(ColumnVec::Bool { vals, valid })
}

/// Comparison fast paths that never materialize dictionary strings:
/// dict-vs-string-scalar compares each dictionary entry once, and
/// same-dictionary Eq/NotEq compares raw codes (distinct codes ⇔ distinct
/// strings). Anything else declines and the generic string arm decides.
fn dict_compare<'a>(l: &Op<'_>, op: BinOp, r: &Op<'_>) -> Option<Op<'a>> {
    if let (Some(ColumnVec::DictStr { codes, dict }), Op::Scalar(Variant::Str(s))) =
        (l.col(), r)
    {
        let table: Vec<bool> =
            dict.iter().map(|d| cmp_to_bool(op, (**d).cmp(&**s))).collect();
        return Some(map_codes(codes, &table));
    }
    if let (Op::Scalar(Variant::Str(s)), Some(ColumnVec::DictStr { codes, dict })) =
        (l, r.col())
    {
        let table: Vec<bool> =
            dict.iter().map(|d| cmp_to_bool(op, (**s).cmp(&**d))).collect();
        return Some(map_codes(codes, &table));
    }
    if let (
        Some(ColumnVec::DictStr { codes: lc, dict: ld }),
        Some(ColumnVec::DictStr { codes: rc, dict: rd }),
    ) = (l.col(), r.col())
    {
        if Arc::ptr_eq(ld, rd) && matches!(op, BinOp::Eq | BinOp::NotEq) {
            let mut vals = Vec::with_capacity(lc.len());
            let mut valid = Bitmap::new();
            for (&a, &b) in lc.iter().zip(rc) {
                if a == NULL_CODE || b == NULL_CODE {
                    vals.push(false);
                    valid.push(false);
                } else {
                    vals.push((a == b) == (op == BinOp::Eq));
                    valid.push(true);
                }
            }
            note_on_codes(lc.len());
            return Some(Op::Own(ColumnVec::Bool { vals, valid }));
        }
    }
    None
}

fn compare_kernel<'a>(l: &Op<'_>, op: BinOp, r: &Op<'_>, rows: usize) -> Option<Op<'a>> {
    if let Some(res) = dict_compare(l, op, r) {
        return Some(res);
    }
    let (lc, rc) = (op_class(l)?, op_class(r)?);
    let mut vals = Vec::with_capacity(rows);
    let mut valid = Bitmap::new();
    match (lc, rc) {
        (Class::Num, Class::Num) => {
            let (a, b) = (num_side(l)?, num_side(r)?);
            for i in 0..rows {
                match (a.at(i), b.at(i)) {
                    (Some(x), Some(y)) => {
                        vals.push(cmp_to_bool(op, cmp_num(x, y)));
                        valid.push(true);
                    }
                    _ => {
                        vals.push(false);
                        valid.push(false);
                    }
                }
            }
        }
        (Class::Str, Class::Str) => {
            // Shapes the dict fast path declined (dict-vs-plain-column,
            // cross-dictionary ordering) materialize the dict side(s).
            let (ld, rd) = (materialize_dict(l), materialize_dict(r));
            let a = match &ld {
                Some(v) => StrSide::Col(v),
                None => str_side(l)?,
            };
            let b = match &rd {
                Some(v) => StrSide::Col(v),
                None => str_side(r)?,
            };
            for i in 0..rows {
                match (a.at(i), b.at(i)) {
                    (Some(x), Some(y)) => {
                        vals.push(cmp_to_bool(op, x.cmp(y)));
                        valid.push(true);
                    }
                    _ => {
                        vals.push(false);
                        valid.push(false);
                    }
                }
            }
        }
        (Class::Bool, Class::Bool) => {
            let (a, b) = (bool_side(l)?, bool_side(r)?);
            for i in 0..rows {
                match (a.at(i), b.at(i)) {
                    (Some(x), Some(y)) => {
                        vals.push(cmp_to_bool(op, x.cmp(&y)));
                        valid.push(true);
                    }
                    _ => {
                        vals.push(false);
                        valid.push(false);
                    }
                }
            }
        }
        _ => {
            // Mismatched classes: serial `=`/`<>` yields constant false/true
            // with NULL propagation; ordering raises a type error, so it must
            // take the row path to keep error identity.
            let res = match op {
                BinOp::Eq => false,
                BinOp::NotEq => true,
                _ => return None,
            };
            for i in 0..rows {
                if l.is_null_at(i) || r.is_null_at(i) {
                    vals.push(false);
                    valid.push(false);
                } else {
                    vals.push(res);
                    valid.push(true);
                }
            }
        }
    }
    Some(Op::Own(ColumnVec::Bool { vals, valid }))
}

fn arith_kernel<'a>(l: &Op<'_>, op: BinOp, r: &Op<'_>, rows: usize) -> Option<Op<'a>> {
    let (a, b) = (num_side(l)?, num_side(r)?);
    let mut out = ColumnVec::new();
    for i in 0..rows {
        match (a.at(i), b.at(i)) {
            (Some(NumVal::I(x)), Some(NumVal::I(y))) => {
                let res = match op {
                    BinOp::Add => x.checked_add(y),
                    BinOp::Sub => x.checked_sub(y),
                    BinOp::Mul => x.checked_mul(y),
                    _ => unreachable!("not arithmetic"),
                };
                // The serial rule: i64 overflow promotes the element to
                // Float rather than failing the query.
                out.push(match res {
                    Some(v) => Variant::Int(v),
                    None => {
                        let (xf, yf) = (x as f64, y as f64);
                        Variant::Float(match op {
                            BinOp::Add => xf + yf,
                            BinOp::Sub => xf - yf,
                            BinOp::Mul => xf * yf,
                            _ => unreachable!(),
                        })
                    }
                });
            }
            (Some(x), Some(y)) => {
                let (xf, yf) = (x.as_f64(), y.as_f64());
                out.push(Variant::Float(match op {
                    BinOp::Add => xf + yf,
                    BinOp::Sub => xf - yf,
                    BinOp::Mul => xf * yf,
                    _ => unreachable!(),
                }));
            }
            _ => out.push_null(),
        }
    }
    Some(Op::Own(out))
}

/// String accessor over a string-class operand.
enum StrSide<'a> {
    Col(&'a [Option<Arc<str>>]),
    Scalar(&'a Arc<str>),
}

impl<'a> StrSide<'a> {
    fn at(&self, i: usize) -> Option<&'a Arc<str>> {
        match self {
            StrSide::Col(v) => v[i].as_ref(),
            StrSide::Scalar(s) => Some(s),
        }
    }
}

fn str_side<'a>(op: &'a Op<'_>) -> Option<StrSide<'a>> {
    match op {
        Op::Scalar(Variant::Str(s)) => Some(StrSide::Scalar(s)),
        Op::Scalar(_) => None,
        op => match op.col()? {
            ColumnVec::Str(v) => Some(StrSide::Col(v)),
            _ => None,
        },
    }
}

fn concat_kernel<'a>(l: &Op<'_>, r: &Op<'_>, rows: usize) -> Option<Op<'a>> {
    let (ld, rd) = (materialize_dict(l), materialize_dict(r));
    let a = match &ld {
        Some(v) => StrSide::Col(v),
        None => str_side(l)?,
    };
    let b = match &rd {
        Some(v) => StrSide::Col(v),
        None => str_side(r)?,
    };
    let mut out: Vec<Option<Arc<str>>> = Vec::with_capacity(rows);
    for i in 0..rows {
        match (a.at(i), b.at(i)) {
            (Some(x), Some(y)) => {
                let mut s = String::with_capacity(x.len() + y.len());
                s.push_str(x);
                s.push_str(y);
                out.push(Some(Arc::from(s.as_str())));
            }
            _ => out.push(None),
        }
    }
    Some(Op::Own(ColumnVec::Str(out)))
}

/// Boolean accessor over a boolean-or-null operand.
enum BoolSide<'a> {
    Col(&'a [bool], &'a Bitmap),
    AllNull,
    Scalar(bool),
}

impl BoolSide<'_> {
    fn at(&self, i: usize) -> Option<bool> {
        match self {
            BoolSide::Col(vals, valid) => valid.get(i).then(|| vals[i]),
            BoolSide::AllNull => None,
            BoolSide::Scalar(b) => Some(*b),
        }
    }
}

fn bool_side<'a>(op: &'a Op<'_>) -> Option<BoolSide<'a>> {
    match op {
        Op::Scalar(Variant::Bool(b)) => Some(BoolSide::Scalar(*b)),
        Op::Scalar(Variant::Null) => Some(BoolSide::AllNull),
        Op::Scalar(_) => None,
        op => match op.col()? {
            ColumnVec::Bool { vals, valid } => Some(BoolSide::Col(vals, valid)),
            ColumnVec::Null(_) => Some(BoolSide::AllNull),
            _ => None,
        },
    }
}

/// Three-valued `AND`/`OR`. Vectorizes only when both operands are
/// boolean/NULL: eager evaluation is then equivalent to the serial
/// short-circuit, since neither operand can raise an error. A non-boolean
/// operand falls back so the serial path decides — it may legitimately
/// *succeed* there when short-circuiting skips the bad operand.
fn logic_kernel<'a>(l: &Op<'_>, op: BinOp, r: &Op<'_>, rows: usize) -> Option<Op<'a>> {
    let (a, b) = (bool_side(l)?, bool_side(r)?);
    let mut vals = Vec::with_capacity(rows);
    let mut valid = Bitmap::new();
    for i in 0..rows {
        let res = match op {
            BinOp::And => match (a.at(i), b.at(i)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (a.at(i), b.at(i)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("not a logic operator"),
        };
        match res {
            Some(v) => {
                vals.push(v);
                valid.push(true);
            }
            None => {
                vals.push(false);
                valid.push(false);
            }
        }
    }
    Some(Op::Own(ColumnVec::Bool { vals, valid }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{eval, ExecCtx, RowView};

    /// Reference check: `eval_vec` must agree with the serial evaluator on
    /// every row whenever it returns a column at all.
    fn assert_matches_serial(e: &PExpr, inp: &Chunk) {
        let Some(col) = eval_vec(e, inp) else { return };
        assert_eq!(col.len(), inp.rows, "kernel arity for {e:?}");
        let mut ctx = ExecCtx::default();
        for r in 0..inp.rows {
            let parts = [(inp, r)];
            let serial = eval(e, RowView::new(&parts), &mut ctx)
                .unwrap_or_else(|err| panic!("kernel vectorized a failing expr {e:?}: {err}"));
            assert_eq!(col.get(r), serial, "row {r} of {e:?}");
        }
    }

    fn chunk(cols: Vec<Vec<Variant>>) -> Chunk {
        let rows = cols.first().map_or(0, Vec::len);
        Chunk { cols: cols.into_iter().map(ColumnVec::from_variants).collect(), rows }
    }

    fn bin(l: PExpr, op: BinOp, r: PExpr) -> PExpr {
        PExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    #[test]
    fn comparison_kernels_match_serial() {
        let inp = chunk(vec![
            vec![
                Variant::Int(1),
                Variant::Int((1 << 53) + 1),
                Variant::Null,
                Variant::Int(-5),
            ],
            vec![
                Variant::Float(1.0),
                Variant::Float((1i64 << 53) as f64),
                Variant::Float(2.0),
                Variant::Null,
            ],
        ]);
        for op in [BinOp::Eq, BinOp::NotEq, BinOp::Lt, BinOp::LtEq, BinOp::Gt, BinOp::GtEq] {
            let e = bin(PExpr::Col(0), op, PExpr::Col(1));
            assert!(eval_vec(&e, &inp).is_some(), "{op:?} should vectorize");
            assert_matches_serial(&e, &inp);
        }
        // The exactness bug: Int(2^53+1) vs Float(2^53) must be NotEq.
        let e = bin(PExpr::Col(0), BinOp::Eq, PExpr::Col(1));
        let col = eval_vec(&e, &inp).unwrap();
        assert_eq!(col.get(1), Variant::Bool(false));
    }

    #[test]
    fn arith_kernels_match_serial_including_overflow() {
        let inp = chunk(vec![
            vec![Variant::Int(i64::MAX), Variant::Int(2), Variant::Null],
            vec![Variant::Int(1), Variant::Int(3), Variant::Int(4)],
        ]);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul] {
            let e = bin(PExpr::Col(0), op, PExpr::Col(1));
            assert!(eval_vec(&e, &inp).is_some(), "{op:?} should vectorize");
            assert_matches_serial(&e, &inp);
        }
        // Overflow promotes the element to Float, same as serial.
        let e = bin(PExpr::Col(0), BinOp::Add, PExpr::Col(1));
        let col = eval_vec(&e, &inp).unwrap();
        assert_eq!(col.get(0), Variant::Float(i64::MAX as f64 + 1.0));
        assert_eq!(col.get(1), Variant::Int(5));
    }

    #[test]
    fn logic_and_null_kernels_match_serial() {
        let b = |v: Option<bool>| v.map_or(Variant::Null, Variant::Bool);
        let vals: Vec<Variant> = [
            Some(true),
            Some(false),
            None,
            Some(true),
            None,
            Some(false),
            None,
            Some(true),
            Some(false),
        ]
        .iter()
        .map(|v| b(*v))
        .collect();
        let rvals: Vec<Variant> = vals.iter().rev().cloned().collect();
        let inp = chunk(vec![vals, rvals]);
        for op in [BinOp::And, BinOp::Or] {
            let e = bin(PExpr::Col(0), op, PExpr::Col(1));
            assert!(eval_vec(&e, &inp).is_some());
            assert_matches_serial(&e, &inp);
        }
        let e = PExpr::Not(Box::new(PExpr::Col(0)));
        assert!(eval_vec(&e, &inp).is_some());
        assert_matches_serial(&e, &inp);
        let e = PExpr::IsNull { expr: Box::new(PExpr::Col(1)), negated: true };
        assert!(eval_vec(&e, &inp).is_some());
        assert_matches_serial(&e, &inp);
    }

    #[test]
    fn fallible_shapes_do_not_vectorize() {
        let inp = chunk(vec![
            vec![Variant::Int(1), Variant::Int(0)],
            vec![Variant::str("a"), Variant::str("b")],
        ]);
        // Division can raise; mixed-class ordering raises.
        assert!(eval_vec(&bin(PExpr::Col(0), BinOp::Div, PExpr::Col(0)), &inp).is_none());
        assert!(eval_vec(&bin(PExpr::Col(0), BinOp::Lt, PExpr::Col(1)), &inp).is_none());
        // Mixed-class equality is total: it vectorizes to constant false.
        let e = bin(PExpr::Col(0), BinOp::Eq, PExpr::Col(1));
        assert!(eval_vec(&e, &inp).is_some());
        assert_matches_serial(&e, &inp);
        // AND over a non-boolean operand falls back.
        assert!(eval_vec(&bin(PExpr::Col(0), BinOp::And, PExpr::Col(0)), &inp).is_none());
        // Neg of a column containing i64::MIN falls back.
        let minp = chunk(vec![vec![Variant::Int(i64::MIN), Variant::Int(3)]]);
        let neg = PExpr::Unary { op: UnaryOp::Neg, expr: Box::new(PExpr::Col(0)) };
        assert!(eval_vec(&neg, &minp).is_none());
        assert_matches_serial(&neg, &inp);
    }

    #[test]
    fn path_steps_vectorize_over_nested_columns() {
        let mut o1 = crate::variant::Object::new();
        o1.insert("a", Variant::array(vec![Variant::Int(1), Variant::Int(2)]));
        let mut o2 = crate::variant::Object::new();
        o2.insert("b", Variant::Int(9));
        let inp = chunk(vec![vec![
            Variant::object(o1),
            Variant::object(o2),
            Variant::Null,
            Variant::Int(3),
        ]]);
        let e = PExpr::Path {
            base: Box::new(PExpr::Col(0)),
            steps: vec![PStep::Field("a".into()), PStep::Index(1)],
        };
        let col = eval_vec(&e, &inp).expect("path should vectorize");
        assert_eq!(col.get(0), Variant::Int(2));
        assert!(col.is_null_at(1));
        assert_matches_serial(&e, &inp);
    }

    #[test]
    fn concat_and_string_compare_vectorize() {
        let inp = chunk(vec![
            vec![Variant::str("a"), Variant::Null, Variant::str("c")],
            vec![Variant::str("x"), Variant::str("y"), Variant::Null],
        ]);
        for e in [
            bin(PExpr::Col(0), BinOp::Concat, PExpr::Col(1)),
            bin(PExpr::Col(0), BinOp::Lt, PExpr::Col(1)),
            bin(PExpr::Col(0), BinOp::Eq, PExpr::Lit(Variant::str("a"))),
        ] {
            assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
            assert_matches_serial(&e, &inp);
        }
    }

    /// Two dictionary columns sharing one dictionary, plus one with a
    /// different dictionary holding the same strings: the fast paths must
    /// match serial on all of them, including NULL codes.
    fn dict_chunk() -> Chunk {
        let dict: std::sync::Arc<Vec<std::sync::Arc<str>>> = std::sync::Arc::new(vec![
            std::sync::Arc::from("ny"),
            std::sync::Arc::from("la"),
            std::sync::Arc::from("sf"),
        ]);
        let other: std::sync::Arc<Vec<std::sync::Arc<str>>> =
            std::sync::Arc::new(vec![std::sync::Arc::from("la"), std::sync::Arc::from("ny")]);
        let cols = vec![
            ColumnVec::DictStr { codes: vec![0, 1, NULL_CODE, 2, 0, 1], dict: dict.clone() },
            ColumnVec::DictStr { codes: vec![0, 0, 1, NULL_CODE, 2, 1], dict },
            ColumnVec::DictStr { codes: vec![1, 0, NULL_CODE, 0, 1, 0], dict: other },
        ];
        Chunk { cols, rows: 6 }
    }

    #[test]
    fn dict_scalar_compares_stay_on_codes_and_match_serial() {
        let inp = dict_chunk();
        for op in [BinOp::Eq, BinOp::NotEq, BinOp::Lt, BinOp::LtEq, BinOp::Gt, BinOp::GtEq] {
            for e in [
                bin(PExpr::Col(0), op, PExpr::Lit(Variant::str("la"))),
                bin(PExpr::Lit(Variant::str("ny")), op, PExpr::Col(0)),
            ] {
                assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
                assert_matches_serial(&e, &inp);
            }
        }
        // A scalar absent from the dictionary still compares correctly.
        let e = bin(PExpr::Col(0), BinOp::Eq, PExpr::Lit(Variant::str("zz")));
        assert_matches_serial(&e, &inp);
    }

    #[test]
    fn dict_column_compares_match_serial() {
        let inp = dict_chunk();
        // Same dictionary: code-level Eq/NotEq; ordering materializes.
        // Different dictionaries: everything materializes. All match serial.
        for (l, r) in [(0, 1), (0, 2)] {
            for op in [BinOp::Eq, BinOp::NotEq, BinOp::Lt, BinOp::GtEq] {
                let e = bin(PExpr::Col(l), op, PExpr::Col(r));
                assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
                assert_matches_serial(&e, &inp);
            }
        }
    }

    #[test]
    fn dict_in_list_matches_serial_including_null_semantics() {
        let inp = dict_chunk();
        let lits = |vs: &[Variant]| vs.iter().cloned().map(PExpr::Lit).collect::<Vec<_>>();
        for negated in [false, true] {
            for list in [
                lits(&[Variant::str("la"), Variant::str("zz")]),
                // A NULL in the list makes non-matches NULL, not false.
                lits(&[Variant::str("sf"), Variant::Null]),
                lits(&[Variant::Null]),
            ] {
                let e = PExpr::InList {
                    expr: Box::new(PExpr::Col(0)),
                    list: list.clone(),
                    negated,
                };
                assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
                assert_matches_serial(&e, &inp);
            }
        }
        // A non-literal list item declines (the serial path may error).
        let e = PExpr::InList {
            expr: Box::new(PExpr::Col(0)),
            list: vec![PExpr::Col(1)],
            negated: false,
        };
        assert!(eval_vec(&e, &inp).is_none());
    }

    #[test]
    fn dict_concat_materializes_and_matches_serial() {
        let inp = dict_chunk();
        for e in [
            bin(PExpr::Col(0), BinOp::Concat, PExpr::Col(2)),
            bin(PExpr::Col(0), BinOp::Concat, PExpr::Lit(Variant::str("!"))),
        ] {
            assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
            assert_matches_serial(&e, &inp);
        }
    }

    #[test]
    fn runs_columns_decode_at_the_kernel_boundary() {
        let ints = ColumnVec::Runs {
            ends: vec![2, 3, 6],
            values: Box::new(ColumnVec::from_variants(vec![
                Variant::Int(7),
                Variant::Null,
                Variant::Int(9),
            ])),
        };
        let inp = Chunk { cols: vec![ints], rows: 6 };
        for e in [
            bin(PExpr::Col(0), BinOp::Gt, PExpr::Lit(Variant::Int(8))),
            bin(PExpr::Col(0), BinOp::Add, PExpr::Lit(Variant::Int(1))),
        ] {
            assert!(eval_vec(&e, &inp).is_some(), "{e:?}");
            assert_matches_serial(&e, &inp);
        }
    }

    #[test]
    fn eval_vec_counted_reports_rows_on_codes_and_materialized() {
        let inp = dict_chunk();
        let cell = OpMetricsCell::default();
        // Dict-vs-scalar equality runs on codes.
        let e = bin(PExpr::Col(0), BinOp::Eq, PExpr::Lit(Variant::str("la")));
        assert!(eval_vec_counted(&e, &inp, Some(&cell)).is_some());
        let m = cell.snapshot("Filter".into(), 1, Vec::new());
        assert_eq!(m.rows_on_codes, 6);
        assert_eq!(m.rows_materialized, 0);
        // Cross-dictionary ordering materializes both sides.
        let cell = OpMetricsCell::default();
        let e = bin(PExpr::Col(0), BinOp::Lt, PExpr::Col(2));
        assert!(eval_vec_counted(&e, &inp, Some(&cell)).is_some());
        let m = cell.snapshot("Filter".into(), 1, Vec::new());
        assert_eq!(m.rows_on_codes, 0);
        assert_eq!(m.rows_materialized, 12);
    }

    #[test]
    fn mask_keep_semantics() {
        let mut mask = ColumnVec::new();
        for v in [Variant::Bool(true), Variant::Bool(false), Variant::Null, Variant::Bool(true)] {
            mask.push(v);
        }
        assert_eq!(mask_keep(&mask).unwrap(), vec![0, 3]);
        assert_eq!(mask_keep(&ColumnVec::Null(5)).unwrap(), Vec::<usize>::new());
        assert!(mask_keep(&ColumnVec::from_variants(vec![Variant::Int(1)])).is_none());
    }
}
