//! Per-operator execution metrics.
//!
//! Every physical operator owns an [`OpMetricsCell`]: a set of atomic counters
//! that workers update concurrently while the morsel-parallel executor runs.
//! After execution the cells are snapshotted into an [`OpMetrics`] tree that
//! mirrors the plan shape; [`crate::engine::QueryProfile`] carries it and
//! `EXPLAIN ANALYZE` renders it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Concurrent metric counters for one physical operator.
#[derive(Debug, Default)]
pub struct OpMetricsCell {
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    batches_out: AtomicU64,
    /// Cumulative time spent inside the operator, summed across workers.
    busy_nanos: AtomicU64,
    /// Peak number of intermediate rows held at once (max over batches for
    /// streaming operators, total output for materializing ones).
    peak_rows: AtomicU64,
    /// Peak estimated intermediate bytes (see
    /// [`Chunk::approx_bytes`](crate::exec::Chunk::approx_bytes)): max over
    /// batches for streaming operators, total materialization for breakers.
    peak_mem_bytes: AtomicU64,
    /// Rows processed through typed vectorized kernels.
    rows_vectorized: AtomicU64,
    /// Rows that fell back to the row-at-a-time Variant path.
    rows_fallback: AtomicU64,
    /// Rows evaluated directly on dictionary codes (no string materialization).
    rows_on_codes: AtomicU64,
    /// Rows whose encoded columns were materialized before evaluation.
    rows_materialized: AtomicU64,
}

impl OpMetricsCell {
    /// Records one produced batch with its consumed/produced row counts.
    pub fn record_batch(&self, rows_in: u64, rows_out: u64, busy: Duration) {
        self.rows_in.fetch_add(rows_in, Ordering::Relaxed);
        self.rows_out.fetch_add(rows_out, Ordering::Relaxed);
        self.batches_out.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.peak(rows_out);
    }

    /// Records consumed rows without producing a batch (pipeline breakers
    /// account input and output separately).
    pub fn add_rows_in(&self, rows: u64) {
        self.rows_in.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records produced batches without consuming input (sources).
    pub fn add_output(&self, rows: u64, batches: u64) {
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
        self.batches_out.fetch_add(batches, Ordering::Relaxed);
        self.peak(rows);
    }

    /// Adds operator-busy wall time (summed across workers).
    pub fn add_busy(&self, busy: Duration) {
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Raises the peak-intermediate-rows watermark.
    pub fn peak(&self, rows: u64) {
        self.peak_rows.fetch_max(rows, Ordering::Relaxed);
    }

    /// Raises the peak-intermediate-bytes watermark.
    pub fn add_mem(&self, bytes: u64) {
        self.peak_mem_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Counts rows processed through typed vectorized kernels.
    pub fn add_vectorized(&self, rows: u64) {
        self.rows_vectorized.fetch_add(rows, Ordering::Relaxed);
    }

    /// Counts rows that fell back to the row-at-a-time Variant path.
    pub fn add_fallback(&self, rows: u64) {
        self.rows_fallback.fetch_add(rows, Ordering::Relaxed);
    }

    /// Counts rows evaluated directly on dictionary codes.
    pub fn add_on_codes(&self, rows: u64) {
        self.rows_on_codes.fetch_add(rows, Ordering::Relaxed);
    }

    /// Counts rows whose encoded columns had to be materialized first.
    pub fn add_materialized(&self, rows: u64) {
        self.rows_materialized.fetch_add(rows, Ordering::Relaxed);
    }

    /// Immutable snapshot (taken after execution completes).
    pub fn snapshot(
        &self,
        name: String,
        parallelism: usize,
        children: Vec<OpMetrics>,
    ) -> OpMetrics {
        OpMetrics {
            name,
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches: self.batches_out.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            peak_rows: self.peak_rows.load(Ordering::Relaxed),
            peak_mem_bytes: self.peak_mem_bytes.load(Ordering::Relaxed),
            rows_vectorized: self.rows_vectorized.load(Ordering::Relaxed),
            rows_fallback: self.rows_fallback.load(Ordering::Relaxed),
            rows_on_codes: self.rows_on_codes.load(Ordering::Relaxed),
            rows_materialized: self.rows_materialized.load(Ordering::Relaxed),
            parallelism,
            children,
        }
    }
}

/// One node of the per-operator metrics tree reported in
/// [`crate::engine::QueryProfile`].
#[derive(Clone, Debug, Default)]
pub struct OpMetrics {
    /// Operator label, e.g. `Scan HEP` or `Aggregate`.
    pub name: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    /// Time spent inside the operator, summed across workers (can exceed the
    /// query's wall time under parallelism).
    pub busy: Duration,
    pub peak_rows: u64,
    /// Peak estimated intermediate bytes held by the operator at once.
    pub peak_mem_bytes: u64,
    /// Rows this operator processed through typed vectorized kernels.
    pub rows_vectorized: u64,
    /// Rows this operator processed on the row-at-a-time Variant path after a
    /// kernel declined (mixed types, fallible shapes, volatile expressions).
    pub rows_fallback: u64,
    /// Rows this operator evaluated directly on dictionary codes without
    /// materializing strings.
    pub rows_on_codes: u64,
    /// Rows whose encoded (dict/RLE) columns were materialized before
    /// evaluation because no code-level kernel applied.
    pub rows_materialized: u64,
    /// Worker count the operator ran with.
    pub parallelism: usize,
    pub children: Vec<OpMetrics>,
}

impl OpMetrics {
    /// Total operators in the tree.
    pub fn op_count(&self) -> usize {
        1 + self.children.iter().map(OpMetrics::op_count).sum::<usize>()
    }

    /// The annotation `EXPLAIN ANALYZE` appends to a plan line.
    pub fn annotation(&self) -> String {
        format!(
            "rows={} batches={} time={:.3?} peak={} mem={}{}{}{}",
            self.rows_out,
            self.batches,
            self.busy,
            self.peak_rows,
            self.peak_mem_bytes,
            if self.rows_vectorized + self.rows_fallback > 0 {
                format!(" vec={}/{}", self.rows_vectorized, self.rows_fallback)
            } else {
                String::new()
            },
            if self.rows_on_codes + self.rows_materialized > 0 {
                format!(" enc={}/{}", self.rows_on_codes, self.rows_materialized)
            } else {
                String::new()
            },
            if self.parallelism > 1 {
                format!(" workers={}", self.parallelism)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let cell = OpMetricsCell::default();
        cell.record_batch(100, 40, Duration::from_micros(5));
        cell.record_batch(50, 60, Duration::from_micros(3));
        cell.add_vectorized(90);
        cell.add_fallback(10);
        cell.add_on_codes(70);
        cell.add_materialized(30);
        let m = cell.snapshot("Filter".into(), 4, Vec::new());
        assert_eq!(m.rows_in, 150);
        assert_eq!(m.rows_out, 100);
        assert_eq!(m.batches, 2);
        assert_eq!(m.peak_rows, 60);
        assert_eq!(m.busy, Duration::from_micros(8));
        assert_eq!(m.parallelism, 4);
        assert_eq!(m.rows_vectorized, 90);
        assert_eq!(m.rows_fallback, 10);
        assert_eq!(m.rows_on_codes, 70);
        assert_eq!(m.rows_materialized, 30);
        assert!(m.annotation().contains("workers=4"));
        assert!(m.annotation().contains("vec=90/10"));
        assert!(m.annotation().contains("enc=70/30"));
    }

    #[test]
    fn annotation_omits_vec_counts_when_unused() {
        let cell = OpMetricsCell::default();
        cell.record_batch(10, 10, Duration::from_micros(1));
        let m = cell.snapshot("Scan".into(), 1, Vec::new());
        assert!(!m.annotation().contains("vec="));
        assert!(!m.annotation().contains("enc="));
    }
}
