//! SQL tokenizer.
//!
//! Follows Snowflake's lexical conventions as far as the workloads need them:
//! unquoted identifiers fold to upper case, `"quoted"` identifiers are exact,
//! strings use single quotes with `''` escaping, `::` is the cast operator, `:`
//! begins a variant path, and `=>` is the named-argument arrow used by
//! `FLATTEN(INPUT => ...)`.

use crate::error::{Result, SnowError};

/// One SQL token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword; `quoted` identifiers keep their exact case.
    Ident { text: String, quoted: bool },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// True when this token is the given (case-insensitive) keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident { text, quoted: false } if text.eq_ignore_ascii_case(kw))
    }

    /// True when this token is the given symbol.
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Token::Sym(t) if *t == s)
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(input.len() / 4);
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SnowError::Lex(format!(
                            "unterminated block comment at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let rest = std::str::from_utf8(&bytes[i..])
                                .map_err(|_| SnowError::Lex("invalid utf-8".into()))?;
                            let c = rest.chars().next().unwrap();
                            s.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(SnowError::Lex("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar, not one byte.
                            let rest = std::str::from_utf8(&bytes[i..])
                                .map_err(|_| SnowError::Lex("invalid utf-8".into()))?;
                            let c = rest.chars().next().unwrap();
                            s.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(SnowError::Lex("unterminated quoted identifier".into()))
                        }
                    }
                }
                out.push(Token::Ident { text: s, quoted: true });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // A '.' is part of the number only when followed by a digit, so
                // `1.x` path syntax never arises here (paths use ':' roots).
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        SnowError::Lex(format!("invalid number '{text}'"))
                    })?));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => out.push(Token::Float(text.parse().map_err(|_| {
                            SnowError::Lex(format!("invalid number '{text}'"))
                        })?)),
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap().to_ascii_uppercase();
                out.push(Token::Ident { text, quoted: false });
            }
            _ => {
                let two = if i + 1 < bytes.len() { &bytes[i..i + 2] } else { &bytes[i..i + 1] };
                let sym2: Option<&'static str> = match two {
                    b"::" => Some("::"),
                    b"<=" => Some("<="),
                    b">=" => Some(">="),
                    b"<>" => Some("<>"),
                    b"!=" => Some("!="),
                    b"=>" => Some("=>"),
                    b"||" => Some("||"),
                    _ => None,
                };
                if let Some(s) = sym2 {
                    out.push(Token::Sym(s));
                    i += 2;
                    continue;
                }
                let sym1: Option<&'static str> = match b {
                    b'(' => Some("("),
                    b')' => Some(")"),
                    b',' => Some(","),
                    b'.' => Some("."),
                    b';' => Some(";"),
                    b':' => Some(":"),
                    b'[' => Some("["),
                    b']' => Some("]"),
                    b'+' => Some("+"),
                    b'-' => Some("-"),
                    b'*' => Some("*"),
                    b'/' => Some("/"),
                    b'%' => Some("%"),
                    b'=' => Some("="),
                    b'<' => Some("<"),
                    b'>' => Some(">"),
                    _ => None,
                };
                match sym1 {
                    Some(s) => {
                        out.push(Token::Sym(s));
                        i += 1;
                    }
                    None => {
                        return Err(SnowError::Lex(format!(
                            "unexpected character '{}' at byte {i}",
                            b as char
                        )))
                    }
                }
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_unquoted_idents_keeps_quoted() {
        let toks = tokenize(r#"select "Mixed" from tbl"#).unwrap();
        assert_eq!(toks[0], Token::Ident { text: "SELECT".into(), quoted: false });
        assert_eq!(toks[1], Token::Ident { text: "Mixed".into(), quoted: true });
        assert_eq!(toks[3], Token::Ident { text: "TBL".into(), quoted: false });
    }

    #[test]
    fn lexes_numbers() {
        let toks = tokenize("1 2.5 1e3 10.25e-2 9223372036854775807").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Float(1000.0));
        assert_eq!(toks[3], Token::Float(0.1025));
        assert_eq!(toks[4], Token::Int(i64::MAX));
    }

    #[test]
    fn distinguishes_colon_and_cast() {
        let toks = tokenize("a:b::int").unwrap();
        assert!(toks[1].is_sym(":"));
        assert!(toks[3].is_sym("::"));
    }

    #[test]
    fn string_escape_doubling() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("select -- hi\n 1 /* block */ + 2").unwrap();
        let syms = toks.iter().filter(|t| t.is_sym("+")).count();
        assert_eq!(syms, 1);
        assert_eq!(toks.len(), 5); // SELECT, 1, +, 2, EOF
    }

    #[test]
    fn arrow_and_comparison_operators() {
        let toks = tokenize("=> <= >= <> != = ||").unwrap();
        let expect = ["=>", "<=", ">=", "<>", "!=", "=", "||"];
        for (t, e) in toks.iter().zip(expect) {
            assert!(t.is_sym(e), "{t:?} vs {e}");
        }
    }

    #[test]
    fn quoted_identifiers_decode_utf8() {
        let toks = tokenize("\"caf\u{e9} \u{4e16}\u{754c}\"").unwrap();
        assert_eq!(
            toks[0],
            Token::Ident { text: "caf\u{e9} \u{4e16}\u{754c}".into(), quoted: true }
        );
    }

    #[test]
    fn rejects_unterminated_tokens() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("/* abc").is_err());
        assert!(tokenize("select #").is_err());
    }

    #[test]
    fn malformed_input_is_a_typed_lex_error_never_a_panic() {
        // Every rejection must surface as SnowError::Lex so callers (REPL,
        // governed queries) can render it; none may unwind.
        for bad in [
            "'abc",                 // unterminated string
            "'it''",                // escape doubling then EOF inside string
            "\"abc",                // unterminated quoted identifier
            "/* abc",               // unterminated block comment
            "/* abc *",             // block comment ending mid-terminator
            "select #",             // unexpected symbol
            "select \u{7}",         // control byte
            "select \u{1F600}",     // non-ASCII outside quotes
        ] {
            match tokenize(bad) {
                Err(SnowError::Lex(msg)) => assert!(!msg.is_empty(), "{bad}"),
                other => panic!("expected Lex error for {bad:?}, got {other:?}"),
            }
        }
        // Numeric edge cases lex without panicking: overflow falls back to
        // float, huge exponents saturate to infinity.
        assert!(matches!(
            tokenize("9999999999999999999999999").unwrap()[0],
            Token::Float(_)
        ));
        assert!(matches!(tokenize("1e999999").unwrap()[0], Token::Float(_)));
    }

    #[test]
    fn number_then_dot_then_ident_is_not_a_float() {
        // `1.e` must not lex as a float followed by garbage.
        let toks = tokenize("x[1].y").unwrap();
        assert_eq!(toks[2], Token::Int(1));
        assert!(toks[4].is_sym("."));
    }
}
