//! SQL front-end: lexer, AST, and recursive-descent parser for the Snowflake-like
//! dialect the translation layer targets.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod statement;

pub use ast::*;
pub use parser::parse_query;
pub use statement::{parse_statement, Statement};
