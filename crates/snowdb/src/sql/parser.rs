//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize, Token};
use crate::error::{Result, SnowError};
use crate::variant::Variant;

/// Stack reserved for the parsing thread. Recursive descent costs up to
/// ~20 KiB of stack per nesting level in unoptimized builds, so the guard can
/// consume `MAX_DEPTH * 20 KiB` before tripping; the reservation leaves that
/// a generous margin so the typed [`MAX_DEPTH`] error always fires before the
/// stack runs out.
const PARSER_STACK_BYTES: usize = 16 << 20;

/// Parses one SQL query (an optional trailing `;` is allowed).
///
/// Parsing runs on a dedicated thread with [`PARSER_STACK_BYTES`] of stack:
/// callers (REPL, worker pools, tests) have unknown — often 2 MiB — stacks,
/// and hostile nesting must surface as a typed [`SnowError::Parse`], never a
/// stack-overflow abort. The per-query spawn is microseconds against
/// millisecond-scale execution.
pub fn parse_query(sql: &str) -> Result<Query> {
    std::thread::scope(|s| {
        let handle = std::thread::Builder::new()
            .name("snowdb-parser".into())
            .stack_size(PARSER_STACK_BYTES)
            .spawn_scoped(s, || parse_query_on_stack(sql))
            .expect("failed to spawn parser thread");
        match handle.join() {
            Ok(r) => r,
            // A parser bug that panics keeps panicking on the caller's thread
            // with its original payload.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

fn parse_query_on_stack(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let q = p.query()?;
    if p.peek().is_sym(";") {
        p.pos += 1;
    }
    p.expect_eof()?;
    Ok(q)
}

/// Keywords that terminate an implicit (AS-less) alias position.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "ON", "JOIN",
    "LEFT", "RIGHT", "INNER", "OUTER", "CROSS", "LATERAL", "AND", "OR", "NOT", "AS", "BY",
    "CASE", "WHEN", "THEN", "ELSE", "END", "IS", "IN", "BETWEEN", "NULL", "TRUE", "FALSE",
    "DISTINCT", "EXCLUDE", "ALL", "ASC", "DESC", "NULLS", "FIRST", "LAST", "LIKE",
];

/// Maximum expression/subquery nesting depth. Parsing is recursive-descent,
/// so unbounded nesting (e.g. `((((...1...))))`) would otherwise overflow the
/// stack — an abort, not a catchable error. Generated queries (e.g. the
/// JSONiq translator's ADL output) legitimately nest past 64 levels, so the
/// bound is generous and [`PARSER_STACK_BYTES`] is sized to fit it.
const MAX_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(SnowError::Parse(format!(
                "query exceeds maximum nesting depth ({MAX_DEPTH})"
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SnowError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek().is_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SnowError::Parse(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        match self.peek() {
            Token::Eof => Ok(()),
            t => Err(SnowError::Parse(format!("unexpected trailing token {t:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident { text, .. } => Ok(text),
            t => Err(SnowError::Parse(format!("expected identifier, found {t:?}"))),
        }
    }

    /// Bare alias position: an identifier that is not a reserved keyword.
    fn maybe_alias(&mut self) -> Option<String> {
        match self.peek() {
            Token::Ident { text, quoted } => {
                if !quoted && RESERVED.iter().any(|k| text.eq_ignore_ascii_case(k)) {
                    None
                } else {
                    let t = text.clone();
                    self.pos += 1;
                    Some(t)
                }
            }
            _ => None,
        }
    }

    // ---- query structure -------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        // Derived tables re-enter `query` without passing through `expr`;
        // guard this cycle too so deeply nested subqueries stay a typed error.
        self.enter()?;
        let q = self.query_inner();
        self.leave();
        q
    }

    fn query_inner(&mut self) -> Result<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                let nulls_first = if self.eat_kw("NULLS") {
                    if self.eat_kw("FIRST") {
                        Some(true)
                    } else {
                        self.expect_kw("LAST")?;
                        Some(false)
                    }
                } else {
                    None
                };
                order_by.push(OrderItem { expr, desc, nulls_first });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                t => return Err(SnowError::Parse(format!("expected LIMIT count, found {t:?}"))),
            }
        } else {
            None
        };
        Ok(Query { body, order_by, limit })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_operand()?;
        while self.peek().is_kw("UNION") {
            self.pos += 1;
            self.expect_kw("ALL")?;
            let right = self.set_operand()?;
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn set_operand(&mut self) -> Result<SetExpr> {
        if self.peek().is_sym("(") {
            // `( query )` used as a set operand.
            let save = self.pos;
            self.pos += 1;
            if self.peek().is_kw("SELECT") || self.peek().is_sym("(") {
                let q = self.query()?;
                self.expect_sym(")")?;
                return Ok(SetExpr::Query(Box::new(q)));
            }
            self.pos = save;
        }
        Ok(SetExpr::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.parse_from_clause()?) } else { None };
        let selection = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, items, from, selection, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym("*") {
            let mut exclude = Vec::new();
            if self.eat_kw("EXCLUDE") {
                let parens = self.eat_sym("(");
                loop {
                    exclude.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                if parens {
                    self.expect_sym(")")?;
                }
            }
            return Ok(SelectItem::Wildcard { exclude });
        }
        // `alias.*`
        if let Token::Ident { text, .. } = self.peek() {
            if self.peek2().is_sym(".") && self.tokens.get(self.pos + 2).is_some_and(|t| t.is_sym("*"))
            {
                let q = text.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { self.maybe_alias() };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_clause(&mut self) -> Result<FromClause> {
        let base = self.table_factor()?;
        let mut items = Vec::new();
        loop {
            if self.eat_sym(",") {
                // Only lateral flatten is allowed after a comma (no implicit
                // cross joins in this dialect; the translation never emits them).
                items.push(self.lateral_flatten()?);
            } else if self.peek().is_kw("JOIN")
                || self.peek().is_kw("INNER")
                || self.peek().is_kw("LEFT")
                || self.peek().is_kw("CROSS")
            {
                items.push(self.join()?);
            } else if self.peek().is_kw("LATERAL") {
                items.push(self.lateral_flatten()?);
            } else {
                break;
            }
        }
        Ok(FromClause { base, items })
    }

    fn join(&mut self) -> Result<FromItem> {
        let kind = if self.eat_kw("LEFT") {
            self.eat_kw("OUTER");
            JoinKind::LeftOuter
        } else if self.eat_kw("CROSS") {
            JoinKind::Cross
        } else {
            self.eat_kw("INNER");
            JoinKind::Inner
        };
        self.expect_kw("JOIN")?;
        let factor = self.table_factor()?;
        let on = if self.eat_kw("ON") { Some(self.expr()?) } else { None };
        if kind != JoinKind::Cross && on.is_none() {
            return Err(SnowError::Parse("JOIN requires an ON condition".into()));
        }
        Ok(FromItem::Join { kind, factor, on })
    }

    fn lateral_flatten(&mut self) -> Result<FromItem> {
        self.expect_kw("LATERAL")?;
        self.expect_kw("FLATTEN")?;
        self.expect_sym("(")?;
        self.expect_kw("INPUT")?;
        self.expect_sym("=>")?;
        let input = self.expr()?;
        let mut outer = false;
        while self.eat_sym(",") {
            if self.eat_kw("OUTER") {
                self.expect_sym("=>")?;
                if self.eat_kw("TRUE") {
                    outer = true;
                } else {
                    self.expect_kw("FALSE")?;
                }
            } else {
                return Err(SnowError::Parse(format!(
                    "unsupported FLATTEN argument {:?}",
                    self.peek()
                )));
            }
        }
        self.expect_sym(")")?;
        self.eat_kw("AS");
        let alias = self.ident()?;
        Ok(FromItem::Flatten { input, outer, alias })
    }

    fn table_factor(&mut self) -> Result<TableFactor> {
        if self.eat_sym("(") {
            if self.peek().is_kw("SELECT") || self.peek().is_sym("(") {
                let q = self.query()?;
                self.expect_sym(")")?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { self.maybe_alias() };
                return Ok(TableFactor::Derived { query: Box::new(q), alias });
            }
            // Snowpark emits `FROM (tablename)`.
            let name = self.ident()?;
            self.expect_sym(")")?;
            let travel = self.maybe_travel()?;
            let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { self.maybe_alias() };
            return Ok(TableFactor::Table { name, alias, travel });
        }
        let name = self.ident()?;
        let travel = self.maybe_travel()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { self.maybe_alias() };
        Ok(TableFactor::Table { name, alias, travel })
    }

    /// `AT(VERSION => n)` / `BEFORE(VERSION => n)` after a base table name.
    /// `AT` and `BEFORE` are not reserved words, so the clause only engages
    /// when immediately followed by `(` — `FROM t at` still parses as an
    /// alias.
    pub(super) fn maybe_travel(&mut self) -> Result<Option<Travel>> {
        let before = if self.peek().is_kw("AT") && self.peek2().is_sym("(") {
            false
        } else if self.peek().is_kw("BEFORE") && self.peek2().is_sym("(") {
            true
        } else {
            return Ok(None);
        };
        self.pos += 1;
        self.expect_sym("(")?;
        self.expect_kw("VERSION")?;
        self.expect_sym("=>")?;
        let version = match self.next() {
            Token::Int(n) if n >= 0 => n as u64,
            t => return Err(SnowError::Parse(format!("expected version number, found {t:?}"))),
        };
        self.expect_sym(")")?;
        Ok(Some(Travel { before, version }))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        // Every recursion cycle through the expression grammar passes through
        // `expr` (parenthesised re-entry), `not_expr` (NOT chains) or
        // `unary_expr` (+/- chains); bounding those bounds the stack.
        self.enter()?;
        let e = self.or_expr();
        self.leave();
        e
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            self.enter()?;
            let inner = self.not_expr();
            self.leave();
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.peek().is_kw("IS") {
            self.pos += 1;
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.peek().is_kw("NOT")
            && (self.peek2().is_kw("IN")
                || self.peek2().is_kw("BETWEEN")
                || self.peek2().is_kw("LIKE"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.add_expr()?;
            self.expect_kw("AND")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        let op = match self.peek() {
            Token::Sym("=") => Some(BinOp::Eq),
            Token::Sym("<>") | Token::Sym("!=") => Some(BinOp::NotEq),
            Token::Sym("<") => Some(BinOp::Lt),
            Token::Sym("<=") => Some(BinOp::LtEq),
            Token::Sym(">") => Some(BinOp::Gt),
            Token::Sym(">=") => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Sym("+") => BinOp::Add,
                Token::Sym("-") => BinOp::Sub,
                Token::Sym("||") => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Sym("*") => BinOp::Mul,
                Token::Sym("/") => BinOp::Div,
                Token::Sym("%") => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            self.enter()?;
            let inner = self.unary_expr();
            self.leave();
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner?) });
        }
        if self.eat_sym("+") {
            self.enter()?;
            let inner = self.unary_expr();
            self.leave();
            return Ok(Expr::Unary { op: UnaryOp::Plus, expr: Box::new(inner?) });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_sym("::") {
                let ty = self.type_name()?;
                e = Expr::Cast { expr: Box::new(e), ty };
            } else if self.peek().is_sym(":") {
                self.pos += 1;
                let mut steps = vec![PathStep::Field(self.path_field()?)];
                self.path_steps(&mut steps)?;
                e = Expr::Path { base: Box::new(e), steps };
            } else if self.peek().is_sym("[") {
                let mut steps = Vec::new();
                self.path_steps(&mut steps)?;
                e = Expr::Path { base: Box::new(e), steps };
            } else {
                break;
            }
        }
        Ok(e)
    }

    /// Parses a chain of `.field` / `[idx]` steps (after an initial `:` root or
    /// directly from a bracket).
    fn path_steps(&mut self, steps: &mut Vec<PathStep>) -> Result<()> {
        loop {
            if self.eat_sym(".") {
                steps.push(PathStep::Field(self.path_field()?));
            } else if self.eat_sym("[") {
                match self.peek() {
                    Token::Int(i) => {
                        let i = *i;
                        self.pos += 1;
                        steps.push(PathStep::Index(i));
                    }
                    _ => {
                        let e = self.expr()?;
                        steps.push(PathStep::IndexExpr(Box::new(e)));
                    }
                }
                self.expect_sym("]")?;
            } else {
                return Ok(());
            }
        }
    }

    /// A path field keeps the case of quoted identifiers; unquoted fields keep
    /// their *original* case in Snowflake, but our lexer folds to upper — the
    /// data generators therefore use upper-case field names or quoted paths.
    fn path_field(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident { text, .. } => Ok(text),
            Token::Str(s) => Ok(s),
            t => Err(SnowError::Parse(format!("expected path field, found {t:?}"))),
        }
    }

    fn type_name(&mut self) -> Result<String> {
        let name = self.ident()?;
        // `NUMBER(38, 0)`-style precision arguments are accepted and ignored.
        if self.eat_sym("(") {
            loop {
                match self.next() {
                    Token::Sym(")") => break,
                    Token::Eof => return Err(SnowError::Parse("unterminated type".into())),
                    _ => {}
                }
            }
        }
        Ok(name)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::Int(i)))
            }
            Token::Float(f) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::Float(f)))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Variant::str(s)))
            }
            Token::Sym("(") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Token::Ident { text, quoted } => {
                if !quoted {
                    match text.as_str() {
                        "TRUE" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Variant::Bool(true)));
                        }
                        "FALSE" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Variant::Bool(false)));
                        }
                        "NULL" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Variant::Null));
                        }
                        "CASE" => return self.case_expr(),
                        "CAST" => {
                            self.pos += 1;
                            self.expect_sym("(")?;
                            let e = self.expr()?;
                            self.expect_kw("AS")?;
                            let ty = self.type_name()?;
                            self.expect_sym(")")?;
                            return Ok(Expr::Cast { expr: Box::new(e), ty });
                        }
                        _ => {}
                    }
                }
                // Function call?
                if self.peek2().is_sym("(") && !quoted {
                    let name = text;
                    self.pos += 2;
                    let mut args = Vec::new();
                    let mut distinct = false;
                    let mut star = false;
                    if self.eat_sym("*") {
                        star = true;
                    } else if !self.peek().is_sym(")") {
                        distinct = self.eat_kw("DISTINCT");
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(Expr::Func { name, args, distinct, star });
                }
                // Possibly qualified identifier: a or a.b .
                self.pos += 1;
                let mut parts = vec![text];
                if self.peek().is_sym(".") {
                    if let Token::Ident { text: t2, .. } = self.peek2() {
                        let t2 = t2.clone();
                        self.pos += 2;
                        parts.push(t2);
                    }
                }
                Ok(Expr::Ident(parts))
            }
            t => Err(SnowError::Parse(format!("unexpected token {t:?} in expression"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("CASE")?;
        let operand = if self.peek().is_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return Err(SnowError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr =
            if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(q: &Query) -> &Select {
        match &q.body {
            SetExpr::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // Parenthesised expressions re-enter `expr` recursively.
        let parens = format!("SELECT {}1{}", "(".repeat(100_000), ")".repeat(100_000));
        assert!(matches!(parse_query(&parens), Err(SnowError::Parse(_))));
        // NOT chains recurse through `not_expr`.
        let nots = format!("SELECT {} TRUE", "NOT ".repeat(100_000));
        assert!(matches!(parse_query(&nots), Err(SnowError::Parse(_))));
        // Unary minus chains recurse through `unary_expr`.
        let negs = format!("SELECT {}1", "-".repeat(100_000));
        assert!(matches!(parse_query(&negs), Err(SnowError::Parse(_))));
        // Nested derived tables re-enter `query`.
        let subs = format!(
            "SELECT * FROM {}t{}",
            "(SELECT * FROM ".repeat(100_000),
            ")".repeat(100_000)
        );
        assert!(matches!(parse_query(&subs), Err(SnowError::Parse(_))));
        // Nesting inside the bound stays accepted — including depths that
        // would overflow a default 2 MiB stack without the dedicated
        // big-stack parser thread.
        let ok = format!("SELECT {}1{}", "(".repeat(200), ")".repeat(200));
        assert!(parse_query(&ok).is_ok());
        let ok_nots = format!("SELECT {} TRUE", "NOT ".repeat(200));
        assert!(parse_query(&ok_nots).is_ok());
    }

    #[test]
    fn parses_minimal_select() {
        let q = parse_query("SELECT 1").unwrap();
        let s = sel(&q);
        assert_eq!(s.items.len(), 1);
        assert!(s.from.is_none());
    }

    #[test]
    fn parses_paper_fig2_query() {
        let q = parse_query(
            r#"SELECT count(DISTINCT "O_CLERK") FROM (
                 SELECT * FROM (SELECT * FROM (orders))
                 WHERE (("O_TOTALPRICE" >= 90000 :: int)
                   AND ("O_TOTALPRICE" <= 120000 :: int)))"#,
        )
        .unwrap();
        let s = sel(&q);
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Func { name, distinct, .. }, .. } => {
                assert_eq!(name, "COUNT");
                assert!(distinct);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_lateral_flatten() {
        let q = parse_query(
            "SELECT f.VALUE:pt FROM events, LATERAL FLATTEN(INPUT => JET, OUTER => TRUE) f",
        )
        .unwrap();
        let s = sel(&q);
        let from = s.from.as_ref().unwrap();
        match &from.items[0] {
            FromItem::Flatten { outer, alias, .. } => {
                assert!(*outer);
                assert_eq!(alias, "F");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_variant_paths() {
        let q = parse_query("SELECT v:a.b[0].c FROM t").unwrap();
        let s = sel(&q);
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Path { steps, .. }, .. } => {
                assert_eq!(steps.len(), 4);
                assert_eq!(steps[0], PathStep::Field("A".into()));
                assert_eq!(steps[1], PathStep::Field("B".into()));
                assert_eq!(steps[2], PathStep::Index(0));
                assert_eq!(steps[3], PathStep::Field("C".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id INNER JOIN c ON c.x = a.x",
        )
        .unwrap();
        let s = sel(&q);
        let items = &s.from.as_ref().unwrap().items;
        assert!(matches!(items[0], FromItem::Join { kind: JoinKind::LeftOuter, .. }));
        assert!(matches!(items[1], FromItem::Join { kind: JoinKind::Inner, .. }));
    }

    #[test]
    fn parses_group_order_limit() {
        let q = parse_query(
            "SELECT x, count(*) c FROM t WHERE x > 0 GROUP BY x HAVING count(*) > 1 \
             ORDER BY c DESC NULLS LAST LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.order_by[0].nulls_first, Some(false));
        let s = sel(&q);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_union_all() {
        let q = parse_query("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap();
        match &q.body {
            SetExpr::UnionAll(l, _) => assert!(matches!(**l, SetExpr::UnionAll(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_case_between_in() {
        let q = parse_query(
            "SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'x' WHEN a IN (3,4) THEN 'y' ELSE 'z' END FROM t",
        )
        .unwrap();
        let s = sel(&q);
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Case { branches, else_expr, .. }, .. } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_wildcard_exclude() {
        let q = parse_query("SELECT * EXCLUDE (rowid, keep) FROM t").unwrap();
        let s = sel(&q);
        match &s.items[0] {
            SelectItem::Wildcard { exclude } => {
                assert_eq!(exclude, &["ROWID".to_string(), "KEEP".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT 1 + 2 * 3 < 10 AND NOT FALSE").unwrap();
        let s = sel(&q);
        // (((1 + (2*3)) < 10) AND (NOT FALSE))
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::And, .. }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "SELECT",
            "SELECT 1 FROM",
            "SELECT 1 WHERE",
            "SELECT * FROM t JOIN u",
            "SELECT CASE END FROM t",
            "SELECT 1 UNION SELECT 2",
        ] {
            assert!(parse_query(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn alias_forms() {
        let q = parse_query("SELECT a AS x, b y FROM t1 AS u").unwrap();
        let s = sel(&q);
        match (&s.items[0], &s.items[1]) {
            (
                SelectItem::Expr { alias: Some(x), .. },
                SelectItem::Expr { alias: Some(y), .. },
            ) => {
                assert_eq!(x, "X");
                assert_eq!(y, "Y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
