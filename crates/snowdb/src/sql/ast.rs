//! SQL abstract syntax tree.

use crate::variant::Variant;

/// A full query: set expression plus optional `ORDER BY` / `LIMIT`.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// Body of a query: a single `SELECT` or a `UNION ALL` chain.
#[derive(Clone, Debug, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
    /// A parenthesized sub-query used as a set operand.
    Query(Box<Query>),
}

/// One `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` block.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// One item of the select list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` with optional Snowflake-style `EXCLUDE (a, b)`.
    Wildcard { exclude: Vec<String> },
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// `FROM` clause: a base relation plus a chain of joins and lateral flattens,
/// applied in textual order.
#[derive(Clone, Debug, PartialEq)]
pub struct FromClause {
    pub base: TableFactor,
    pub items: Vec<FromItem>,
}

/// A join or lateral flatten following the base table factor.
#[derive(Clone, Debug, PartialEq)]
pub enum FromItem {
    Join { kind: JoinKind, factor: TableFactor, on: Option<Expr> },
    /// `, LATERAL FLATTEN(INPUT => expr [, OUTER => TRUE]) [AS] alias`
    Flatten { input: Expr, outer: bool, alias: String },
}

/// A time-travel clause on a base table: `AT(VERSION => n)` pins the table
/// as of committed catalog version `n`; `BEFORE(VERSION => n)` the version
/// immediately preceding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Travel {
    pub before: bool,
    pub version: u64,
}

/// Base relation in `FROM`.
#[derive(Clone, Debug, PartialEq)]
pub enum TableFactor {
    Table { name: String, alias: Option<String>, travel: Option<Travel> },
    Derived { query: Box<Query>, alias: Option<String> },
}

/// Join kinds supported by the dialect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    Cross,
}

/// A sort key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
    /// `Some(true)` = NULLS FIRST, `Some(false)` = NULLS LAST, `None` = default.
    pub nulls_first: Option<bool>,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    /// String concatenation `||`.
    Concat,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Plus,
}

/// One step of a variant path (`:a.b[0]`).
#[derive(Clone, Debug, PartialEq)]
pub enum PathStep {
    Field(String),
    Index(i64),
    /// Index given by an arbitrary expression (`x[i.value]`).
    IndexExpr(Box<Expr>),
}

/// SQL scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(Variant),
    /// Possibly-qualified column reference: `x` or `t.x`.
    Ident(Vec<String>),
    /// Variant path access rooted at an expression: `col:f.g[0]` or `expr[i]`.
    Path { base: Box<Expr>, steps: Vec<PathStep> },
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinOp, right: Box<Expr> },
    Not(Box<Expr>),
    IsNull { expr: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Function call; `distinct` covers `COUNT(DISTINCT x)`, `star` covers `COUNT(*)`.
    Func { name: String, args: Vec<Expr>, distinct: bool, star: bool },
    Cast { expr: Box<Expr>, ty: String },
}

impl Expr {
    /// Integer literal helper.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Variant::Int(i))
    }

    /// Column reference helper.
    pub fn col(name: &str) -> Expr {
        Expr::Ident(vec![name.to_string()])
    }
}
