//! Statement-level SQL: queries plus the small DDL/DML surface the REPL and
//! examples use (`CREATE TABLE`, `INSERT INTO ... VALUES`, `UPDATE`,
//! `DELETE`, `DROP TABLE`, `EXPLAIN`, and the transaction verbs
//! `BEGIN`/`COMMIT`/`ROLLBACK`).

use super::ast::{BinOp, Expr, Query, Travel};
use super::lexer::{tokenize, Token};
use super::parser::parse_query;
use crate::error::{Result, SnowError};
use crate::storage::ColumnType;

/// A parsed SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    Query(Query),
    Explain(Query),
    /// `EXPLAIN ANALYZE <query>`: run the query and render the plan annotated
    /// with measured per-operator metrics.
    ExplainAnalyze(Query),
    /// `VERIFY <query>`: run the query across the execution-configuration
    /// lattice and report agreement (or a divergence repro). Carries the query
    /// text because the oracle re-plans it per configuration.
    Verify(String),
    CreateTable { name: String, columns: Vec<(String, ColumnType)> },
    /// `CREATE TABLE name CLONE source [AT(VERSION => n)]`: a zero-copy
    /// metadata clone — the new table shares the source's immutable
    /// partitions (optionally as of a retained historical version).
    CloneTable { name: String, source: String, travel: Option<Travel> },
    /// `UNDROP TABLE name`: restores the most recent retained version of a
    /// dropped table.
    Undrop { name: String },
    Insert { table: String, rows: Vec<Vec<Expr>> },
    /// `UPDATE t SET col = expr [, ...] [WHERE pred]`: copy-on-write
    /// partition rewrite; SET expressions see the *old* row.
    Update { table: String, sets: Vec<(String, Expr)>, predicate: Option<Expr> },
    /// `DELETE FROM t [WHERE pred]`: rows are deleted iff the predicate is
    /// `TRUE` (`FALSE`-or-`NULL` rows survive).
    Delete { table: String, predicate: Option<Expr> },
    DropTable { name: String, if_exists: bool },
    /// `BEGIN [TRANSACTION|WORK]` / `START TRANSACTION`.
    Begin,
    /// `COMMIT [TRANSACTION|WORK]`.
    Commit,
    /// `ROLLBACK [TRANSACTION|WORK]`.
    Rollback,
    /// `SET <parameter> = <value>`: session parameter assignment (Snowflake
    /// convention: `0` clears the limit).
    Set { name: String, value: u64 },
    /// `UNSET <parameter>`: clears a session parameter.
    Unset { name: String },
}

/// Parses one statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let toks = tokenize(sql)?;
    match toks.first() {
        Some(t) if t.is_kw("EXPLAIN") => {
            let rest = sql.trim_start();
            let rest = &rest[rest.len().min(7)..]; // strip "EXPLAIN"
            if toks.get(1).is_some_and(|t| t.is_kw("ANALYZE")) {
                let rest = rest.trim_start();
                let rest = &rest[rest.len().min(7)..]; // strip "ANALYZE"
                return Ok(Statement::ExplainAnalyze(parse_query(rest)?));
            }
            Ok(Statement::Explain(parse_query(rest)?))
        }
        Some(t) if t.is_kw("VERIFY") => {
            let rest = sql.trim_start();
            let rest = &rest[rest.len().min(6)..]; // strip "VERIFY"
            // Parse eagerly so syntax errors surface here, not per-config.
            parse_query(rest)?;
            Ok(Statement::Verify(rest.trim().to_string()))
        }
        Some(t) if t.is_kw("CREATE") => parse_create(&toks),
        Some(t) if t.is_kw("INSERT") => parse_insert(sql, &toks),
        Some(t) if t.is_kw("UPDATE") => parse_update(sql, &toks),
        Some(t) if t.is_kw("DELETE") => parse_delete(sql, &toks),
        Some(t) if t.is_kw("DROP") => parse_drop(&toks),
        Some(t) if t.is_kw("UNDROP") => parse_undrop(&toks),
        Some(t) if t.is_kw("SET") => parse_set(&toks),
        Some(t) if t.is_kw("UNSET") => parse_unset(&toks),
        Some(t) if t.is_kw("BEGIN") => parse_txn_verb(&toks, 1, Statement::Begin),
        Some(t) if t.is_kw("START") => {
            if !toks.get(1).is_some_and(|t| t.is_kw("TRANSACTION")) {
                return Err(SnowError::Parse("expected START TRANSACTION".into()));
            }
            parse_txn_verb(&toks, 2, Statement::Begin)
        }
        Some(t) if t.is_kw("COMMIT") => parse_txn_verb(&toks, 1, Statement::Commit),
        Some(t) if t.is_kw("ROLLBACK") => parse_txn_verb(&toks, 1, Statement::Rollback),
        _ => Ok(Statement::Query(parse_query(sql)?)),
    }
}

/// Finishes a transaction verb: an optional `TRANSACTION`/`WORK` noise word,
/// then end of statement.
fn parse_txn_verb(toks: &[Token], mut i: usize, stmt: Statement) -> Result<Statement> {
    if i == 1 && toks.get(i).is_some_and(|t| t.is_kw("TRANSACTION") || t.is_kw("WORK")) {
        i += 1;
    }
    if !matches!(toks.get(i), Some(Token::Eof) | None) {
        return Err(SnowError::Parse(format!(
            "unexpected trailing tokens after {stmt:?}"
        )));
    }
    Ok(stmt)
}

fn parse_set(toks: &[Token]) -> Result<Statement> {
    // SET name = value
    let name = ident_at(toks, 1)?;
    if !toks.get(2).is_some_and(|t| t.is_sym("=")) {
        return Err(SnowError::Parse("expected '=' after SET parameter name".into()));
    }
    let value = match toks.get(3) {
        Some(Token::Int(v)) if *v >= 0 => *v as u64,
        other => {
            return Err(SnowError::Parse(format!(
                "expected non-negative integer value for SET, found {other:?}"
            )))
        }
    };
    if !matches!(toks.get(4), Some(Token::Eof) | None) {
        return Err(SnowError::Parse("unexpected trailing tokens after SET".into()));
    }
    Ok(Statement::Set { name, value })
}

fn parse_unset(toks: &[Token]) -> Result<Statement> {
    // UNSET name
    let name = ident_at(toks, 1)?;
    if !matches!(toks.get(2), Some(Token::Eof) | None) {
        return Err(SnowError::Parse("unexpected trailing tokens after UNSET".into()));
    }
    Ok(Statement::Unset { name })
}

fn ident_at(toks: &[Token], i: usize) -> Result<String> {
    match toks.get(i) {
        Some(Token::Ident { text, .. }) => Ok(text.clone()),
        other => Err(SnowError::Parse(format!("expected identifier, found {other:?}"))),
    }
}

fn parse_create(toks: &[Token]) -> Result<Statement> {
    // CREATE TABLE name ( col type [, ...] )
    // CREATE TABLE name CLONE source [AT(VERSION => n) | BEFORE(VERSION => n)]
    let mut i = 1;
    if !toks.get(i).is_some_and(|t| t.is_kw("TABLE")) {
        return Err(SnowError::Parse("expected CREATE TABLE".into()));
    }
    i += 1;
    let name = ident_at(toks, i)?;
    i += 1;
    if toks.get(i).is_some_and(|t| t.is_kw("CLONE")) {
        let source = ident_at(toks, i + 1)?;
        i += 2;
        let travel = parse_travel_tokens(toks, &mut i)?;
        if !matches!(toks.get(i), Some(Token::Eof) | None) {
            return Err(SnowError::Parse("unexpected trailing tokens after CLONE".into()));
        }
        return Ok(Statement::CloneTable { name, source, travel });
    }
    if !toks.get(i).is_some_and(|t| t.is_sym("(")) {
        return Err(SnowError::Parse("expected '(' after table name".into()));
    }
    i += 1;
    let mut columns = Vec::new();
    loop {
        let col = ident_at(toks, i)?;
        i += 1;
        let ty_name = ident_at(toks, i)?;
        i += 1;
        // Skip optional precision arguments like NUMBER(38, 0).
        if toks.get(i).is_some_and(|t| t.is_sym("(")) {
            while !toks.get(i).is_some_and(|t| t.is_sym(")")) {
                i += 1;
                if i > toks.len() {
                    return Err(SnowError::Parse("unterminated type arguments".into()));
                }
            }
            i += 1;
        }
        let ty = ColumnType::parse(&ty_name)
            .ok_or_else(|| SnowError::Parse(format!("unknown column type '{ty_name}'")))?;
        columns.push((col, ty));
        if toks.get(i).is_some_and(|t| t.is_sym(",")) {
            i += 1;
            continue;
        }
        break;
    }
    if !toks.get(i).is_some_and(|t| t.is_sym(")")) {
        return Err(SnowError::Parse("expected ')' to close column list".into()));
    }
    if columns.is_empty() {
        return Err(SnowError::Parse("CREATE TABLE requires at least one column".into()));
    }
    Ok(Statement::CreateTable { name, columns })
}

fn parse_insert(sql: &str, toks: &[Token]) -> Result<Statement> {
    // INSERT INTO name VALUES (expr, ...) [, (expr, ...)]*
    if !(toks.get(1).is_some_and(|t| t.is_kw("INTO"))) {
        return Err(SnowError::Parse("expected INSERT INTO".into()));
    }
    let table = ident_at(toks, 2)?;
    if !toks.get(3).is_some_and(|t| t.is_kw("VALUES")) {
        return Err(SnowError::Parse("expected VALUES".into()));
    }
    // Reuse the expression parser by rewriting each tuple into a SELECT list.
    let values_pos = find_keyword(sql, "VALUES").ok_or_else(|| {
        SnowError::Parse("expected VALUES keyword in INSERT statement".into())
    })?;
    let tail = &sql[values_pos + "VALUES".len()..];
    let mut rows = Vec::new();
    for tuple in split_tuples(tail)? {
        let q = parse_query(&format!("SELECT {tuple}"))?;
        match q.body {
            super::ast::SetExpr::Select(sel) => {
                let row: Vec<Expr> = sel
                    .items
                    .into_iter()
                    .map(|it| match it {
                        super::ast::SelectItem::Expr { expr, .. } => Ok(expr),
                        other => Err(SnowError::Parse(format!(
                            "invalid VALUES item {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                rows.push(row);
            }
            _ => return Err(SnowError::Parse("invalid VALUES list".into())),
        }
    }
    if rows.is_empty() {
        return Err(SnowError::Parse("VALUES requires at least one tuple".into()));
    }
    Ok(Statement::Insert { table, rows })
}

/// Locates the byte offset of keyword `kw` in a statement: case-insensitive,
/// on a word boundary, and outside string literals and quoted identifiers.
/// A naive substring search mis-splits statements like
/// `INSERT INTO values_log VALUES (1)` at the table name, and the old
/// `.expect` on its result turned that planner-adjacent edge into a process
/// abort instead of a parse error. `UPDATE`/`DELETE` use the same scan to
/// split at `SET`/`WHERE`.
fn find_keyword(sql: &str, kw: &str) -> Option<usize> {
    let bytes = sql.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' | b'"' => {
                let quote = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                i += 1; // past the closing quote (or end of input)
            }
            b if is_word(b) => {
                let start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                if sql[start..i].eq_ignore_ascii_case(kw) {
                    return Some(start);
                }
            }
            _ => i += 1,
        }
    }
    None
}

/// Parses a comma-separated expression list by rewriting it into a `SELECT`
/// projection (the same trick `INSERT ... VALUES` uses), so `UPDATE`/`DELETE`
/// expressions get the full expression grammar for free.
fn parse_expr_list(text: &str) -> Result<Vec<Expr>> {
    if text.trim().is_empty() {
        return Err(SnowError::Parse("expected an expression".into()));
    }
    let q = parse_query(&format!("SELECT {text}"))?;
    match q.body {
        super::ast::SetExpr::Select(sel) => sel
            .items
            .into_iter()
            .map(|it| match it {
                super::ast::SelectItem::Expr { expr, .. } => Ok(expr),
                other => Err(SnowError::Parse(format!("invalid expression {other:?}"))),
            })
            .collect(),
        _ => Err(SnowError::Parse("invalid expression list".into())),
    }
}

fn parse_single_expr(text: &str) -> Result<Expr> {
    let mut items = parse_expr_list(text)?;
    if items.len() != 1 {
        return Err(SnowError::Parse(format!(
            "expected a single expression, found {}",
            items.len()
        )));
    }
    Ok(items.remove(0))
}

fn parse_delete(sql: &str, toks: &[Token]) -> Result<Statement> {
    // DELETE FROM name [WHERE predicate]
    if !toks.get(1).is_some_and(|t| t.is_kw("FROM")) {
        return Err(SnowError::Parse("expected DELETE FROM".into()));
    }
    let table = ident_at(toks, 2)?;
    let predicate = match toks.get(3) {
        Some(Token::Eof) | None => None,
        Some(t) if t.is_kw("WHERE") => {
            let pos = find_keyword(sql, "WHERE")
                .ok_or_else(|| SnowError::Parse("expected WHERE".into()))?;
            Some(parse_single_expr(&sql[pos + "WHERE".len()..])?)
        }
        other => {
            return Err(SnowError::Parse(format!(
                "unexpected token after DELETE FROM {table}: {other:?}"
            )))
        }
    };
    Ok(Statement::Delete { table, predicate })
}

fn parse_update(sql: &str, toks: &[Token]) -> Result<Statement> {
    // UPDATE name SET col = expr [, ...] [WHERE predicate]
    let table = ident_at(toks, 1)?;
    if !toks.get(2).is_some_and(|t| t.is_kw("SET")) {
        return Err(SnowError::Parse("expected SET after UPDATE table name".into()));
    }
    let set_pos = find_keyword(sql, "SET")
        .ok_or_else(|| SnowError::Parse("expected SET in UPDATE".into()))?;
    let where_pos = find_keyword(sql, "WHERE");
    let assignments = match where_pos {
        Some(w) => &sql[set_pos + "SET".len()..w],
        None => &sql[set_pos + "SET".len()..],
    };
    let mut sets = Vec::new();
    for item in parse_expr_list(assignments)? {
        // Each assignment parses as an equality expression whose left side
        // must be a plain (optionally qualified) column reference.
        match item {
            Expr::Binary { left, op: BinOp::Eq, right } => match *left {
                Expr::Ident(parts) if !parts.is_empty() => {
                    let col = parts.last().expect("non-empty ident path").clone();
                    sets.push((col, *right));
                }
                other => {
                    return Err(SnowError::Parse(format!(
                        "SET target must be a column name, found {other:?}"
                    )))
                }
            },
            other => {
                return Err(SnowError::Parse(format!(
                    "expected 'column = expression' in SET, found {other:?}"
                )))
            }
        }
    }
    if sets.is_empty() {
        return Err(SnowError::Parse("UPDATE requires at least one assignment".into()));
    }
    let predicate = where_pos
        .map(|w| parse_single_expr(&sql[w + "WHERE".len()..]))
        .transpose()?;
    Ok(Statement::Update { table, sets, predicate })
}

/// Splits `(a, b), (c, d)` into top-level tuples, respecting nesting and
/// string literals.
fn split_tuples(text: &str) -> Result<Vec<String>> {
    let mut tuples = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                if depth > 0 {
                    current.push(c);
                }
            }
            '(' if !in_str => {
                if depth > 0 {
                    current.push(c);
                }
                depth += 1;
            }
            ')' if !in_str => {
                if depth == 0 {
                    return Err(SnowError::Parse("unbalanced ')' in VALUES".into()));
                }
                depth -= 1;
                if depth == 0 {
                    tuples.push(std::mem::take(&mut current));
                } else {
                    current.push(c);
                }
            }
            _ => {
                if depth > 0 {
                    current.push(c);
                }
            }
        }
    }
    if depth != 0 || in_str {
        return Err(SnowError::Parse("unterminated VALUES tuple".into()));
    }
    Ok(tuples)
}

/// Token-level `AT(VERSION => n)` / `BEFORE(VERSION => n)` for the DDL
/// surface (`CREATE ... CLONE`); the query parser has its own copy.
fn parse_travel_tokens(toks: &[Token], i: &mut usize) -> Result<Option<Travel>> {
    let before = match toks.get(*i) {
        Some(t) if t.is_kw("AT") => false,
        Some(t) if t.is_kw("BEFORE") => true,
        _ => return Ok(None),
    };
    if !toks.get(*i + 1).is_some_and(|t| t.is_sym("(")) {
        return Ok(None);
    }
    *i += 2;
    if !toks.get(*i).is_some_and(|t| t.is_kw("VERSION")) {
        return Err(SnowError::Parse("expected VERSION in AT/BEFORE clause".into()));
    }
    *i += 1;
    if !toks.get(*i).is_some_and(|t| t.is_sym("=>")) {
        return Err(SnowError::Parse("expected '=>' after VERSION".into()));
    }
    *i += 1;
    let version = match toks.get(*i) {
        Some(Token::Int(n)) if *n >= 0 => *n as u64,
        other => {
            return Err(SnowError::Parse(format!(
                "expected version number, found {other:?}"
            )))
        }
    };
    *i += 1;
    if !toks.get(*i).is_some_and(|t| t.is_sym(")")) {
        return Err(SnowError::Parse("expected ')' to close AT/BEFORE clause".into()));
    }
    *i += 1;
    Ok(Some(Travel { before, version }))
}

fn parse_undrop(toks: &[Token]) -> Result<Statement> {
    // UNDROP TABLE name
    if !toks.get(1).is_some_and(|t| t.is_kw("TABLE")) {
        return Err(SnowError::Parse("expected UNDROP TABLE".into()));
    }
    let name = ident_at(toks, 2)?;
    if !matches!(toks.get(3), Some(Token::Eof) | None) {
        return Err(SnowError::Parse("unexpected trailing tokens after UNDROP".into()));
    }
    Ok(Statement::Undrop { name })
}

fn parse_drop(toks: &[Token]) -> Result<Statement> {
    // DROP TABLE [IF EXISTS] name
    if !toks.get(1).is_some_and(|t| t.is_kw("TABLE")) {
        return Err(SnowError::Parse("expected DROP TABLE".into()));
    }
    let mut i = 2;
    let if_exists = toks.get(i).is_some_and(|t| t.is_kw("IF"))
        && toks.get(i + 1).is_some_and(|t| t.is_kw("EXISTS"));
    if if_exists {
        i += 2;
    }
    let name = ident_at(toks, i)?;
    Ok(Statement::DropTable { name, if_exists })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse_statement("CREATE TABLE t (a INT, b DOUBLE, c VARIANT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "T");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("A".to_string(), ColumnType::Int));
                assert_eq!(columns[2].1, ColumnType::Variant);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_values() {
        let s =
            parse_statement("INSERT INTO t VALUES (1, 'a'), (2 + 3, 'b,с(x)')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_drop_variants() {
        assert!(matches!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { if_exists: false, .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
    }

    #[test]
    fn parses_clone_and_undrop() {
        match parse_statement("CREATE TABLE t2 CLONE t1").unwrap() {
            Statement::CloneTable { name, source, travel } => {
                assert_eq!(name, "T2");
                assert_eq!(source, "T1");
                assert!(travel.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("CREATE TABLE t2 CLONE t1 AT(VERSION => 3)").unwrap() {
            Statement::CloneTable { travel, .. } => {
                assert_eq!(travel, Some(Travel { before: false, version: 3 }));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("CREATE TABLE t2 CLONE t1 BEFORE(VERSION => 7)").unwrap() {
            Statement::CloneTable { travel, .. } => {
                assert_eq!(travel, Some(Travel { before: true, version: 7 }));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("UNDROP TABLE t").unwrap() {
            Statement::Undrop { name } => assert_eq!(name, "T"),
            other => panic!("{other:?}"),
        }
        for bad in [
            "UNDROP t",
            "UNDROP TABLE t x",
            "CREATE TABLE t2 CLONE t1 AT(VERSION 3)",
            "CREATE TABLE t2 CLONE t1 AT(VERSION => -1)",
            "CREATE TABLE t2 CLONE t1 garbage",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_time_travel_queries() {
        use super::super::ast::{SetExpr, TableFactor};
        let travel_of = |sql: &str| -> Option<Travel> {
            match parse_statement(sql).unwrap() {
                Statement::Query(q) => match q.body {
                    SetExpr::Select(sel) => match sel.from.unwrap().base {
                        TableFactor::Table { travel, .. } => travel,
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(
            travel_of("SELECT * FROM t AT(VERSION => 5)"),
            Some(Travel { before: false, version: 5 })
        );
        assert_eq!(
            travel_of("SELECT * FROM t BEFORE(VERSION => 2) x WHERE x.a > 0"),
            Some(Travel { before: true, version: 2 })
        );
        // AT without '(' is still a plain alias (back-compat).
        assert_eq!(travel_of("SELECT * FROM t at"), None);
        assert!(parse_statement("SELECT * FROM t AT(VERSION 5)").is_err());
    }

    #[test]
    fn parses_explain_and_plain_queries() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(parse_statement("SELECT 1").unwrap(), Statement::Query(_)));
    }

    #[test]
    fn parses_explain_analyze() {
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        assert!(matches!(
            parse_statement("  explain   analyze SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        // A table named ANALYZE must not trigger the ANALYZE path.
        assert!(matches!(
            parse_statement("EXPLAIN SELECT a FROM analyze_log").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn parses_verify() {
        match parse_statement("VERIFY SELECT 1").unwrap() {
            Statement::Verify(q) => assert_eq!(q, "SELECT 1"),
            other => panic!("{other:?}"),
        }
        // Syntax errors in the verified query surface at parse time.
        assert!(parse_statement("VERIFY SELECT 1 +").is_err());
    }

    #[test]
    fn insert_table_named_like_values_keyword() {
        // The keyword scan must not split at the table name or at a string
        // literal containing "values"; the old substring search did both.
        let s = parse_statement("INSERT INTO values_log VALUES (1, 'values'), (2, 'x')")
            .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "VALUES_LOG");
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_ddl() {
        for bad in [
            "CREATE TABLE t",
            "CREATE TABLE t ()",
            "INSERT t VALUES (1)",
            "INSERT INTO t VALUES",
            "DROP t",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_delete() {
        match parse_statement("DELETE FROM t").unwrap() {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "T");
                assert!(predicate.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("DELETE FROM t WHERE a > 3 AND b = 'where'").unwrap() {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "T");
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
        for bad in ["DELETE t", "DELETE FROM t WHERE", "DELETE FROM t GARBAGE"] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_update() {
        match parse_statement("UPDATE t SET a = a + 1, b = 'set' WHERE a < 5").unwrap() {
            Statement::Update { table, sets, predicate } => {
                assert_eq!(table, "T");
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].0, "A");
                assert_eq!(sets[1].0, "B");
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("UPDATE t SET x = 0").unwrap() {
            Statement::Update { sets, predicate, .. } => {
                assert_eq!(sets.len(), 1);
                assert!(predicate.is_none());
            }
            other => panic!("{other:?}"),
        }
        for bad in ["UPDATE t", "UPDATE t SET", "UPDATE t SET a + 1", "UPDATE t SET 1 = 2"] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_transaction_verbs() {
        for (sql, want) in [
            ("BEGIN", Statement::Begin),
            ("begin transaction", Statement::Begin),
            ("BEGIN WORK", Statement::Begin),
            ("START TRANSACTION", Statement::Begin),
            ("COMMIT", Statement::Commit),
            ("commit work", Statement::Commit),
            ("ROLLBACK", Statement::Rollback),
            ("ROLLBACK TRANSACTION", Statement::Rollback),
        ] {
            assert_eq!(parse_statement(sql).unwrap(), want, "{sql}");
        }
        for bad in ["BEGIN 1", "START", "COMMIT now please", "ROLLBACK TO x"] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_set_and_unset() {
        match parse_statement("SET STATEMENT_TIMEOUT_IN_SECONDS = 30").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "STATEMENT_TIMEOUT_IN_SECONDS");
                assert_eq!(value, 30);
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("unset statement_memory_limit").unwrap() {
            Statement::Unset { name } => assert_eq!(name, "STATEMENT_MEMORY_LIMIT"),
            other => panic!("{other:?}"),
        }
        for bad in [
            "SET x",
            "SET x = 'str'",
            "SET x = -1",
            "SET x = 1 2",
            "UNSET x y",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }
}
