//! Statement-level SQL: queries plus the small DDL/DML surface the REPL and
//! examples use (`CREATE TABLE`, `INSERT INTO ... VALUES`, `DROP TABLE`,
//! `EXPLAIN`).

use super::ast::{Expr, Query};
use super::lexer::{tokenize, Token};
use super::parser::parse_query;
use crate::error::{Result, SnowError};
use crate::storage::ColumnType;

/// A parsed SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    Query(Query),
    Explain(Query),
    /// `EXPLAIN ANALYZE <query>`: run the query and render the plan annotated
    /// with measured per-operator metrics.
    ExplainAnalyze(Query),
    /// `VERIFY <query>`: run the query across the execution-configuration
    /// lattice and report agreement (or a divergence repro). Carries the query
    /// text because the oracle re-plans it per configuration.
    Verify(String),
    CreateTable { name: String, columns: Vec<(String, ColumnType)> },
    Insert { table: String, rows: Vec<Vec<Expr>> },
    DropTable { name: String, if_exists: bool },
    /// `SET <parameter> = <value>`: session parameter assignment (Snowflake
    /// convention: `0` clears the limit).
    Set { name: String, value: u64 },
    /// `UNSET <parameter>`: clears a session parameter.
    Unset { name: String },
}

/// Parses one statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let toks = tokenize(sql)?;
    match toks.first() {
        Some(t) if t.is_kw("EXPLAIN") => {
            let rest = sql.trim_start();
            let rest = &rest[rest.len().min(7)..]; // strip "EXPLAIN"
            if toks.get(1).is_some_and(|t| t.is_kw("ANALYZE")) {
                let rest = rest.trim_start();
                let rest = &rest[rest.len().min(7)..]; // strip "ANALYZE"
                return Ok(Statement::ExplainAnalyze(parse_query(rest)?));
            }
            Ok(Statement::Explain(parse_query(rest)?))
        }
        Some(t) if t.is_kw("VERIFY") => {
            let rest = sql.trim_start();
            let rest = &rest[rest.len().min(6)..]; // strip "VERIFY"
            // Parse eagerly so syntax errors surface here, not per-config.
            parse_query(rest)?;
            Ok(Statement::Verify(rest.trim().to_string()))
        }
        Some(t) if t.is_kw("CREATE") => parse_create(&toks),
        Some(t) if t.is_kw("INSERT") => parse_insert(sql, &toks),
        Some(t) if t.is_kw("DROP") => parse_drop(&toks),
        Some(t) if t.is_kw("SET") => parse_set(&toks),
        Some(t) if t.is_kw("UNSET") => parse_unset(&toks),
        _ => Ok(Statement::Query(parse_query(sql)?)),
    }
}

fn parse_set(toks: &[Token]) -> Result<Statement> {
    // SET name = value
    let name = ident_at(toks, 1)?;
    if !toks.get(2).is_some_and(|t| t.is_sym("=")) {
        return Err(SnowError::Parse("expected '=' after SET parameter name".into()));
    }
    let value = match toks.get(3) {
        Some(Token::Int(v)) if *v >= 0 => *v as u64,
        other => {
            return Err(SnowError::Parse(format!(
                "expected non-negative integer value for SET, found {other:?}"
            )))
        }
    };
    if !matches!(toks.get(4), Some(Token::Eof) | None) {
        return Err(SnowError::Parse("unexpected trailing tokens after SET".into()));
    }
    Ok(Statement::Set { name, value })
}

fn parse_unset(toks: &[Token]) -> Result<Statement> {
    // UNSET name
    let name = ident_at(toks, 1)?;
    if !matches!(toks.get(2), Some(Token::Eof) | None) {
        return Err(SnowError::Parse("unexpected trailing tokens after UNSET".into()));
    }
    Ok(Statement::Unset { name })
}

fn ident_at(toks: &[Token], i: usize) -> Result<String> {
    match toks.get(i) {
        Some(Token::Ident { text, .. }) => Ok(text.clone()),
        other => Err(SnowError::Parse(format!("expected identifier, found {other:?}"))),
    }
}

fn parse_create(toks: &[Token]) -> Result<Statement> {
    // CREATE TABLE name ( col type [, ...] )
    let mut i = 1;
    if !toks.get(i).is_some_and(|t| t.is_kw("TABLE")) {
        return Err(SnowError::Parse("expected CREATE TABLE".into()));
    }
    i += 1;
    let name = ident_at(toks, i)?;
    i += 1;
    if !toks.get(i).is_some_and(|t| t.is_sym("(")) {
        return Err(SnowError::Parse("expected '(' after table name".into()));
    }
    i += 1;
    let mut columns = Vec::new();
    loop {
        let col = ident_at(toks, i)?;
        i += 1;
        let ty_name = ident_at(toks, i)?;
        i += 1;
        // Skip optional precision arguments like NUMBER(38, 0).
        if toks.get(i).is_some_and(|t| t.is_sym("(")) {
            while !toks.get(i).is_some_and(|t| t.is_sym(")")) {
                i += 1;
                if i > toks.len() {
                    return Err(SnowError::Parse("unterminated type arguments".into()));
                }
            }
            i += 1;
        }
        let ty = ColumnType::parse(&ty_name)
            .ok_or_else(|| SnowError::Parse(format!("unknown column type '{ty_name}'")))?;
        columns.push((col, ty));
        if toks.get(i).is_some_and(|t| t.is_sym(",")) {
            i += 1;
            continue;
        }
        break;
    }
    if !toks.get(i).is_some_and(|t| t.is_sym(")")) {
        return Err(SnowError::Parse("expected ')' to close column list".into()));
    }
    if columns.is_empty() {
        return Err(SnowError::Parse("CREATE TABLE requires at least one column".into()));
    }
    Ok(Statement::CreateTable { name, columns })
}

fn parse_insert(sql: &str, toks: &[Token]) -> Result<Statement> {
    // INSERT INTO name VALUES (expr, ...) [, (expr, ...)]*
    if !(toks.get(1).is_some_and(|t| t.is_kw("INTO"))) {
        return Err(SnowError::Parse("expected INSERT INTO".into()));
    }
    let table = ident_at(toks, 2)?;
    if !toks.get(3).is_some_and(|t| t.is_kw("VALUES")) {
        return Err(SnowError::Parse("expected VALUES".into()));
    }
    // Reuse the expression parser by rewriting each tuple into a SELECT list.
    let values_pos = find_values_keyword(sql).ok_or_else(|| {
        SnowError::Parse("expected VALUES keyword in INSERT statement".into())
    })?;
    let tail = &sql[values_pos + "VALUES".len()..];
    let mut rows = Vec::new();
    for tuple in split_tuples(tail)? {
        let q = parse_query(&format!("SELECT {tuple}"))?;
        match q.body {
            super::ast::SetExpr::Select(sel) => {
                let row: Vec<Expr> = sel
                    .items
                    .into_iter()
                    .map(|it| match it {
                        super::ast::SelectItem::Expr { expr, .. } => Ok(expr),
                        other => Err(SnowError::Parse(format!(
                            "invalid VALUES item {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                rows.push(row);
            }
            _ => return Err(SnowError::Parse("invalid VALUES list".into())),
        }
    }
    if rows.is_empty() {
        return Err(SnowError::Parse("VALUES requires at least one tuple".into()));
    }
    Ok(Statement::Insert { table, rows })
}

/// Locates the byte offset of the `VALUES` *keyword* in an INSERT statement:
/// case-insensitive, on a word boundary, and outside string literals and quoted
/// identifiers. A naive substring search mis-splits statements like
/// `INSERT INTO values_log VALUES (1)` at the table name, and the old
/// `.expect` on its result turned that planner-adjacent edge into a process
/// abort instead of a parse error.
fn find_values_keyword(sql: &str) -> Option<usize> {
    let bytes = sql.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' | b'"' => {
                let quote = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                i += 1; // past the closing quote (or end of input)
            }
            b if is_word(b) => {
                let start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                if sql[start..i].eq_ignore_ascii_case("VALUES") {
                    return Some(start);
                }
            }
            _ => i += 1,
        }
    }
    None
}

/// Splits `(a, b), (c, d)` into top-level tuples, respecting nesting and
/// string literals.
fn split_tuples(text: &str) -> Result<Vec<String>> {
    let mut tuples = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                if depth > 0 {
                    current.push(c);
                }
            }
            '(' if !in_str => {
                if depth > 0 {
                    current.push(c);
                }
                depth += 1;
            }
            ')' if !in_str => {
                if depth == 0 {
                    return Err(SnowError::Parse("unbalanced ')' in VALUES".into()));
                }
                depth -= 1;
                if depth == 0 {
                    tuples.push(std::mem::take(&mut current));
                } else {
                    current.push(c);
                }
            }
            _ => {
                if depth > 0 {
                    current.push(c);
                }
            }
        }
    }
    if depth != 0 || in_str {
        return Err(SnowError::Parse("unterminated VALUES tuple".into()));
    }
    Ok(tuples)
}

fn parse_drop(toks: &[Token]) -> Result<Statement> {
    // DROP TABLE [IF EXISTS] name
    if !toks.get(1).is_some_and(|t| t.is_kw("TABLE")) {
        return Err(SnowError::Parse("expected DROP TABLE".into()));
    }
    let mut i = 2;
    let if_exists = toks.get(i).is_some_and(|t| t.is_kw("IF"))
        && toks.get(i + 1).is_some_and(|t| t.is_kw("EXISTS"));
    if if_exists {
        i += 2;
    }
    let name = ident_at(toks, i)?;
    Ok(Statement::DropTable { name, if_exists })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse_statement("CREATE TABLE t (a INT, b DOUBLE, c VARIANT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "T");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("A".to_string(), ColumnType::Int));
                assert_eq!(columns[2].1, ColumnType::Variant);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_values() {
        let s =
            parse_statement("INSERT INTO t VALUES (1, 'a'), (2 + 3, 'b,с(x)')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_drop_variants() {
        assert!(matches!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { if_exists: false, .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
    }

    #[test]
    fn parses_explain_and_plain_queries() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(parse_statement("SELECT 1").unwrap(), Statement::Query(_)));
    }

    #[test]
    fn parses_explain_analyze() {
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        assert!(matches!(
            parse_statement("  explain   analyze SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        // A table named ANALYZE must not trigger the ANALYZE path.
        assert!(matches!(
            parse_statement("EXPLAIN SELECT a FROM analyze_log").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn parses_verify() {
        match parse_statement("VERIFY SELECT 1").unwrap() {
            Statement::Verify(q) => assert_eq!(q, "SELECT 1"),
            other => panic!("{other:?}"),
        }
        // Syntax errors in the verified query surface at parse time.
        assert!(parse_statement("VERIFY SELECT 1 +").is_err());
    }

    #[test]
    fn insert_table_named_like_values_keyword() {
        // The keyword scan must not split at the table name or at a string
        // literal containing "values"; the old substring search did both.
        let s = parse_statement("INSERT INTO values_log VALUES (1, 'values'), (2, 'x')")
            .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "VALUES_LOG");
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_ddl() {
        for bad in [
            "CREATE TABLE t",
            "CREATE TABLE t ()",
            "INSERT t VALUES (1)",
            "INSERT INTO t VALUES",
            "DROP t",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_set_and_unset() {
        match parse_statement("SET STATEMENT_TIMEOUT_IN_SECONDS = 30").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "STATEMENT_TIMEOUT_IN_SECONDS");
                assert_eq!(value, 30);
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("unset statement_memory_limit").unwrap() {
            Statement::Unset { name } => assert_eq!(name, "STATEMENT_MEMORY_LIMIT"),
            other => panic!("{other:?}"),
        }
        for bad in [
            "SET x",
            "SET x = 'str'",
            "SET x = -1",
            "SET x = 1 2",
            "UNSET x y",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }
}
