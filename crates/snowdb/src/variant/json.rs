//! First-party JSON parser and serializer for [`Variant`].
//!
//! The engine deliberately does not depend on an external JSON crate: the paper's
//! baselines differ precisely in *where* JSON parsing happens (the document-store
//! comparator parses on the scan path), so the parser must be a measured,
//! first-party component.

use std::sync::Arc;

use super::{Object, Variant};
use crate::error::{Result, SnowError};

/// Parses a JSON document into a [`Variant`].
///
/// Accepts standard JSON (RFC 8259): objects, arrays, strings with escapes,
/// numbers (integers parsed as `Int`, anything with a fraction or exponent as
/// `Float`), `true`/`false`/`null`. Trailing content after the document is an error.
pub fn parse_json(text: &str) -> Result<Variant> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SnowError::Json(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(v)
}

/// Serializes a [`Variant`] to compact JSON text.
pub fn to_json(v: &Variant) -> String {
    let mut out = String::with_capacity(64);
    write_json(v, &mut out);
    out
}

fn write_json(v: &Variant, out: &mut String) {
    match v {
        Variant::Null => out.push_str("null"),
        Variant::Bool(true) => out.push_str("true"),
        Variant::Bool(false) => out.push_str("false"),
        Variant::Int(i) => {
            out.push_str(itoa_buf(*i).as_str());
        }
        Variant::Float(f) => {
            if f.is_finite() {
                // Always emit a fractional or exponent part so round-tripping keeps
                // the Float/Int distinction.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Variant::Str(s) => write_json_string(s, out),
        Variant::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Variant::Object(obj) => {
            out.push('{');
            for (i, (k, val)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn itoa_buf(i: i64) -> String {
    i.to_string()
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting. Without a bound, a document like `[[[[...`
/// recursed once per bracket and overflowed the stack — a process *abort*, not
/// an unwind, so not even `catch_unwind` could isolate it.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SnowError::Json(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Variant> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Variant::Str(Arc::from(self.string()?))),
            Some(b't') => self.keyword("true", Variant::Bool(true)),
            Some(b'f') => self.keyword("false", Variant::Bool(false)),
            Some(b'n') => self.keyword("null", Variant::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(SnowError::Json(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(SnowError::Json("unexpected end of input".into())),
        }
    }

    fn keyword(&mut self, kw: &str, v: Variant) -> Result<Variant> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(SnowError::Json(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(SnowError::Json(format!(
                "document exceeds maximum nesting depth {MAX_DEPTH} at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Variant> {
        self.expect(b'{')?;
        self.enter()?;
        self.skip_ws();
        let mut obj = Object::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Variant::object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            obj.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    return Err(SnowError::Json(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
        self.depth -= 1;
        Ok(Variant::object(obj))
    }

    fn array(&mut self) -> Result<Variant> {
        self.expect(b'[')?;
        self.enter()?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Variant::array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    return Err(SnowError::Json(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
        self.depth -= 1;
        Ok(Variant::array(items))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    // The low escape must actually be a low
                                    // surrogate: the unchecked subtraction
                                    // used to overflow (a debug-mode panic)
                                    // on inputs like `"\uD800A"`.
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000
                                                + ((cp - 0xD800) << 10)
                                                + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                SnowError::Json(format!(
                                    "invalid unicode escape at byte {}",
                                    self.pos
                                ))
                            })?);
                            continue;
                        }
                        _ => {
                            return Err(SnowError::Json(format!(
                                "invalid escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| SnowError::Json("invalid utf-8 in string".into()))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(SnowError::Json("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(SnowError::Json("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| SnowError::Json("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| SnowError::Json("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Variant> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| SnowError::Json("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Variant::Float)
                .map_err(|_| SnowError::Json(format!("invalid number '{text}'")))
        } else {
            // Fall back to float on i64 overflow, like Snowflake's lossy ingest.
            match text.parse::<i64>() {
                Ok(i) => Ok(Variant::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Variant::Float)
                    .map_err(|_| SnowError::Json(format!("invalid number '{text}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("42").unwrap(), Variant::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Variant::Int(-7));
        assert_eq!(parse_json("3.5").unwrap(), Variant::Float(3.5));
        assert_eq!(parse_json("1e3").unwrap(), Variant::Float(1000.0));
        assert_eq!(parse_json("true").unwrap(), Variant::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Variant::Bool(false));
        assert_eq!(parse_json("null").unwrap(), Variant::Null);
        assert_eq!(parse_json("\"hi\"").unwrap(), Variant::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Variant::Int(1));
        assert!(a[1].get_field("b").is_null());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("{},").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "tru", "01a", ""] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd\u{41}");
        let reser = to_json(&v);
        assert_eq!(parse_json(&reser).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        // Escaped form of the same scalar.
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn malformed_surrogate_pairs_are_typed_errors() {
        // A high surrogate followed by a non-low-surrogate escape used to
        // overflow the combining arithmetic (a debug-mode panic); all of
        // these must be typed `Json` errors.
        for bad in [
            r#""\uD800A""#, // low escape is not a low surrogate
            r#""\uD800\uD800""#, // two high surrogates
            r#""\uD800A""#,      // no second escape at all
            r#""\uD800\n""#,     // second escape is not \u
            r#""\uDC00""#,       // lone low surrogate
            r#""\uD800""#,       // lone high surrogate, end of string
        ] {
            match parse_json(bad) {
                Err(SnowError::Json(_)) => {}
                other => panic!("{bad:?} should be a Json error, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // 100k unclosed brackets previously recursed once per bracket and
        // aborted the process with a stack overflow.
        let deep = "[".repeat(100_000);
        match parse_json(&deep) {
            Err(SnowError::Json(m)) => assert!(m.contains("nesting depth"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
        let deep_obj = r#"{"a":"#.repeat(100_000);
        assert!(matches!(parse_json(&deep_obj), Err(SnowError::Json(_))));
        // Depth within the bound still parses, and the guard resets across
        // siblings (depth is container nesting, not total container count).
        let ok = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        assert!(parse_json(&ok).is_ok());
        let siblings = format!("[{}]", vec!["[[1]]"; 1000].join(","));
        assert!(parse_json(&siblings).is_ok());
    }

    #[test]
    fn float_serialization_keeps_type() {
        let v = Variant::Float(2.0);
        let s = to_json(&v);
        assert_eq!(parse_json(&s).unwrap(), Variant::Float(2.0));
    }

    #[test]
    fn roundtrip_compound() {
        let src = r#"{"EVENT":1,"MET":{"pt":4.25,"phi":-1.5},"Muon":[{"pt":10.0,"charge":-1},{"pt":20.5,"charge":1}],"flags":[true,false,null]}"#;
        let v = parse_json(src).unwrap();
        let round = parse_json(&to_json(&v)).unwrap();
        assert_eq!(v, round);
    }
}
