//! Equality, ordering, hashing, and numeric coercion for [`Variant`].

use std::cmp::Ordering;
use std::sync::Arc;

use super::Variant;

/// Numeric coercion result for binary arithmetic: either both sides are integers
/// or both are promoted to doubles, mirroring Snowflake's numeric tower as far as
/// the workloads require.
pub enum NumericPair {
    Int(i64, i64),
    Float(f64, f64),
}

impl NumericPair {
    /// Coerces two variants to a common numeric representation, or `None` when
    /// either side is not a number.
    pub fn coerce(a: &Variant, b: &Variant) -> Option<NumericPair> {
        match (a, b) {
            (Variant::Int(x), Variant::Int(y)) => Some(NumericPair::Int(*x, *y)),
            (Variant::Int(x), Variant::Float(y)) => Some(NumericPair::Float(*x as f64, *y)),
            (Variant::Float(x), Variant::Int(y)) => Some(NumericPair::Float(*x, *y as f64)),
            (Variant::Float(x), Variant::Float(y)) => Some(NumericPair::Float(*x, *y)),
            _ => None,
        }
    }
}

impl PartialEq for Variant {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Variant::Null, Variant::Null) => true,
            (Variant::Bool(a), Variant::Bool(b)) => a == b,
            (Variant::Str(a), Variant::Str(b)) => a == b,
            (Variant::Array(a), Variant::Array(b)) => a == b,
            (Variant::Object(a), Variant::Object(b)) => a == b,
            (Variant::Int(x), Variant::Int(y)) => x == y,
            // Mixed Int/Float equality goes through the exact comparison, not
            // `x as f64`: the conversion rounds for |x| > 2^53, which made
            // distinct values compare equal (corrupting ORDER BY, join keys,
            // and DISTINCT).
            (Variant::Int(x), Variant::Float(y)) => {
                cmp_i64_f64(*x, *y) == Ordering::Equal
            }
            (Variant::Float(x), Variant::Int(y)) => {
                cmp_i64_f64(*y, *x) == Ordering::Equal
            }
            // Equality is the Equal case of the same total order that
            // drives sorting, MIN/MAX, and zone maps: NaN equals itself
            // (and sorts after every other number, Snowflake's rule).
            // IEEE `==` would make `eq` disagree with `cmp_variants`, and
            // zone-map pruning built on the total order would then drop
            // partitions whose rows the equality-based filter keeps.
            (Variant::Float(x), Variant::Float(y)) => {
                cmp_f64(*x, *y) == Ordering::Equal
            }
            _ => false,
        }
    }
}

/// Total order over variants, used by `ORDER BY`, `MIN`/`MAX`, and zone maps.
///
/// Type rank: numbers < strings < booleans < arrays < objects < NULL, so that an
/// ascending sort puts `NULL`s last (Snowflake's default). `NaN` equals itself
/// and sorts after all other numbers (Snowflake's rule); [`PartialEq`] above is
/// exactly the `Equal` case of this order, so equality filters, hash keys, sort
/// order, and zone-map pruning can never disagree about NaN. Cross-type numeric
/// values compare numerically.
pub fn cmp_variants(a: &Variant, b: &Variant) -> Ordering {
    fn rank(v: &Variant) -> u8 {
        match v {
            Variant::Int(_) | Variant::Float(_) => 0,
            Variant::Str(_) => 1,
            Variant::Bool(_) => 2,
            Variant::Array(_) => 3,
            Variant::Object(_) => 4,
            Variant::Null => 5,
        }
    }
    match (a, b) {
        (Variant::Bool(x), Variant::Bool(y)) => x.cmp(y),
        (Variant::Str(x), Variant::Str(y)) => x.cmp(y),
        (Variant::Array(x), Variant::Array(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let c = cmp_variants(xi, yi);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Variant::Object(x), Variant::Object(y)) => {
            // Lexicographic over (key, value) pairs in insertion order; arbitrary
            // but total, which is all sorting requires.
            for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                let c = kx.cmp(ky);
                if c != Ordering::Equal {
                    return c;
                }
                let c = cmp_variants(vx, vy);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Variant::Int(x), Variant::Int(y)) => x.cmp(y),
        (Variant::Int(x), Variant::Float(y)) => cmp_i64_f64(*x, *y),
        (Variant::Float(x), Variant::Int(y)) => cmp_i64_f64(*y, *x).reverse(),
        (Variant::Float(x), Variant::Float(y)) => cmp_f64(*x, *y),
        (a, b) => rank(a).cmp(&rank(b)),
    }
}

/// Exact comparison of an `i64` against an `f64`, without converting the
/// integer to `f64` first (that conversion rounds for |x| > 2^53 and made
/// distinct values compare equal). Follows the shared NaN rule: NaN sorts
/// after every number, so an integer is always `Less` than NaN.
pub fn cmp_i64_f64(x: i64, y: f64) -> Ordering {
    if y.is_nan() {
        return Ordering::Less;
    }
    // Every i64 lies strictly below 2^63; a float at or above that bound
    // (including +inf) exceeds every integer, and symmetrically below -2^63.
    // Both bounds are exactly representable as f64.
    if y >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if y < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    // Finite y with -2^63 <= y < 2^63: the truncation fits in i64 exactly.
    let t = y.trunc() as i64;
    match x.cmp(&t) {
        Ordering::Equal => {
            let frac = y - y.trunc();
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        o => o,
    }
}

/// The shared float order: IEEE for comparable values, NaN == NaN, and NaN
/// greater than everything else. `partial_cmp` returns `None` only when at
/// least one side is NaN.
pub fn cmp_f64(x: f64, y: f64) -> Ordering {
    match x.partial_cmp(&y) {
        Some(o) => o,
        None => match (x.is_nan(), y.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            _ => Ordering::Less,
        },
    }
}

/// A hashable canonical form of a [`Variant`], used as a group-by / distinct /
/// join key. Integral doubles canonicalize to integers so that `1` and `1.0`
/// land in the same group, consistent with [`PartialEq`] above.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(Arc<str>),
    Array(Vec<Key>),
    Object(Vec<(Arc<str>, Key)>),
}

impl Key {
    /// Builds the canonical key for a variant.
    pub fn of(v: &Variant) -> Key {
        match v {
            Variant::Null => Key::Null,
            Variant::Bool(b) => Key::Bool(*b),
            Variant::Int(i) => Key::Int(*i),
            Variant::Float(f) => Key::of_f64(*f),
            Variant::Str(s) => Key::Str(s.clone()),
            Variant::Array(a) => Key::Array(a.iter().map(Key::of).collect()),
            Variant::Object(o) => Key::Object(
                o.iter().map(|(k, v)| (Arc::from(k), Key::of(v))).collect(),
            ),
        }
    }

    /// Canonical key for a double, shared between [`Key::of`] and the typed
    /// column kernels so grouping cannot diverge between the two paths.
    ///
    /// Integral doubles that convert to `i64` exactly canonicalize to
    /// `Key::Int` so `1` and `1.0` land in one group; the upper bound is
    /// *strict* `< 2^63` because 2^63 itself is not an i64 (the old guard used
    /// `<= i64::MAX as f64`, which rounds the bound up to 2^63, so
    /// `9.223372036854776e18` passed and the saturating cast collided it with
    /// `i64::MAX`). `-0.0` has zero fract and casts to `0`, unifying it with
    /// `0.0` and `0`; NaN canonicalizes to one bit pattern, matching the
    /// NaN == NaN total order.
    pub fn of_f64(f: f64) -> Key {
        if f.is_nan() {
            Key::Float(f64::NAN.to_bits())
        } else if f.fract() == 0.0
            && (-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0).contains(&f)
        {
            Key::Int(f as i64)
        } else {
            Key::Float(f.to_bits())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Object;

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(Variant::Int(3), Variant::Float(3.0));
        assert_ne!(Variant::Int(3), Variant::Float(3.5));
        assert_ne!(Variant::Int(1), Variant::Bool(true));
        assert_ne!(Variant::Int(0), Variant::Null);
    }

    #[test]
    fn ordering_puts_nulls_last() {
        let mut vals = [Variant::Null, Variant::Int(2), Variant::Float(1.5)];
        vals.sort_by(cmp_variants);
        assert_eq!(vals[0], Variant::Float(1.5));
        assert_eq!(vals[1], Variant::Int(2));
        assert!(vals[2].is_null());
    }

    #[test]
    fn nan_sorts_after_numbers() {
        assert_eq!(
            cmp_variants(&Variant::Float(f64::NAN), &Variant::Float(1.0)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_equality_agrees_with_total_order() {
        let nan = Variant::Float(f64::NAN);
        // One coherent total order: eq, cmp, and Key all say NaN == NaN.
        assert_eq!(nan, Variant::Float(f64::NAN));
        assert_eq!(cmp_variants(&nan, &Variant::Float(f64::NAN)), Ordering::Equal);
        assert_eq!(Key::of(&nan), Key::of(&Variant::Float(-f64::NAN)));
        // ...while NaN stays unequal to every comparable value.
        assert_ne!(nan, Variant::Float(1.0));
        assert_ne!(nan, Variant::Int(1));
        assert_ne!(nan, Variant::Null);
        // eq must be exactly the Equal case of cmp_variants for every float pair.
        for a in [f64::NAN, f64::INFINITY, -0.0, 0.0, 1.5] {
            for b in [f64::NAN, f64::NEG_INFINITY, -0.0, 0.0, 1.5] {
                assert_eq!(
                    Variant::Float(a) == Variant::Float(b),
                    cmp_variants(&Variant::Float(a), &Variant::Float(b)) == Ordering::Equal,
                    "eq/cmp disagree on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn array_ordering_is_lexicographic() {
        let a = Variant::array(vec![Variant::Int(1), Variant::Int(2)]);
        let b = Variant::array(vec![Variant::Int(1), Variant::Int(3)]);
        let c = Variant::array(vec![Variant::Int(1)]);
        assert_eq!(cmp_variants(&a, &b), Ordering::Less);
        assert_eq!(cmp_variants(&c, &a), Ordering::Less);
    }

    #[test]
    fn large_int_float_comparison_is_exact() {
        // 2^53 is the first point where f64 can no longer represent every
        // integer; the old `x as f64` coercion collapsed neighbors here.
        let p53 = 1i64 << 53; // 9007199254740992
        let f53 = p53 as f64; // exact
        assert_eq!(Variant::Int(p53), Variant::Float(f53));
        assert_ne!(Variant::Int(p53 + 1), Variant::Float(f53));
        assert_eq!(
            cmp_variants(&Variant::Int(p53 + 1), &Variant::Float(f53)),
            Ordering::Greater
        );
        assert_eq!(
            cmp_variants(&Variant::Float(f53), &Variant::Int(p53 + 1)),
            Ordering::Less
        );
        assert_ne!(Variant::Int(-(p53 + 1)), Variant::Float(-f53));
        assert_eq!(
            cmp_variants(&Variant::Int(-(p53 + 1)), &Variant::Float(-f53)),
            Ordering::Less
        );
        // i64::MAX as f64 rounds up to 2^63, which is strictly greater than
        // every i64 — the two must not compare equal.
        let max_f = i64::MAX as f64; // 2^63
        assert_ne!(Variant::Int(i64::MAX), Variant::Float(max_f));
        assert_eq!(
            cmp_variants(&Variant::Int(i64::MAX), &Variant::Float(max_f)),
            Ordering::Less
        );
        // i64::MIN as f64 is exactly -2^63, so that pair *is* equal.
        assert_eq!(Variant::Int(i64::MIN), Variant::Float(i64::MIN as f64));
        // Fractional parts break ties on the integer part.
        assert_eq!(cmp_i64_f64(5, 5.5), Ordering::Less);
        assert_eq!(cmp_i64_f64(-5, -5.5), Ordering::Greater);
        // Infinities and NaN: ints below +inf and NaN, above -inf.
        assert_eq!(cmp_i64_f64(i64::MAX, f64::INFINITY), Ordering::Less);
        assert_eq!(cmp_i64_f64(i64::MIN, f64::NEG_INFINITY), Ordering::Greater);
        assert_eq!(cmp_i64_f64(i64::MAX, f64::NAN), Ordering::Less);
    }

    #[test]
    fn eq_is_equal_case_of_cmp_for_mixed_numeric() {
        let ints = [0, 1, -1, (1i64 << 53) + 1, i64::MAX, i64::MIN];
        let floats = [
            0.0,
            -0.0,
            0.5,
            (1i64 << 53) as f64,
            9.223372036854776e18,
            -9.223372036854776e18,
            f64::NAN,
            f64::INFINITY,
        ];
        for &x in &ints {
            for &y in &floats {
                assert_eq!(
                    Variant::Int(x) == Variant::Float(y),
                    cmp_variants(&Variant::Int(x), &Variant::Float(y)) == Ordering::Equal,
                    "eq/cmp disagree on ({x}, {y})"
                );
                assert_eq!(
                    cmp_variants(&Variant::Int(x), &Variant::Float(y)),
                    cmp_variants(&Variant::Float(y), &Variant::Int(x)).reverse(),
                    "cmp not antisymmetric on ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn out_of_range_floats_do_not_collide_group_keys() {
        // 9.223372036854776e18 is 2^63: the old `<= i64::MAX as f64` guard
        // admitted it and the saturating cast collided it with i64::MAX.
        let big = 9.223372036854776e18;
        assert_ne!(Key::of(&Variant::Float(big)), Key::of(&Variant::Int(i64::MAX)));
        assert_eq!(Key::of(&Variant::Float(big)), Key::of(&Variant::Float(big)));
        // -2^63 is exactly representable, so it unifies with i64::MIN...
        assert_eq!(
            Key::of(&Variant::Float(-9.223372036854776e18)),
            Key::of(&Variant::Int(i64::MIN))
        );
        // ...but the next representable double below must not.
        let below = (-9.223372036854776e18f64).next_down();
        assert_ne!(Key::of(&Variant::Float(below)), Key::of(&Variant::Int(i64::MIN)));
        // Key unification must agree with equality: equal values share a key,
        // distinct values get distinct keys.
        for v in [big, -9.223372036854776e18, below] {
            assert_eq!(
                Variant::Float(v) == Variant::Int(i64::MAX),
                Key::of(&Variant::Float(v)) == Key::of(&Variant::Int(i64::MAX))
            );
            assert_eq!(
                Variant::Float(v) == Variant::Int(i64::MIN),
                Key::of(&Variant::Float(v)) == Key::of(&Variant::Int(i64::MIN))
            );
        }
    }

    #[test]
    fn zero_and_nan_keys_stay_coherent() {
        assert_eq!(Key::of(&Variant::Float(-0.0)), Key::of(&Variant::Float(0.0)));
        assert_eq!(Key::of(&Variant::Float(-0.0)), Key::of(&Variant::Int(0)));
        let nan_key = Key::of(&Variant::Float(f64::NAN));
        assert_eq!(nan_key, Key::of(&Variant::Float(-f64::NAN)));
        assert_ne!(nan_key, Key::of(&Variant::Float(f64::INFINITY)));
        assert_ne!(Key::of(&Variant::Float(f64::INFINITY)), Key::of(&Variant::Float(f64::NEG_INFINITY)));
    }

    #[test]
    fn keys_unify_int_and_integral_float() {
        assert_eq!(Key::of(&Variant::Int(4)), Key::of(&Variant::Float(4.0)));
        assert_ne!(Key::of(&Variant::Int(4)), Key::of(&Variant::Float(4.5)));
        // Negative zero unifies with zero.
        assert_eq!(Key::of(&Variant::Float(-0.0)), Key::of(&Variant::Int(0)));
    }

    #[test]
    fn object_keys_include_structure() {
        let mut o1 = Object::new();
        o1.insert("a", Variant::Int(1));
        let mut o2 = Object::new();
        o2.insert("a", Variant::Int(2));
        assert_ne!(Key::of(&Variant::object(o1)), Key::of(&Variant::object(o2)));
    }
}
