//! Equality, ordering, hashing, and numeric coercion for [`Variant`].

use std::cmp::Ordering;
use std::sync::Arc;

use super::Variant;

/// Numeric coercion result for binary arithmetic: either both sides are integers
/// or both are promoted to doubles, mirroring Snowflake's numeric tower as far as
/// the workloads require.
pub enum NumericPair {
    Int(i64, i64),
    Float(f64, f64),
}

impl NumericPair {
    /// Coerces two variants to a common numeric representation, or `None` when
    /// either side is not a number.
    pub fn coerce(a: &Variant, b: &Variant) -> Option<NumericPair> {
        match (a, b) {
            (Variant::Int(x), Variant::Int(y)) => Some(NumericPair::Int(*x, *y)),
            (Variant::Int(x), Variant::Float(y)) => Some(NumericPair::Float(*x as f64, *y)),
            (Variant::Float(x), Variant::Int(y)) => Some(NumericPair::Float(*x, *y as f64)),
            (Variant::Float(x), Variant::Float(y)) => Some(NumericPair::Float(*x, *y)),
            _ => None,
        }
    }
}

impl PartialEq for Variant {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Variant::Null, Variant::Null) => true,
            (Variant::Bool(a), Variant::Bool(b)) => a == b,
            (Variant::Str(a), Variant::Str(b)) => a == b,
            (Variant::Array(a), Variant::Array(b)) => a == b,
            (Variant::Object(a), Variant::Object(b)) => a == b,
            (a, b) => match NumericPair::coerce(a, b) {
                Some(NumericPair::Int(x, y)) => x == y,
                // Equality is the Equal case of the same total order that
                // drives sorting, MIN/MAX, and zone maps: NaN equals itself
                // (and sorts after every other number, Snowflake's rule).
                // IEEE `==` would make `eq` disagree with `cmp_variants`, and
                // zone-map pruning built on the total order would then drop
                // partitions whose rows the equality-based filter keeps.
                Some(NumericPair::Float(x, y)) => cmp_f64(x, y) == Ordering::Equal,
                None => false,
            },
        }
    }
}

/// Total order over variants, used by `ORDER BY`, `MIN`/`MAX`, and zone maps.
///
/// Type rank: numbers < strings < booleans < arrays < objects < NULL, so that an
/// ascending sort puts `NULL`s last (Snowflake's default). `NaN` equals itself
/// and sorts after all other numbers (Snowflake's rule); [`PartialEq`] above is
/// exactly the `Equal` case of this order, so equality filters, hash keys, sort
/// order, and zone-map pruning can never disagree about NaN. Cross-type numeric
/// values compare numerically.
pub fn cmp_variants(a: &Variant, b: &Variant) -> Ordering {
    fn rank(v: &Variant) -> u8 {
        match v {
            Variant::Int(_) | Variant::Float(_) => 0,
            Variant::Str(_) => 1,
            Variant::Bool(_) => 2,
            Variant::Array(_) => 3,
            Variant::Object(_) => 4,
            Variant::Null => 5,
        }
    }
    match (a, b) {
        (Variant::Bool(x), Variant::Bool(y)) => x.cmp(y),
        (Variant::Str(x), Variant::Str(y)) => x.cmp(y),
        (Variant::Array(x), Variant::Array(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let c = cmp_variants(xi, yi);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Variant::Object(x), Variant::Object(y)) => {
            // Lexicographic over (key, value) pairs in insertion order; arbitrary
            // but total, which is all sorting requires.
            for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                let c = kx.cmp(ky);
                if c != Ordering::Equal {
                    return c;
                }
                let c = cmp_variants(vx, vy);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (a, b) => match NumericPair::coerce(a, b) {
            Some(NumericPair::Int(x, y)) => x.cmp(&y),
            Some(NumericPair::Float(x, y)) => cmp_f64(x, y),
            None => rank(a).cmp(&rank(b)),
        },
    }
}

/// The shared float order: IEEE for comparable values, NaN == NaN, and NaN
/// greater than everything else. `partial_cmp` returns `None` only when at
/// least one side is NaN.
fn cmp_f64(x: f64, y: f64) -> Ordering {
    match x.partial_cmp(&y) {
        Some(o) => o,
        None => match (x.is_nan(), y.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            _ => Ordering::Less,
        },
    }
}

/// A hashable canonical form of a [`Variant`], used as a group-by / distinct /
/// join key. Integral doubles canonicalize to integers so that `1` and `1.0`
/// land in the same group, consistent with [`PartialEq`] above.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(Arc<str>),
    Array(Vec<Key>),
    Object(Vec<(Arc<str>, Key)>),
}

impl Key {
    /// Builds the canonical key for a variant.
    pub fn of(v: &Variant) -> Key {
        match v {
            Variant::Null => Key::Null,
            Variant::Bool(b) => Key::Bool(*b),
            Variant::Int(i) => Key::Int(*i),
            Variant::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64
                {
                    Key::Int(*f as i64)
                } else if f.is_nan() {
                    Key::Float(f64::NAN.to_bits())
                } else if *f == 0.0 {
                    Key::Int(0)
                } else {
                    Key::Float(f.to_bits())
                }
            }
            Variant::Str(s) => Key::Str(s.clone()),
            Variant::Array(a) => Key::Array(a.iter().map(Key::of).collect()),
            Variant::Object(o) => Key::Object(
                o.iter().map(|(k, v)| (Arc::from(k), Key::of(v))).collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Object;

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(Variant::Int(3), Variant::Float(3.0));
        assert_ne!(Variant::Int(3), Variant::Float(3.5));
        assert_ne!(Variant::Int(1), Variant::Bool(true));
        assert_ne!(Variant::Int(0), Variant::Null);
    }

    #[test]
    fn ordering_puts_nulls_last() {
        let mut vals = [Variant::Null, Variant::Int(2), Variant::Float(1.5)];
        vals.sort_by(cmp_variants);
        assert_eq!(vals[0], Variant::Float(1.5));
        assert_eq!(vals[1], Variant::Int(2));
        assert!(vals[2].is_null());
    }

    #[test]
    fn nan_sorts_after_numbers() {
        assert_eq!(
            cmp_variants(&Variant::Float(f64::NAN), &Variant::Float(1.0)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_equality_agrees_with_total_order() {
        let nan = Variant::Float(f64::NAN);
        // One coherent total order: eq, cmp, and Key all say NaN == NaN.
        assert_eq!(nan, Variant::Float(f64::NAN));
        assert_eq!(cmp_variants(&nan, &Variant::Float(f64::NAN)), Ordering::Equal);
        assert_eq!(Key::of(&nan), Key::of(&Variant::Float(-f64::NAN)));
        // ...while NaN stays unequal to every comparable value.
        assert_ne!(nan, Variant::Float(1.0));
        assert_ne!(nan, Variant::Int(1));
        assert_ne!(nan, Variant::Null);
        // eq must be exactly the Equal case of cmp_variants for every float pair.
        for a in [f64::NAN, f64::INFINITY, -0.0, 0.0, 1.5] {
            for b in [f64::NAN, f64::NEG_INFINITY, -0.0, 0.0, 1.5] {
                assert_eq!(
                    Variant::Float(a) == Variant::Float(b),
                    cmp_variants(&Variant::Float(a), &Variant::Float(b)) == Ordering::Equal,
                    "eq/cmp disagree on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn array_ordering_is_lexicographic() {
        let a = Variant::array(vec![Variant::Int(1), Variant::Int(2)]);
        let b = Variant::array(vec![Variant::Int(1), Variant::Int(3)]);
        let c = Variant::array(vec![Variant::Int(1)]);
        assert_eq!(cmp_variants(&a, &b), Ordering::Less);
        assert_eq!(cmp_variants(&c, &a), Ordering::Less);
    }

    #[test]
    fn keys_unify_int_and_integral_float() {
        assert_eq!(Key::of(&Variant::Int(4)), Key::of(&Variant::Float(4.0)));
        assert_ne!(Key::of(&Variant::Int(4)), Key::of(&Variant::Float(4.5)));
        // Negative zero unifies with zero.
        assert_eq!(Key::of(&Variant::Float(-0.0)), Key::of(&Variant::Int(0)));
    }

    #[test]
    fn object_keys_include_structure() {
        let mut o1 = Object::new();
        o1.insert("a", Variant::Int(1));
        let mut o2 = Object::new();
        o2.insert("a", Variant::Int(2));
        assert_ne!(Key::of(&Variant::object(o1)), Key::of(&Variant::object(o2)));
    }
}
