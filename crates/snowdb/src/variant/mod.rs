//! The `VARIANT` data model: schema-less nested values.
//!
//! Mirrors Snowflake's `VARIANT` semantics as far as the paper relies on them:
//! a value is null, a boolean, a number (integer or double), a string, an array,
//! or an insertion-ordered object. Arrays and objects are reference-counted so that
//! moving values between operators never deep-copies nested payloads.

mod json;
mod ops;

pub use json::{parse_json, to_json};
pub use ops::{cmp_f64, cmp_i64_f64, cmp_variants, Key, NumericPair};

use std::fmt;
use std::sync::Arc;

/// A schema-less nested value (Snowflake `VARIANT`).
///
/// `Null` plays the role of both SQL `NULL` and JSON `null`; the engine follows
/// Snowflake in treating a JSON `null` stored in a `VARIANT` column as SQL-null for
/// predicate and aggregation purposes, which is the behaviour the paper's
/// flag-column translation depends on (`NULL`s are skipped by `ARRAY_AGG`).
#[derive(Clone)]
pub enum Variant {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Array(Arc<Vec<Variant>>),
    Object(Arc<Object>),
}

/// An insertion-ordered JSON object.
///
/// Objects in the workloads at hand are small (a handful of particle attributes),
/// so lookup is a linear scan over the field vector; this beats hashing for the
/// sizes involved and keeps serialization order stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Object {
    fields: Vec<(Arc<str>, Variant)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object { fields: Vec::new() }
    }

    /// Creates an object with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Object { fields: Vec::with_capacity(n) }
    }

    /// Inserts a field, replacing any existing field with the same key.
    pub fn insert(&mut self, key: impl Into<Arc<str>>, value: Variant) {
        let key = key.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| **k == *key) {
            slot.1 = value;
        } else {
            self.fields.push((key, value));
        }
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Variant> {
        self.fields.iter().find(|(k, _)| &**k == key).map(|(_, v)| v)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Variant)> {
        self.fields.iter().map(|(k, v)| (&**k, v))
    }
}

impl FromIterator<(Arc<str>, Variant)> for Object {
    fn from_iter<T: IntoIterator<Item = (Arc<str>, Variant)>>(iter: T) -> Self {
        let mut o = Object::new();
        for (k, v) in iter {
            o.insert(k, v);
        }
        o
    }
}

impl Variant {
    /// Convenience constructor for a string variant.
    pub fn str(s: impl AsRef<str>) -> Variant {
        Variant::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for an array variant.
    pub fn array(items: Vec<Variant>) -> Variant {
        Variant::Array(Arc::new(items))
    }

    /// Convenience constructor for an object variant.
    pub fn object(obj: Object) -> Variant {
        Variant::Object(Arc::new(obj))
    }

    /// True when the value is SQL/JSON null.
    pub fn is_null(&self) -> bool {
        matches!(self, Variant::Null)
    }

    /// Human-readable type name, used in error messages and `TYPEOF`.
    pub fn type_name(&self) -> &'static str {
        match self {
            Variant::Null => "NULL",
            Variant::Bool(_) => "BOOLEAN",
            Variant::Int(_) => "INTEGER",
            Variant::Float(_) => "DOUBLE",
            Variant::Str(_) => "VARCHAR",
            Variant::Array(_) => "ARRAY",
            Variant::Object(_) => "OBJECT",
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Variant::Int(i) => Some(*i as f64),
            Variant::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer (or an integral double).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Variant::Int(i) => Some(*i),
            Variant::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Variant::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Variant::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Variant]> {
        match self {
            Variant::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Variant::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Field access on objects; `Null` on non-objects or missing fields
    /// (Snowflake `GET` semantics).
    pub fn get_field(&self, key: &str) -> Variant {
        match self {
            Variant::Object(o) => o.get(key).cloned().unwrap_or(Variant::Null),
            _ => Variant::Null,
        }
    }

    /// Index access on arrays; `Null` when out of bounds or not an array
    /// (Snowflake `GET` semantics).
    pub fn get_index(&self, idx: i64) -> Variant {
        match self {
            Variant::Array(a) => {
                if idx >= 0 {
                    a.get(idx as usize).cloned().unwrap_or(Variant::Null)
                } else {
                    Variant::Null
                }
            }
            _ => Variant::Null,
        }
    }

    /// Estimated uncompressed size in bytes, used for micro-partition sizing and
    /// the bytes-scanned accounting of §V-E.
    pub fn estimated_size(&self) -> u64 {
        match self {
            Variant::Null => 1,
            Variant::Bool(_) => 1,
            Variant::Int(_) => 8,
            Variant::Float(_) => 8,
            Variant::Str(s) => s.len() as u64 + 2,
            Variant::Array(a) => 2 + a.iter().map(Variant::estimated_size).sum::<u64>(),
            Variant::Object(o) => {
                2 + o
                    .iter()
                    .map(|(k, v)| k.len() as u64 + 3 + v.estimated_size())
                    .sum::<u64>()
            }
        }
    }
}

impl fmt::Debug for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_json(self))
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Bare strings print unquoted, like Snowflake result display.
            Variant::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", to_json(other)),
        }
    }
}

impl From<bool> for Variant {
    fn from(b: bool) -> Self {
        Variant::Bool(b)
    }
}

impl From<i64> for Variant {
    fn from(i: i64) -> Self {
        Variant::Int(i)
    }
}

impl From<i32> for Variant {
    fn from(i: i32) -> Self {
        Variant::Int(i as i64)
    }
}

impl From<f64> for Variant {
    fn from(f: f64) -> Self {
        Variant::Float(f)
    }
}

impl From<&str> for Variant {
    fn from(s: &str) -> Self {
        Variant::str(s)
    }
}

impl From<String> for Variant {
    fn from(s: String) -> Self {
        Variant::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_insert_replaces_existing_key() {
        let mut o = Object::new();
        o.insert("a", Variant::Int(1));
        o.insert("b", Variant::Int(2));
        o.insert("a", Variant::Int(3));
        assert_eq!(o.len(), 2);
        assert_eq!(o.get("a"), Some(&Variant::Int(3)));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Object::new();
        o.insert("z", Variant::Int(1));
        o.insert("a", Variant::Int(2));
        let keys: Vec<&str> = o.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn get_field_on_non_object_is_null() {
        assert!(Variant::Int(1).get_field("x").is_null());
        assert!(Variant::Null.get_field("x").is_null());
    }

    #[test]
    fn get_index_semantics() {
        let a = Variant::array(vec![Variant::Int(10), Variant::Int(20)]);
        assert_eq!(a.get_index(1), Variant::Int(20));
        assert!(a.get_index(5).is_null());
        assert!(a.get_index(-1).is_null());
        assert!(Variant::Int(3).get_index(0).is_null());
    }

    #[test]
    fn as_i64_accepts_integral_floats() {
        assert_eq!(Variant::Float(4.0).as_i64(), Some(4));
        assert_eq!(Variant::Float(4.5).as_i64(), None);
        assert_eq!(Variant::Int(-7).as_i64(), Some(-7));
    }

    #[test]
    fn estimated_size_is_monotone_in_content() {
        let small = Variant::array(vec![Variant::Int(1)]);
        let big = Variant::array(vec![Variant::Int(1), Variant::str("hello world")]);
        assert!(big.estimated_size() > small.estimated_size());
    }
}
