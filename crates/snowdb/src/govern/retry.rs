//! Deterministic retry/backoff for optimistic commits.
//!
//! An optimistic writer that loses the manifest compare-and-swap race should
//! back off and retry on a fresh snapshot — but a production engine cannot
//! afford either unbounded retries (livelock dressed as patience) or
//! wall-clock-seeded jitter (unreproducible schedules). A [`RetryPolicy`] is
//! therefore a pure function of its seed: the delay before attempt `k` is an
//! exponentially growing, capped slot scaled by a splitmix64-derived jitter
//! factor in [50%, 100%], so two contending writers with different seeds
//! desynchronize while every schedule stays exactly reproducible — the same
//! discipline the chaos harness uses for fault schedules.

use std::time::Duration;

use super::chaos::splitmix64;
use crate::error::SnowError;

/// A bounded, seeded backoff schedule for [`SnowError::WriteConflict`] retries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Jitter seed; schedules with equal seeds are identical.
    pub seed: u64,
    /// Total attempts (first try included). `1` disables retrying.
    pub max_attempts: u32,
    /// Backoff slot for the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper bound on the (pre-jitter) slot.
    pub cap: Duration,
}

impl RetryPolicy {
    /// The commit path's default: up to 8 attempts, slots 1ms · 2^k capped at
    /// 32ms — enough to ride out a burst of contending writers, bounded well
    /// under any statement timeout.
    pub fn commit_default(seed: u64) -> RetryPolicy {
        RetryPolicy {
            seed,
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(32),
        }
    }

    /// A policy that never retries (transaction `COMMIT` uses this: the
    /// session must re-run its logic on a fresh snapshot, not replay blindly).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy { seed: 0, max_attempts: 1, base: Duration::ZERO, cap: Duration::ZERO }
    }

    /// The delay to sleep after failed attempt `attempt` (0-based). Pure in
    /// `(seed, attempt)`: the exponential slot `base · 2^attempt` is capped at
    /// `cap`, then scaled by a jitter factor in [1/2, 1] drawn from
    /// `splitmix64(seed ^ attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let slot = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let h = splitmix64(self.seed ^ u64::from(attempt));
        // 512..=1023 out of 1024: jitter keeps at least half the slot so the
        // exponential shape survives, while desynchronizing equal policies
        // with different seeds.
        let num = 512 + (h & 511);
        slot.mul_f64(num as f64 / 1024.0)
    }

    /// The full backoff schedule: one delay per retry (so
    /// `max_attempts - 1` entries).
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1)).map(|a| self.delay(a)).collect()
    }
}

/// Runs `f` under `policy`, retrying only on [`SnowError::WriteConflict`].
/// Each call receives the 0-based attempt index; the final conflict is
/// surfaced with its `attempts` count patched to the true total.
pub fn run<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut(u32) -> crate::error::Result<T>,
) -> crate::error::Result<T> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        match f(attempt) {
            Err(SnowError::WriteConflict(mut trip)) => {
                if attempt + 1 >= attempts {
                    trip.attempts = attempts;
                    return Err(SnowError::WriteConflict(trip));
                }
                std::thread::sleep(policy.delay(attempt));
            }
            other => return other,
        }
    }
    unreachable!("retry loop returns from its last attempt")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schedule is a pure function of the seed: recompute the expected
    /// delays from first principles and require exact equality.
    #[test]
    fn schedule_is_exact_for_a_fixed_seed() {
        let policy = RetryPolicy {
            seed: 0xDEC0DE,
            max_attempts: 6,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        };
        let got = policy.schedule();
        assert_eq!(got.len(), 5);
        let expected: Vec<Duration> = (0..5u32)
            .map(|a| {
                let slot = Duration::from_millis(1 << a).min(Duration::from_millis(8));
                let num = 512 + (splitmix64(0xDEC0DE ^ u64::from(a)) & 511);
                slot.mul_f64(num as f64 / 1024.0)
            })
            .collect();
        assert_eq!(got, expected);
        // Deterministic across calls; different per seed.
        assert_eq!(got, policy.schedule());
        let other = RetryPolicy { seed: 0xFACE, ..policy };
        assert_ne!(got, other.schedule());
    }

    #[test]
    fn delays_stay_within_half_open_slot_and_respect_cap() {
        let policy = RetryPolicy::commit_default(42);
        for a in 0..policy.max_attempts {
            let d = policy.delay(a);
            let slot = Duration::from_millis(1)
                .saturating_mul(1 << a.min(10))
                .min(Duration::from_millis(32));
            assert!(d >= slot.mul_f64(0.5), "attempt {a}: {d:?} below half slot {slot:?}");
            assert!(d <= slot, "attempt {a}: {d:?} above slot {slot:?}");
        }
        // Huge attempt indices must not overflow.
        let _ = policy.delay(u32::MAX);
    }

    #[test]
    fn run_retries_conflicts_only_and_patches_attempts() {
        let policy = RetryPolicy {
            seed: 1,
            max_attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(10),
        };
        // Conflict every time: surfaces after exactly max_attempts tries.
        let mut calls = 0;
        let err = run(&policy, |_| -> crate::error::Result<()> {
            calls += 1;
            Err(SnowError::write_conflict("T", 1, 2, "always"))
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        match err {
            SnowError::WriteConflict(trip) => assert_eq!(trip.attempts, 3),
            other => panic!("{other}"),
        }
        // Success on a later attempt stops retrying.
        let mut calls = 0;
        let v = run(&policy, |attempt| {
            calls += 1;
            if attempt < 1 {
                Err(SnowError::write_conflict("T", 1, 2, "once"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!((v, calls), (7, 2));
        // Non-conflict errors pass straight through.
        let mut calls = 0;
        let err = run(&policy, |_| -> crate::error::Result<()> {
            calls += 1;
            Err(SnowError::Exec("boom".into()))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(err, SnowError::Exec(_)));
    }
}
