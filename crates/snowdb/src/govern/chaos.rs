//! Deterministic seeded fault injection for the governance layer.
//!
//! A [`ChaosSchedule`] rides inside a [`QueryGovernor`](super::QueryGovernor)
//! and fires at the three classes of governance checkpoints:
//!
//! - [`ChaosSite::PartitionClaim`] — a morsel worker claiming a partition;
//! - [`ChaosSite::BatchStage`] — an operator's batch-boundary checkpoint;
//! - [`ChaosSite::BudgetAccount`] — a memory / bytes-scanned charge;
//! - [`ChaosSite::StoreRead`] — a lazy column-block read from a persistent
//!   partition file (rides in the query's governor like the sites above);
//! - [`ChaosSite::ManifestCommit`] — a step of the store's atomic catalog
//!   commit (armed on the [`Store`](crate::store::Store) itself, simulating a
//!   crash between temp-write and rename).
//!
//! At each hit the schedule decides — as a pure function of `(seed, site,
//! hit index)` via a splitmix64 hash — whether to inject, and whether the
//! fault is a typed error or a *real panic* (which the morsel layer must
//! isolate via `catch_unwind`). With one worker thread the whole schedule is
//! exactly reproducible from its seed; with many workers the set of decisions
//! is still seed-determined while the interleaving varies, which is precisely
//! the regime the soundness property targets: under every injected fault
//! schedule the query must end in either the correct result or a typed
//! [`SnowError`], and the engine must answer the next query correctly.
//!
//! To reproduce a CI failure, re-run the failing query with
//! `ChaosSchedule::new(seed)` (the seed is part of the uploaded repro) and
//! `SNOWDB_THREADS=1`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, SnowError};

/// Marker prefix carried by injected panic payloads, so the chaos tests'
/// panic hook can tell injected panics from real ones.
pub const CHAOS_PANIC_MARKER: &str = "chaos-injected-panic";

/// Classes of injection points, matching the governance checkpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosSite {
    /// A morsel worker claiming a micro-partition or batch index.
    PartitionClaim,
    /// An operator checkpoint at a batch boundary.
    BatchStage,
    /// A budget-accounting site (memory or bytes-scanned charge).
    BudgetAccount,
    /// A lazy column-block read from a persistent partition file.
    StoreRead,
    /// A step of the store's atomic manifest commit (temp-write / rename).
    /// Injection here simulates a crash mid-commit: the commit must either
    /// take effect entirely or leave the previous catalog version intact.
    ManifestCommit,
    /// A GC unlink of a partition file evicted from the retention window.
    /// Injection simulates a crash mid-sweep: the manifest commit has
    /// already happened, so recovery must converge (the file is re-swept on
    /// the next commit or open) and no retained version may lose a file.
    GcUnlink,
}

impl ChaosSite {
    fn tag(self) -> u64 {
        match self {
            ChaosSite::PartitionClaim => 0x9E37_79B9,
            ChaosSite::BatchStage => 0x85EB_CA6B,
            ChaosSite::BudgetAccount => 0xC2B2_AE35,
            ChaosSite::StoreRead => 0x27D4_EB2F,
            ChaosSite::ManifestCommit => 0x1656_67B1,
            ChaosSite::GcUnlink => 0x7FEB_352D,
        }
    }
}

/// A seeded fault schedule: decides per checkpoint hit whether to inject a
/// typed error or a panic.
#[derive(Debug)]
pub struct ChaosSchedule {
    seed: u64,
    /// Inject on roughly one in `period` hits (must be ≥ 1).
    period: u64,
    hits: AtomicU64,
}

impl ChaosSchedule {
    /// Default injection rate: roughly one fault per 31 checkpoint hits —
    /// frequent enough that most queries of the corpus see at least one
    /// fault, rare enough that some complete and exercise the compare path.
    pub const DEFAULT_PERIOD: u64 = 31;

    pub fn new(seed: u64) -> ChaosSchedule {
        ChaosSchedule::with_period(seed, ChaosSchedule::DEFAULT_PERIOD)
    }

    /// A schedule injecting on ~one in `period` hits.
    pub fn with_period(seed: u64, period: u64) -> ChaosSchedule {
        ChaosSchedule { seed, period: period.max(1), hits: AtomicU64::new(0) }
    }

    /// The schedule's seed (carried in repro reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Checkpoint hook: decides deterministically whether this hit injects a
    /// fault. Errors are typed [`SnowError::Internal`]; panics carry the
    /// [`CHAOS_PANIC_MARKER`] payload and must be isolated by the caller's
    /// `catch_unwind` layer.
    pub fn maybe_inject(&self, site: ChaosSite, op: &str) -> Result<()> {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.seed ^ site.tag() ^ hit.wrapping_mul(0x2545_F491_4F6C_DD1D));
        if !h.is_multiple_of(self.period) {
            return Ok(());
        }
        // One in four injected faults is a real panic; the rest are errors.
        if (h >> 32).is_multiple_of(4) {
            panic!(
                "{CHAOS_PANIC_MARKER}: hit {hit} at {site:?} in {op} (seed {})",
                self.seed
            );
        }
        Err(SnowError::internal(
            op,
            format!("injected fault: hit {hit} at {site:?} (seed {})", self.seed),
        ))
    }
}

/// splitmix64: the standard 64-bit finalizer; good avalanche, no state.
/// Shared with [`retry`](super::retry) for seeded backoff jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a schedule to `n` hits, recording which hits inject and how.
    fn trace(seed: u64, n: u64) -> Vec<(u64, bool)> {
        let s = ChaosSchedule::new(seed);
        let mut out = Vec::new();
        for hit in 0..n {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s.maybe_inject(ChaosSite::BatchStage, "t")
            }));
            out.push((hit, !matches!(&r, Ok(Ok(())))));
        }
        out
    }

    #[test]
    fn schedules_are_reproducible_per_seed() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let a = trace(7, 500);
        let b = trace(7, 500);
        let c = trace(8, 500);
        std::panic::set_hook(prev);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // The default rate actually fires within a few hundred hits.
        assert!(a.iter().any(|(_, injected)| *injected));
        // ... and does not fire on every hit.
        assert!(a.iter().any(|(_, injected)| !*injected));
    }

    #[test]
    fn injected_errors_are_typed_and_carry_the_seed() {
        let s = ChaosSchedule::with_period(3, 1);
        let mut saw_error = false;
        for _ in 0..64 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s.maybe_inject(ChaosSite::BudgetAccount, "Join")
            }));
            if let Ok(Err(SnowError::Internal(t))) = r {
                assert_eq!(t.op, "Join");
                assert!(t.detail.contains("seed 3"), "{}", t.detail);
                saw_error = true;
                break;
            }
        }
        assert!(saw_error);
    }
}
