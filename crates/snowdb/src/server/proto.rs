//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame on the wire is a little-endian `u32` payload length followed
//! by the payload; the first payload byte is the opcode. The framing layer
//! enforces a configurable maximum frame size *before* allocating — an
//! adversarial length prefix costs nothing — and every decoding failure is a
//! typed [`SnowError::Protocol`], never a panic and never an unbounded
//! allocation (untrusted element counts are checked against the bytes that
//! remain, so a forged count cannot pre-reserve memory it didn't ship).
//!
//! ## Frames
//!
//! | opcode | direction | name          | payload                                                 |
//! |--------|-----------|---------------|---------------------------------------------------------|
//! | `0x01` | c → s     | Hello         | `u32` protocol version, `str` auth token (stub)         |
//! | `0x02` | c → s     | Query         | `str` SQL statement                                     |
//! | `0x03` | c → s     | Cancel        | empty — trips the in-flight statement's governor        |
//! | `0x04` | c → s     | Goodbye       | empty — orderly close                                   |
//! | `0x81` | s → c     | HelloAck      | `u64` session id, `str` server banner                   |
//! | `0x82` | s → c     | ResultHeader  | `u32` column count, column names                        |
//! | `0x83` | s → c     | RowBatch      | `u32` row count, rows of `Variant`s (schema from header)|
//! | `0x84` | s → c     | ResultDone    | `u64` rows, compile µs, exec µs, bytes scanned, queued ms|
//! | `0x85` | s → c     | Message       | `str` statement message (DDL/DML/`SET` outcomes)        |
//! | `0x86` | s → c     | Error         | structured [`SnowError`] (kind byte + fields)           |
//!
//! One `Query` yields exactly one terminal frame: `Message`, `Error`, or
//! `ResultDone` (the latter preceded by one `ResultHeader` and zero or more
//! `RowBatch`es — results stream chunk-by-chunk, a client never needs the
//! whole result in one frame).

use std::io::{Read, Write};

use crate::error::{
    AdmissionTrip, DeadlineTrip, InternalTrip, ResourceTrip, Result, SnowError,
    WriteConflictTrip,
};
use crate::variant::{Object, Variant};

/// Protocol version spoken by this build; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default maximum frame size (16 MiB) — both sides enforce it on receive.
pub const DEFAULT_MAX_FRAME: u32 = 16 << 20;

/// Nesting depth cap for decoded `Variant`s, mirroring the JSON parser's
/// guard so a hostile frame cannot blow the stack.
const MAX_VARIANT_DEPTH: usize = 512;

/// Frame opcodes. Client-to-server opcodes have the high bit clear,
/// server-to-client opcodes have it set.
pub mod op {
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const CANCEL: u8 = 0x03;
    pub const GOODBYE: u8 = 0x04;
    pub const HELLO_ACK: u8 = 0x81;
    pub const RESULT_HEADER: u8 = 0x82;
    pub const ROW_BATCH: u8 = 0x83;
    pub const RESULT_DONE: u8 = 0x84;
    pub const MESSAGE: u8 = 0x85;
    pub const ERROR: u8 = 0x86;
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + payload) in a single `write_all`, so
/// concurrent writers on a duplicated socket never interleave partial frames.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
        .map_err(|e| SnowError::Protocol(format!("write failed: {e}")))
}

/// Reads one frame payload, enforcing `max_frame` before allocating.
/// Returns `Ok(None)` on a clean EOF at a frame boundary; EOF mid-frame is a
/// typed protocol error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(SnowError::Protocol(format!("read failed: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(SnowError::Protocol(format!(
            "frame length {len} exceeds maximum {max_frame}"
        )));
    }
    if len == 0 {
        return Err(SnowError::Protocol("empty frame (no opcode)".into()));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| SnowError::Protocol(format!("truncated frame ({len} byte payload): {e}")))?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// Payload writer: plain byte-appends, infallible.
pub struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new(opcode: u8) -> Enc {
        Enc { buf: vec![opcode] }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn variant(&mut self, v: &Variant) {
        match v {
            Variant::Null => self.u8(0),
            Variant::Bool(false) => self.u8(1),
            Variant::Bool(true) => self.u8(2),
            Variant::Int(n) => {
                self.u8(3);
                self.i64(*n);
            }
            Variant::Float(x) => {
                self.u8(4);
                self.f64(*x);
            }
            Variant::Str(s) => {
                self.u8(5);
                self.str(s);
            }
            Variant::Array(items) => {
                self.u8(6);
                self.u32(items.len() as u32);
                for item in items.iter() {
                    self.variant(item);
                }
            }
            Variant::Object(obj) => {
                self.u8(7);
                self.u32(obj.len() as u32);
                for (k, val) in obj.iter() {
                    self.str(k);
                    self.variant(val);
                }
            }
        }
    }

    pub fn error(&mut self, e: &SnowError) {
        fn simple(enc: &mut Enc, kind: u8, msg: &str) {
            enc.u8(kind);
            enc.str(msg);
        }
        match e {
            SnowError::Lex(m) => simple(self, 0, m),
            SnowError::Parse(m) => simple(self, 1, m),
            SnowError::Plan(m) => simple(self, 2, m),
            SnowError::Exec(m) => simple(self, 3, m),
            SnowError::Catalog(m) => simple(self, 4, m),
            SnowError::Json(m) => simple(self, 5, m),
            SnowError::Storage(m) => simple(self, 6, m),
            SnowError::Protocol(m) => simple(self, 7, m),
            SnowError::Cancelled { op } => simple(self, 8, op),
            SnowError::DeadlineExceeded(t) => {
                self.u8(9);
                self.str(&t.op);
                self.u64(t.elapsed_ms);
                self.u64(t.limit_ms);
            }
            SnowError::ResourceExhausted(t) => {
                self.u8(10);
                self.str(&t.resource);
                self.str(&t.op);
                self.u64(t.used);
                self.u64(t.limit);
            }
            SnowError::Internal(t) => {
                self.u8(11);
                self.str(&t.op);
                self.str(&t.detail);
            }
            SnowError::WriteConflict(t) => {
                self.u8(12);
                self.str(&t.table);
                self.u64(t.base_version);
                self.u64(t.current_version);
                self.u32(t.attempts);
                self.str(&t.detail);
            }
            SnowError::Rejected(t) => {
                self.u8(13);
                self.str(&t.reason);
                self.u64(t.session);
                self.u64(t.queued_ms);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Payload decoding (untrusted input)
// ---------------------------------------------------------------------------

/// Cursor over an untrusted payload: every read is bounds-checked and fails
/// with a typed [`SnowError::Protocol`].
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole payload was consumed — terminal decoders call
    /// this so trailing garbage is a protocol error, not silently ignored.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnowError::Protocol(format!(
                "{} trailing byte(s) after frame body",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnowError::Protocol(format!(
                "frame truncated: wanted {n} byte(s), {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnowError::Protocol("string field is not valid UTF-8".into()))
    }

    pub fn variant(&mut self) -> Result<Variant> {
        self.variant_at(0)
    }

    fn variant_at(&mut self, depth: usize) -> Result<Variant> {
        if depth > MAX_VARIANT_DEPTH {
            return Err(SnowError::Protocol(format!(
                "variant nesting exceeds depth {MAX_VARIANT_DEPTH}"
            )));
        }
        match self.u8()? {
            0 => Ok(Variant::Null),
            1 => Ok(Variant::Bool(false)),
            2 => Ok(Variant::Bool(true)),
            3 => Ok(Variant::Int(self.i64()?)),
            4 => Ok(Variant::Float(self.f64()?)),
            5 => Ok(Variant::str(self.str()?)),
            6 => {
                let count = self.u32()? as usize;
                // A forged count cannot reserve memory: each element consumes
                // at least one byte, so bound it by what actually arrived.
                if count > self.remaining() {
                    return Err(SnowError::Protocol(format!(
                        "array count {count} exceeds {} remaining byte(s)",
                        self.remaining()
                    )));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.variant_at(depth + 1)?);
                }
                Ok(Variant::array(items))
            }
            7 => {
                let count = self.u32()? as usize;
                if count > self.remaining() {
                    return Err(SnowError::Protocol(format!(
                        "object count {count} exceeds {} remaining byte(s)",
                        self.remaining()
                    )));
                }
                let mut obj = Object::with_capacity(count);
                for _ in 0..count {
                    let key = self.str()?;
                    obj.insert(key, self.variant_at(depth + 1)?);
                }
                Ok(Variant::object(obj))
            }
            tag => Err(SnowError::Protocol(format!("unknown variant tag {tag}"))),
        }
    }

    pub fn error(&mut self) -> Result<SnowError> {
        Ok(match self.u8()? {
            0 => SnowError::Lex(self.str()?),
            1 => SnowError::Parse(self.str()?),
            2 => SnowError::Plan(self.str()?),
            3 => SnowError::Exec(self.str()?),
            4 => SnowError::Catalog(self.str()?),
            5 => SnowError::Json(self.str()?),
            6 => SnowError::Storage(self.str()?),
            7 => SnowError::Protocol(self.str()?),
            8 => SnowError::Cancelled { op: self.str()? },
            9 => SnowError::DeadlineExceeded(Box::new(DeadlineTrip {
                op: self.str()?,
                elapsed_ms: self.u64()?,
                limit_ms: self.u64()?,
            })),
            10 => SnowError::ResourceExhausted(Box::new(ResourceTrip {
                resource: self.str()?,
                op: self.str()?,
                used: self.u64()?,
                limit: self.u64()?,
            })),
            11 => SnowError::Internal(Box::new(InternalTrip {
                op: self.str()?,
                detail: self.str()?,
            })),
            12 => SnowError::WriteConflict(Box::new(WriteConflictTrip {
                table: self.str()?,
                base_version: self.u64()?,
                current_version: self.u64()?,
                attempts: self.u32()?,
                detail: self.str()?,
            })),
            13 => SnowError::Rejected(Box::new(AdmissionTrip {
                reason: self.str()?,
                session: self.u64()?,
                queued_ms: self.u64()?,
            })),
            kind => {
                return Err(SnowError::Protocol(format!("unknown error kind {kind}")))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Frame constructors (the handful both sides build)
// ---------------------------------------------------------------------------

pub fn hello(token: &str) -> Vec<u8> {
    let mut e = Enc::new(op::HELLO);
    e.u32(PROTOCOL_VERSION);
    e.str(token);
    e.buf
}

pub fn hello_ack(session: u64, banner: &str) -> Vec<u8> {
    let mut e = Enc::new(op::HELLO_ACK);
    e.u64(session);
    e.str(banner);
    e.buf
}

pub fn query(sql: &str) -> Vec<u8> {
    let mut e = Enc::new(op::QUERY);
    e.str(sql);
    e.buf
}

pub fn message(text: &str) -> Vec<u8> {
    let mut e = Enc::new(op::MESSAGE);
    e.str(text);
    e.buf
}

pub fn error_frame(err: &SnowError) -> Vec<u8> {
    let mut e = Enc::new(op::ERROR);
    e.error(err);
    e.buf
}

pub fn result_header(columns: &[String]) -> Vec<u8> {
    let mut e = Enc::new(op::RESULT_HEADER);
    e.u32(columns.len() as u32);
    for c in columns {
        e.str(c);
    }
    e.buf
}

/// Statement-completion summary shipped in the terminal `ResultDone` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Done {
    pub rows: u64,
    pub compile_us: u64,
    pub exec_us: u64,
    pub bytes_scanned: u64,
    pub queued_ms: u64,
}

pub fn result_done(d: Done) -> Vec<u8> {
    let mut e = Enc::new(op::RESULT_DONE);
    e.u64(d.rows);
    e.u64(d.compile_us);
    e.u64(d.exec_us);
    e.u64(d.bytes_scanned);
    e.u64(d.queued_ms);
    e.buf
}

pub fn decode_done(d: &mut Dec<'_>) -> Result<Done> {
    let done = Done {
        rows: d.u64()?,
        compile_us: d.u64()?,
        exec_us: d.u64()?,
        bytes_scanned: d.u64()?,
        queued_ms: d.u64()?,
    };
    d.finish()?;
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_variant(v: &Variant) {
        let mut e = Enc::new(0);
        e.variant(v);
        let mut d = Dec::new(&e.buf[1..]);
        assert_eq!(&d.variant().unwrap(), v);
        d.finish().unwrap();
    }

    #[test]
    fn variants_roundtrip() {
        let mut obj = Object::new();
        obj.insert("a", Variant::Int(-5));
        obj.insert("b", Variant::array(vec![Variant::Null, Variant::Bool(true)]));
        for v in [
            Variant::Null,
            Variant::Bool(false),
            Variant::Int(i64::MIN),
            Variant::Float(f64::NAN),
            Variant::str("héllo"),
            Variant::array(vec![Variant::Float(0.5), Variant::str("")]),
            Variant::object(obj),
        ] {
            // NaN != NaN under PartialEq would fail the roundtrip assert;
            // encode NaN via bit-pattern comparison instead.
            if let Variant::Float(x) = v {
                if x.is_nan() {
                    let mut e = Enc::new(0);
                    e.variant(&v);
                    let mut d = Dec::new(&e.buf[1..]);
                    match d.variant().unwrap() {
                        Variant::Float(y) => assert!(y.is_nan()),
                        other => panic!("unexpected {other:?}"),
                    }
                    continue;
                }
            }
            roundtrip_variant(&v);
        }
    }

    #[test]
    fn errors_roundtrip_structurally() {
        let errors = vec![
            SnowError::Parse("bad token".into()),
            SnowError::Protocol("oversized".into()),
            SnowError::Cancelled { op: "Filter".into() },
            SnowError::DeadlineExceeded(Box::new(DeadlineTrip {
                op: "Sort".into(),
                elapsed_ms: 12,
                limit_ms: 10,
            })),
            SnowError::ResourceExhausted(Box::new(ResourceTrip {
                resource: "memory".into(),
                op: "Join".into(),
                used: 200,
                limit: 100,
            })),
            SnowError::Internal(Box::new(InternalTrip {
                op: "executor".into(),
                detail: "boom".into(),
            })),
            SnowError::write_conflict("T", 3, 5, "partition rewritten"),
            SnowError::rejected("queue full", 7, 42),
        ];
        for err in errors {
            let frame = error_frame(&err);
            let mut d = Dec::new(&frame[1..]);
            assert_eq!(d.error().unwrap(), err);
            d.finish().unwrap();
        }
    }

    #[test]
    fn forged_counts_and_depth_are_typed_errors() {
        // Array claiming 2^31 elements with a 10-byte body.
        let mut e = Enc::new(0);
        e.u8(6);
        e.u32(1 << 31);
        e.buf.extend_from_slice(&[0; 6]);
        let mut d = Dec::new(&e.buf[1..]);
        assert!(matches!(d.variant(), Err(SnowError::Protocol(_))));

        // Arrays nested past the depth guard: each level is tag 6 + count 1.
        let mut deep = Vec::new();
        for _ in 0..600 {
            deep.push(6u8);
            deep.extend_from_slice(&1u32.to_le_bytes());
        }
        deep.push(0);
        let mut d = Dec::new(&deep);
        match d.variant() {
            Err(SnowError::Protocol(m)) => assert!(m.contains("depth"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_and_non_utf8_fields_are_typed_errors() {
        let mut d = Dec::new(&[3, 1, 2]);
        assert!(matches!(d.variant(), Err(SnowError::Protocol(_))));
        // str with invalid UTF-8.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut d = Dec::new(&buf);
        assert!(matches!(d.str(), Err(SnowError::Protocol(_))));
    }

    #[test]
    fn frame_io_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &query("SELECT 1")).unwrap();
        let mut r = std::io::Cursor::new(buf);
        let payload = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(payload[0], op::QUERY);
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none(), "clean EOF");

        // Oversized length prefix fails before any allocation.
        let mut r = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        match read_frame(&mut r, 1024) {
            Err(SnowError::Protocol(m)) => assert!(m.contains("exceeds maximum"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }

        // Truncated payload is a typed error, not a hang or a panic.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_le_bytes());
        truncated.extend_from_slice(&[1, 2, 3]);
        let mut r = std::io::Cursor::new(truncated);
        assert!(matches!(read_frame(&mut r, 1024), Err(SnowError::Protocol(_))));
    }

    /// Seeded byte-mangling: decoding arbitrary garbage must always yield
    /// `Ok` or a typed protocol error — never a panic or runaway allocation.
    #[test]
    fn fuzzed_payloads_never_panic() {
        let mut state = 0x5EED_F00Du64;
        let mut next = move || {
            state = crate::govern::chaos::splitmix64(state);
            state
        };
        for _ in 0..500 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            let mut d = Dec::new(&bytes);
            let _ = d.variant();
            let mut d = Dec::new(&bytes);
            let _ = d.error();
            let mut d = Dec::new(&bytes);
            let _ = d.str();
        }
    }
}
