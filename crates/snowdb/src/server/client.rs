//! A minimal blocking client for the wire protocol.
//!
//! [`Client`] drives one connection: connect + handshake, then one statement
//! at a time with [`Client::execute`]. A [`Canceller`] — a cheap clone of the
//! socket — can interrupt the statement in flight from another thread, which
//! is how the REPL maps Ctrl-C onto a wire cancel.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::{Result, SnowError};
use crate::variant::Variant;

use super::proto::{self, op, Dec, Done};

/// Outcome of one remote statement.
#[derive(Clone, Debug)]
pub enum RemoteOutcome {
    /// A query: columns, all rows (re-assembled from the streamed batches),
    /// and the completion summary.
    Rows(RemoteResult),
    /// DDL / DML / session-verb acknowledgement.
    Message(String),
}

/// A remote query result.
#[derive(Clone, Debug)]
pub struct RemoteResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Variant>>,
    pub done: Done,
}

/// One wire-protocol connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    session: u64,
    banner: String,
    max_frame: u32,
}

impl Client {
    /// Connects, handshakes, and returns a ready client.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, "", proto::DEFAULT_MAX_FRAME)
    }

    /// [`Client::connect`] with an auth token (currently a stub the server
    /// accepts verbatim) and a receive-side frame limit.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        token: &str,
        max_frame: u32,
    ) -> Result<Client> {
        let writer = TcpStream::connect(addr)
            .map_err(|e| SnowError::Protocol(format!("connect failed: {e}")))?;
        let reader = BufReader::new(
            writer
                .try_clone()
                .map_err(|e| SnowError::Protocol(format!("socket clone failed: {e}")))?,
        );
        let mut client = Client { writer, reader, session: 0, banner: String::new(), max_frame };
        proto::write_frame(&mut client.writer, &proto::hello(token))?;
        let payload = client.read_payload()?;
        let mut d = Dec::new(&payload);
        match d.u8()? {
            op::HELLO_ACK => {
                client.session = d.u64()?;
                client.banner = d.str()?;
                d.finish()?;
                Ok(client)
            }
            op::ERROR => Err(d.error()?),
            other => Err(SnowError::Protocol(format!(
                "expected HelloAck, got opcode {other:#04x}"
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The server banner from the handshake.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// A handle that can cancel this client's in-flight statement from
    /// another thread.
    pub fn canceller(&self) -> Result<Canceller> {
        Ok(Canceller {
            stream: self
                .writer
                .try_clone()
                .map_err(|e| SnowError::Protocol(format!("socket clone failed: {e}")))?,
        })
    }

    /// Bounds how long a read may block (used by shutdown-sensitive tests).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| SnowError::Protocol(format!("set_read_timeout failed: {e}")))
    }

    /// Runs one statement and blocks until its terminal frame. Server-side
    /// errors (including typed cancellations and admission rejections) come
    /// back as the original [`SnowError`], re-decoded from the error frame.
    pub fn execute(&mut self, sql: &str) -> Result<RemoteOutcome> {
        proto::write_frame(&mut self.writer, &proto::query(sql))?;
        let mut columns: Option<Vec<String>> = None;
        let mut rows: Vec<Vec<Variant>> = Vec::new();
        loop {
            let payload = self.read_payload()?;
            let mut d = Dec::new(&payload);
            match d.u8()? {
                op::RESULT_HEADER => {
                    let n = d.u32()? as usize;
                    if n > payload.len() {
                        return Err(SnowError::Protocol(format!(
                            "column count {n} exceeds frame size"
                        )));
                    }
                    let mut cols = Vec::with_capacity(n);
                    for _ in 0..n {
                        cols.push(d.str()?);
                    }
                    d.finish()?;
                    columns = Some(cols);
                }
                op::ROW_BATCH => {
                    let Some(cols) = &columns else {
                        return Err(SnowError::Protocol("RowBatch before ResultHeader".into()));
                    };
                    let n = d.u32()? as usize;
                    if n > payload.len() {
                        return Err(SnowError::Protocol(format!(
                            "row count {n} exceeds frame size"
                        )));
                    }
                    for _ in 0..n {
                        let mut row = Vec::with_capacity(cols.len());
                        for _ in 0..cols.len() {
                            row.push(d.variant()?);
                        }
                        rows.push(row);
                    }
                    d.finish()?;
                }
                op::RESULT_DONE => {
                    let done = proto::decode_done(&mut d)?;
                    let columns = columns.ok_or_else(|| {
                        SnowError::Protocol("ResultDone before ResultHeader".into())
                    })?;
                    return Ok(RemoteOutcome::Rows(RemoteResult { columns, rows, done }));
                }
                op::MESSAGE => {
                    let msg = d.str()?;
                    d.finish()?;
                    return Ok(RemoteOutcome::Message(msg));
                }
                op::ERROR => return Err(d.error()?),
                other => {
                    return Err(SnowError::Protocol(format!(
                        "unexpected opcode {other:#04x} while awaiting result"
                    )))
                }
            }
        }
    }

    /// Sends an orderly Goodbye. Dropping the client without calling this is
    /// equivalent to a disconnect (the server cancels any in-flight work).
    pub fn goodbye(mut self) {
        let _ = proto::write_frame(&mut self.writer, &[op::GOODBYE]);
    }

    fn read_payload(&mut self) -> Result<Vec<u8>> {
        proto::read_frame(&mut self.reader, self.max_frame)?
            .ok_or_else(|| SnowError::Protocol("server closed the connection".into()))
    }
}

/// Cross-thread cancel handle: writes one `Cancel` frame on the shared
/// socket. Frame writes are a single `write_all`, so a cancel issued while
/// the owning thread is blocked reading a result never interleaves bytes.
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    pub fn cancel(&mut self) -> Result<()> {
        proto::write_frame(&mut self.stream, &[op::CANCEL])
    }
}
