//! The network service layer: a wire-protocol server over an embedded
//! [`Database`].
//!
//! `snowdb` was embedded-only through PR 8; this module turns it into a
//! servable product. The pieces:
//!
//! - [`proto`] — the length-prefixed binary frame format (shared with the
//!   client);
//! - [`admission`] — the global admission controller: concurrency cap,
//!   bounded queue with queue-wait deadlines, per-session round-robin
//!   fairness, typed rejections;
//! - [`conn`] — per-connection protocol handling (handshake, statement
//!   execution, streamed results, end-to-end cancellation);
//! - [`client`] — a small blocking client used by `snowq-client`, the REPL's
//!   `--connect` mode, and the integration tests.
//!
//! ## Threading
//!
//! The listener is std-only thread-per-connection, bounded by
//! [`ServerConfig::max_connections`] — a connection beyond the bound is
//! answered with a typed error frame and closed, so the thread count is
//! capped without silently dropping clients. Statement concurrency is the
//! admission controller's job, not the thread pool's: connected-but-idle
//! sessions are cheap, running statements are the scarce resource.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] is graceful: stop accepting, reject queued
//! statements with typed errors, give in-flight statements a drain window,
//! then trip the governors of whatever is still running (they surface typed
//! cancellations within one batch boundary) and close every socket. No
//! committed write is ever lost — cancellation only interrupts statements
//! before their commit point, it never tears one down after it.

pub mod admission;
pub mod client;
pub mod conn;
pub mod proto;

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Database;
use crate::error::{Result, SnowError};
use crate::variant::Variant;

use admission::{AdmissionConfig, AdmissionController};
use conn::CancelSlot;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Largest frame accepted from a client (the length prefix is validated
    /// before any allocation).
    pub max_frame: u32,
    /// Concurrent connections; one past the bound is refused with a typed
    /// error frame.
    pub max_connections: usize,
    /// Admission-control tunables (statement concurrency, queue bound,
    /// queue-wait deadline).
    pub admission: AdmissionConfig,
    /// How long [`ServerHandle::shutdown`] lets in-flight statements finish
    /// before tripping their governors.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_frame: proto::DEFAULT_MAX_FRAME,
            max_connections: 64,
            admission: AdmissionConfig::default(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// One live connection, as seen by the registry: enough to cancel its work
/// and close its socket during shutdown.
struct ConnEntry {
    id: u64,
    stream: TcpStream,
    cancel: Arc<CancelSlot>,
}

/// State shared between the accept loop, every connection, and the handle.
pub(crate) struct ServerShared {
    pub(crate) db: Arc<Database>,
    pub(crate) config: ServerConfig,
    pub(crate) admission: Arc<AdmissionController>,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    conns: Mutex<Vec<ConnEntry>>,
    total_connections: AtomicU64,
    peak_connections: AtomicU64,
    disconnect_cancels: AtomicU64,
    panics_isolated: AtomicU64,
}

impl ServerShared {
    pub(crate) fn note_disconnect_cancel(&self) {
        self.disconnect_cancels.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_panic(&self) {
        self.panics_isolated.fetch_add(1, Ordering::Relaxed);
    }

    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<ConnEntry>> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// `SHOW SERVER STATUS` rows: global counters plus a per-session
    /// admission breakdown.
    pub(crate) fn status_rows(&self) -> (Vec<String>, Vec<Vec<Variant>>) {
        let columns = vec!["METRIC".to_string(), "VALUE".to_string()];
        let a = self.admission.stats();
        let mut rows: Vec<Vec<Variant>> = vec![
            row("connections.active", self.lock_conns().len() as i64),
            row("connections.peak", self.peak_connections.load(Ordering::Relaxed) as i64),
            row("connections.total", self.total_connections.load(Ordering::Relaxed) as i64),
            row("admission.active", a.active as i64),
            row("admission.queued", a.queued as i64),
            row("admission.peak_active", a.peak_active as i64),
            row("admission.peak_queued", a.peak_queued as i64),
            row("admission.admitted", a.admitted as i64),
            row("admission.rejected", a.rejected as i64),
            row("admission.total_queued_ms", a.total_queued_ms as i64),
            row("cancel.disconnects", self.disconnect_cancels.load(Ordering::Relaxed) as i64),
            row("panics.isolated", self.panics_isolated.load(Ordering::Relaxed) as i64),
        ];
        for (session, s) in self.admission.session_stats() {
            rows.push(row(&format!("session.{session}.admitted"), s.admitted as i64));
            rows.push(row(&format!("session.{session}.rejected"), s.rejected as i64));
            rows.push(row(&format!("session.{session}.queued_ms"), s.total_queued_ms as i64));
        }
        (columns, rows)
    }
}

fn row(metric: &str, value: i64) -> Vec<Variant> {
    vec![Variant::str(metric), Variant::Int(value)]
}

/// A running server: the bound address plus the shutdown control.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `listen` and serves `db` until [`ServerHandle::shutdown`]. Bind
/// `"127.0.0.1:0"` to get an ephemeral port (see [`ServerHandle::addr`]).
pub fn serve(
    db: Arc<Database>,
    listen: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(listen)
        .map_err(|e| SnowError::Protocol(format!("bind failed: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| SnowError::Protocol(format!("local_addr failed: {e}")))?;
    let shared = Arc::new(ServerShared {
        db,
        admission: AdmissionController::new(config.admission.clone()),
        config,
        shutting_down: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        conns: Mutex::new(Vec::new()),
        total_connections: AtomicU64::new(0),
        peak_connections: AtomicU64::new(0),
        disconnect_cancels: AtomicU64::new(0),
        panics_isolated: AtomicU64::new(0),
    });
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_threads = Arc::clone(&conn_threads);
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, &accept_threads);
    });

    Ok(ServerHandle { shared, addr, accept_thread: Some(accept_thread), conn_threads })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);

        {
            let mut conns = shared.lock_conns();
            if conns.len() >= shared.config.max_connections {
                drop(conns);
                let mut s = stream;
                let err = SnowError::Protocol(format!(
                    "connection limit {} reached",
                    shared.config.max_connections
                ));
                let _ = proto::write_frame(&mut s, &proto::error_frame(&err));
                let _ = s.shutdown(std::net::Shutdown::Both);
                continue;
            }
            let cancel = CancelSlot::new();
            if let Ok(clone) = stream.try_clone() {
                conns.push(ConnEntry { id: session_id, stream: clone, cancel: Arc::clone(&cancel) });
            }
            let n = conns.len() as u64;
            shared.peak_connections.fetch_max(n, Ordering::Relaxed);
            shared.total_connections.fetch_add(1, Ordering::Relaxed);
            drop(conns);

            let conn_shared = Arc::clone(shared);
            let handle = std::thread::spawn(move || {
                conn::run(&conn_shared, stream, session_id, cancel);
                conn_shared.lock_conns().retain(|c| c.id != session_id);
            });
            conn_threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
        }
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Admission / connection counters (the same numbers
    /// `SHOW SERVER STATUS` reports over the wire).
    pub fn admission_stats(&self) -> admission::AdmissionStats {
        self.shared.admission.stats()
    }

    /// Per-session admission counters.
    pub fn session_stats(&self) -> Vec<(u64, admission::SessionAdmission)> {
        self.shared.admission.session_stats()
    }

    /// Isolated worker panics observed so far (should stay zero).
    pub fn panics_isolated(&self) -> u64 {
        self.shared.panics_isolated.load(Ordering::Relaxed)
    }

    /// Cancellations triggered by client disconnects.
    pub fn disconnect_cancels(&self) -> u64 {
        self.shared.disconnect_cancels.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, reject queued statements, drain
    /// in-flight ones for [`ServerConfig::drain_timeout`], trip whatever is
    /// still running, close every socket, and join all threads. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it re-checks the flag per connection, so
        // one throwaway self-connect gets it to observe the shutdown.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }

        // Queued statements abort now with typed errors; in-flight ones get
        // the drain window, then their governors are tripped.
        self.shared.admission.begin_shutdown();
        let still_active = self
            .shared
            .admission
            .wait_drained(self.shared.config.drain_timeout);
        if still_active > 0 {
            for entry in self.shared.lock_conns().iter() {
                entry.cancel.trip();
            }
            self.shared.admission.wait_drained(self.shared.config.drain_timeout);
        }

        // Close every socket; readers fail out, command loops exit.
        for entry in self.shared.lock_conns().iter() {
            let _ = entry.stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
