//! Per-connection protocol handling.
//!
//! Each accepted socket gets two threads:
//!
//! - the **reader** thread blocks on the socket, parses frames, and forwards
//!   commands over an in-process channel. It never writes to the socket. Two
//!   frames it handles itself, because they must act while a query is
//!   running: `Cancel` trips the in-flight statement's governor through the
//!   shared [`CancelSlot`], and EOF / an I/O error (client disconnect) does
//!   the same before telling the command loop to exit;
//! - the **command** thread (the sole socket writer) drains the channel:
//!   admits each statement through the [`AdmissionController`], arms a
//!   cancellable [`QueryGovernor`], executes on the connection's
//!   [`Session`], and streams results back chunk-by-chunk.
//!
//! A protocol violation (oversized frame, unknown opcode, handshake replay)
//! produces one typed error frame and a clean close — the reader forwards the
//! violation as a fatal command rather than writing itself.

use std::io::Write as _;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::engine::{QueryResult, StatementResult};
use crate::error::{Result, SnowError};
use crate::govern::{panic_message, QueryGovernor};
use crate::session::Session;
use crate::sql::{parse_statement, Statement};
use crate::variant::Variant;

use super::proto::{self, op, Dec, Done, Enc};
use super::ServerShared;

/// Rows per `RowBatch` frame. Small enough that cancellation latency (one
/// batch flush) stays low; large enough that framing overhead is noise.
pub(crate) const BATCH_ROWS: usize = 512;

/// Cancellation rendezvous between the reader thread and the command loop.
///
/// Two races are resolved by the statement counters:
///
/// - a `Cancel` frame can outrun the command loop (the query it targets is
///   forwarded but its governor is not armed yet). TCP ordering guarantees
///   the cancel was sent after its query, so when `forwarded > completed`
///   the cancel is latched as `Pending` and fires the moment the statement
///   arms;
/// - a `Cancel` frame can arrive *stale* — sent while a result was already
///   in flight back to the client. Then `forwarded == completed` and the
///   cancel is a no-op; it must NOT latch, or it would kill the connection's
///   next, unrelated statement.
pub(crate) struct CancelSlot {
    state: Mutex<CancelState>,
}

struct CancelState {
    /// `Query` frames the reader has forwarded to the command loop.
    forwarded: u64,
    /// Statements the command loop has finished (response written or about
    /// to be written; the governor is past the point of cancellation).
    completed: u64,
    mode: CancelMode,
}

enum CancelMode {
    Idle,
    Armed(Arc<QueryGovernor>),
    Pending,
}

impl CancelSlot {
    pub(crate) fn new() -> Arc<CancelSlot> {
        Arc::new(CancelSlot {
            state: Mutex::new(CancelState {
                forwarded: 0,
                completed: 0,
                mode: CancelMode::Idle,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CancelState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reader-side: a `Query` frame was forwarded to the command loop.
    fn note_forwarded(&self) {
        self.lock().forwarded += 1;
    }

    /// Trips the armed governor, latches for a forwarded-but-not-yet-armed
    /// statement, or no-ops when nothing is outstanding. Returns true when a
    /// running statement was actually tripped.
    pub(crate) fn trip(&self) -> bool {
        let mut st = self.lock();
        match &st.mode {
            CancelMode::Armed(gov) => {
                gov.cancel();
                true
            }
            _ if st.forwarded > st.completed => {
                st.mode = CancelMode::Pending;
                false
            }
            _ => false,
        }
    }

    fn arm(&self, gov: &Arc<QueryGovernor>) {
        let mut st = self.lock();
        if matches!(st.mode, CancelMode::Pending) {
            gov.cancel();
        }
        st.mode = CancelMode::Armed(Arc::clone(gov));
    }

    /// Command-loop side: the current statement is done (its outcome is
    /// decided). Called *before* the response is written, so a cancel the
    /// client sends on seeing the response can never latch onto it.
    fn statement_done(&self) {
        let mut st = self.lock();
        st.completed += 1;
        st.mode = CancelMode::Idle;
    }
}

/// Commands the reader forwards to the command loop.
enum Cmd {
    Query(String),
    /// Orderly `Goodbye` from the client.
    Goodbye,
    /// The socket died (EOF or I/O error); exit without writing.
    Disconnect,
    /// Protocol violation: write this error frame, then close.
    Fatal(SnowError),
}

/// Runs one connection to completion. `stream` is the accepted socket; the
/// caller (accept loop) already registered the connection in `shared`.
pub(crate) fn run(
    shared: &Arc<ServerShared>,
    mut stream: TcpStream,
    session_id: u64,
    cancel: Arc<CancelSlot>,
) {
    let max_frame = shared.config.max_frame;

    // Handshake happens inline, before the reader thread exists: exactly one
    // Hello, answered with HelloAck (or a typed error for anything else).
    match read_hello(&mut stream, max_frame) {
        Ok(()) => {
            let ack = proto::hello_ack(
                session_id,
                &format!("snowdb-server protocol {}", proto::PROTOCOL_VERSION),
            );
            if proto::write_frame(&mut stream, &ack).is_err() {
                return;
            }
        }
        Err(e) => {
            let _ = proto::write_frame(&mut stream, &proto::error_frame(&e));
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }

    let (tx, rx) = mpsc::channel::<Cmd>();
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reader_cancel = Arc::clone(&cancel);
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::spawn(move || {
        read_loop(reader_stream, max_frame, &tx, &reader_cancel, &reader_shared);
    });

    let session = Session::new(Arc::clone(&shared.db));
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Query(sql) => {
                if !handle_statement(shared, &session, &mut stream, session_id, &cancel, &sql) {
                    break;
                }
            }
            Cmd::Goodbye | Cmd::Disconnect => break,
            Cmd::Fatal(e) => {
                let _ = proto::write_frame(&mut stream, &proto::error_frame(&e));
                break;
            }
        }
    }

    // Unblock and reap the reader: closing the socket fails its blocking read.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
}

fn read_hello(stream: &mut TcpStream, max_frame: u32) -> Result<()> {
    let payload = proto::read_frame(stream, max_frame)?
        .ok_or_else(|| SnowError::Protocol("connection closed before Hello".into()))?;
    let mut d = Dec::new(&payload);
    match d.u8()? {
        op::HELLO => {}
        other => {
            return Err(SnowError::Protocol(format!(
                "expected Hello (0x01) as first frame, got opcode {other:#04x}"
            )))
        }
    }
    let version = d.u32()?;
    if version != proto::PROTOCOL_VERSION {
        return Err(SnowError::Protocol(format!(
            "protocol version {version} not supported (server speaks {})",
            proto::PROTOCOL_VERSION
        )));
    }
    let _token = d.str()?; // Auth stub: any token is accepted, none required.
    d.finish()
}

/// Reader-thread loop: parse frames, act on Cancel, forward the rest.
fn read_loop(
    mut stream: TcpStream,
    max_frame: u32,
    tx: &mpsc::Sender<Cmd>,
    cancel: &CancelSlot,
    shared: &ServerShared,
) {
    loop {
        match proto::read_frame(&mut stream, max_frame) {
            Ok(Some(payload)) => {
                let mut d = Dec::new(&payload);
                let opcode = d.u8().expect("read_frame rejects empty payloads");
                match opcode {
                    op::QUERY => match d.str().and_then(|s| d.finish().map(|()| s)) {
                        Ok(sql) => {
                            cancel.note_forwarded();
                            if tx.send(Cmd::Query(sql)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Cmd::Fatal(e));
                            return;
                        }
                    },
                    op::CANCEL => {
                        cancel.trip();
                    }
                    op::GOODBYE => {
                        let _ = tx.send(Cmd::Goodbye);
                        return;
                    }
                    op::HELLO => {
                        let _ = tx.send(Cmd::Fatal(SnowError::Protocol(
                            "Hello after handshake".into(),
                        )));
                        return;
                    }
                    other => {
                        let _ = tx.send(Cmd::Fatal(SnowError::Protocol(format!(
                            "unknown opcode {other:#04x}"
                        ))));
                        return;
                    }
                }
            }
            Ok(None) => {
                // Clean EOF without Goodbye: the client vanished. Cancel any
                // in-flight statement so its slot frees within one batch.
                if cancel.trip() {
                    shared.note_disconnect_cancel();
                }
                let _ = tx.send(Cmd::Disconnect);
                return;
            }
            Err(e) => {
                if cancel.trip() {
                    shared.note_disconnect_cancel();
                }
                // A framing violation still gets its typed error frame; a raw
                // I/O failure means the socket is gone and writing is futile.
                let died = matches!(&e, SnowError::Protocol(m) if m.starts_with("read failed"));
                let _ = tx.send(if died { Cmd::Disconnect } else { Cmd::Fatal(e) });
                return;
            }
        }
    }
}

/// Executes one statement and streams its outcome. Returns false when the
/// socket is dead and the command loop should exit.
fn handle_statement(
    shared: &Arc<ServerShared>,
    session: &Session,
    stream: &mut TcpStream,
    session_id: u64,
    cancel: &CancelSlot,
    sql: &str,
) -> bool {
    // Server-side status command, answered without admission: it must work
    // even when the admission queue is saturated — that is when it matters.
    if is_show_server_status(sql) {
        cancel.statement_done();
        let (columns, rows) = shared.status_rows();
        return stream_rows(stream, &columns, &rows, Done { rows: rows.len() as u64, ..Done::default() });
    }

    let permit = match shared.admission.admit(session_id) {
        Ok(p) => p,
        Err(e) => {
            cancel.statement_done();
            return proto::write_frame(stream, &proto::error_frame(&e)).is_ok();
        }
    };
    let queued_ms = permit.queued_ms();

    let gov = Arc::new(QueryGovernor::from_params(&session.params()));
    cancel.arm(&gov);
    let outcome = catch_unwind(AssertUnwindSafe(|| session.execute_governed(sql, Arc::clone(&gov))));
    cancel.statement_done();
    drop(permit); // Slot frees before we spend time serializing the result.

    let outcome = match outcome {
        Ok(r) => r,
        Err(payload) => {
            shared.note_panic();
            Err(SnowError::internal("server worker", panic_message(&*payload)))
        }
    };

    match outcome {
        Ok(StatementResult::Rows(qr)) => stream_result(stream, &qr, queued_ms),
        Ok(StatementResult::Message(mut msg)) => {
            // Admission annotation on EXPLAIN ANALYZE: the profile's render
            // happens engine-side, so the service layer appends its own
            // accounting the same way the governor summary is appended.
            if matches!(parse_statement(sql), Ok(Statement::ExplainAnalyze(_))) {
                let s = shared.admission.stats_for(session_id);
                msg.push_str(&format!(
                    "\nadmission: queued {queued_ms} ms; session {session_id}: \
                     admitted {}, rejected {}, total queued {} ms",
                    s.admitted, s.rejected, s.total_queued_ms
                ));
            }
            proto::write_frame(stream, &proto::message(&msg)).is_ok()
        }
        Err(e) => proto::write_frame(stream, &proto::error_frame(&e)).is_ok(),
    }
}

fn is_show_server_status(sql: &str) -> bool {
    let words: Vec<String> = sql
        .split_whitespace()
        .map(|w| w.trim_end_matches(';').to_ascii_uppercase())
        .filter(|w| !w.is_empty())
        .collect();
    words == ["SHOW", "SERVER", "STATUS"]
}

/// Streams a completed query: header, row batches, and the Done summary
/// carrying the engine profile plus this statement's queue wait.
fn stream_result(stream: &mut TcpStream, qr: &QueryResult, queued_ms: u64) -> bool {
    let done = Done {
        rows: qr.rows.len() as u64,
        compile_us: qr.profile.compile_time.as_micros() as u64,
        exec_us: qr.profile.exec_time.as_micros() as u64,
        bytes_scanned: qr.profile.scan.bytes_scanned,
        queued_ms,
    };
    stream_rows(stream, &qr.columns, &qr.rows, done)
}

fn stream_rows(
    stream: &mut TcpStream,
    columns: &[String],
    rows: &[Vec<Variant>],
    done: Done,
) -> bool {
    if proto::write_frame(stream, &proto::result_header(columns)).is_err() {
        return false;
    }
    for chunk in rows.chunks(BATCH_ROWS) {
        let mut e = Enc::new(op::ROW_BATCH);
        e.u32(chunk.len() as u32);
        for row in chunk {
            for v in row {
                e.variant(v);
            }
        }
        if proto::write_frame(stream, &e.buf).is_err() {
            return false;
        }
    }
    let ok = proto::write_frame(stream, &proto::result_done(done)).is_ok();
    let _ = stream.flush();
    ok
}
