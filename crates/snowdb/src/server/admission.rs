//! Admission control: global concurrency cap, bounded queue, per-session
//! fairness.
//!
//! The controller sits between the connection layer and the engine. Every
//! statement asks for a [`Permit`] before compiling; the permit is RAII, so a
//! worker that finishes, errors, panics (caught), or is cancelled always
//! returns its slot.
//!
//! ## State machine (per statement)
//!
//! ```text
//!   admit() ── slot free, nobody queued ──────────────▶ ACTIVE
//!      │
//!      ├── queue full ─────────────────▶ REJECTED("admission queue full")
//!      ├── shutting down ──────────────▶ REJECTED("server shutting down")
//!      └── otherwise ──▶ QUEUED ──┬── granted ────────▶ ACTIVE
//!                                 ├── wait > deadline ▶ REJECTED("queue-wait deadline exceeded")
//!                                 └── shutdown ───────▶ REJECTED("server shutting down")
//!   ACTIVE ── Permit dropped ──▶ slot freed, next queued ticket granted
//! ```
//!
//! ## Fairness
//!
//! Queued statements are held in per-session FIFO queues; a freed slot is
//! granted by **round-robin over sessions**, not global FIFO. A session that
//! floods the queue with 50 statements gets at most one grant per turn of the
//! wheel, so a session with a single queued statement waits at most
//! `sessions × max_concurrent` grants — bounded, never starved. Within one
//! session, statements are granted in arrival order.
//!
//! A new arrival never barges past queued work: if anything is queued, the
//! arrival queues too, even when a slot happens to be free at that instant
//! (slots are handed to queued tickets at release time, so a free slot with a
//! non-empty queue is a transient state).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::{Result, SnowError};

/// Tunables for [`AdmissionController`].
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Statements allowed to execute concurrently across all sessions.
    pub max_concurrent: usize,
    /// Statements allowed to wait in the admission queue (all sessions
    /// combined) before new arrivals are rejected outright.
    pub max_queued: usize,
    /// Longest a statement may wait in the queue before it is rejected with
    /// a queue-wait deadline error.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 8,
            max_queued: 64,
            queue_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters exposed through `SHOW SERVER STATUS` and the drain logic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub active: usize,
    pub queued: usize,
    pub peak_active: usize,
    pub peak_queued: usize,
    pub admitted: u64,
    pub rejected: u64,
    pub total_queued_ms: u64,
}

/// Per-session admission counters (for `SHOW SERVER STATUS` breakdown and
/// `EXPLAIN ANALYZE` annotations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionAdmission {
    pub admitted: u64,
    pub rejected: u64,
    pub total_queued_ms: u64,
}

#[derive(Default)]
struct State {
    active: usize,
    peak_active: usize,
    peak_queued: usize,
    admitted: u64,
    rejected: u64,
    total_queued_ms: u64,
    shutdown: bool,
    /// Per-session FIFO queues of waiting tickets, in round-robin order.
    /// A session's entry exists only while it has queued tickets.
    queues: Vec<(u64, VecDeque<u64>)>,
    /// Round-robin cursor into `queues`: index of the session to grant next.
    rr_cursor: usize,
    queued_total: usize,
    /// Tickets that have been granted a slot but whose waiter hasn't woken
    /// yet. `active` is already incremented for these.
    granted: Vec<u64>,
    next_ticket: u64,
    /// Retained per-session counters (survive the session's queue draining).
    sessions: Vec<(u64, SessionAdmission)>,
}

impl State {
    fn session_stats(&mut self, session: u64) -> &mut SessionAdmission {
        if let Some(idx) = self.sessions.iter().position(|(s, _)| *s == session) {
            return &mut self.sessions[idx].1;
        }
        self.sessions.push((session, SessionAdmission::default()));
        &mut self.sessions.last_mut().unwrap().1
    }

    fn enqueue(&mut self, session: u64, ticket: u64) {
        if let Some((_, q)) = self.queues.iter_mut().find(|(s, _)| *s == session) {
            q.push_back(ticket);
        } else {
            self.queues.push((session, VecDeque::from([ticket])));
        }
        self.queued_total += 1;
        self.peak_queued = self.peak_queued.max(self.queued_total);
    }

    /// Removes `ticket` from its queue (used on timeout/shutdown). Returns
    /// false if the ticket was already granted or gone.
    fn unqueue(&mut self, session: u64, ticket: u64) -> bool {
        let Some(idx) = self.queues.iter().position(|(s, _)| *s == session) else {
            return false;
        };
        let q = &mut self.queues[idx].1;
        let Some(pos) = q.iter().position(|t| *t == ticket) else {
            return false;
        };
        q.remove(pos);
        self.queued_total -= 1;
        if q.is_empty() {
            self.queues.remove(idx);
            if self.rr_cursor > idx {
                self.rr_cursor -= 1;
            }
        }
        true
    }

    /// Grants the next queued ticket (round-robin over sessions), moving the
    /// slot ownership to it. Caller must notify the condvar.
    fn grant_next(&mut self) -> bool {
        if self.queues.is_empty() {
            return false;
        }
        let idx = self.rr_cursor % self.queues.len();
        let (_, q) = &mut self.queues[idx];
        let ticket = q.pop_front().expect("queues holds only non-empty sessions");
        self.queued_total -= 1;
        if q.is_empty() {
            self.queues.remove(idx);
            // Cursor now points at the element after the removed one.
            if self.queues.is_empty() {
                self.rr_cursor = 0;
            } else {
                self.rr_cursor %= self.queues.len();
            }
        } else {
            self.rr_cursor = (idx + 1) % self.queues.len();
        }
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        self.granted.push(ticket);
        true
    }
}

/// Global admission controller shared by all connections of one server.
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            config,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        })
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned lock means a panic while holding it; admission state is
        // counters + queues, all valid at every step, so keep serving.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the statement is admitted, the queue-wait deadline
    /// expires, the queue is full, or the server begins shutdown.
    pub fn admit(self: &Arc<Self>, session: u64) -> Result<Permit> {
        let start = Instant::now();
        let mut st = self.lock();
        if st.shutdown {
            st.rejected += 1;
            st.session_stats(session).rejected += 1;
            return Err(SnowError::rejected("server shutting down", session, 0));
        }
        if st.active < self.config.max_concurrent && st.queued_total == 0 {
            st.active += 1;
            st.peak_active = st.peak_active.max(st.active);
            st.admitted += 1;
            st.session_stats(session).admitted += 1;
            drop(st);
            return Ok(Permit {
                ctl: Arc::clone(self),
                session,
                queued_ms: 0,
            });
        }
        if st.queued_total >= self.config.max_queued {
            st.rejected += 1;
            st.session_stats(session).rejected += 1;
            return Err(SnowError::rejected("admission queue full", session, 0));
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.enqueue(session, ticket);
        // When slots are free but tickets were already queued (transient
        // between a release and its waiter waking — or arrivals queued
        // behind a just-freed slot), hand out grants now so the queue can't
        // wedge with idle slots.
        while st.active < self.config.max_concurrent && st.grant_next() {}
        self.cv.notify_all();

        loop {
            if let Some(pos) = st.granted.iter().position(|t| *t == ticket) {
                st.granted.remove(pos);
                let queued_ms = start.elapsed().as_millis() as u64;
                st.admitted += 1;
                st.total_queued_ms += queued_ms;
                let sess = st.session_stats(session);
                sess.admitted += 1;
                sess.total_queued_ms += queued_ms;
                return Ok(Permit {
                    ctl: Arc::clone(self),
                    session,
                    queued_ms,
                });
            }
            let queued_ms = start.elapsed().as_millis() as u64;
            if st.shutdown {
                st.unqueue(session, ticket);
                st.rejected += 1;
                st.session_stats(session).rejected += 1;
                return Err(SnowError::rejected(
                    "server shutting down",
                    session,
                    queued_ms,
                ));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.config.queue_timeout {
                // Between our last wake and now the ticket may have been
                // granted; the check at loop top already ruled that out
                // under this same lock acquisition, so unqueue is safe.
                st.unqueue(session, ticket);
                st.rejected += 1;
                let sess = st.session_stats(session);
                sess.rejected += 1;
                return Err(SnowError::rejected(
                    "queue-wait deadline exceeded",
                    session,
                    queued_ms,
                ));
            }
            let wait = self.config.queue_timeout - elapsed;
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, wait)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Called by [`Permit::drop`]: frees the slot and grants the next
    /// queued ticket round-robin.
    fn release(&self) {
        let mut st = self.lock();
        st.active -= 1;
        if !st.shutdown {
            st.grant_next();
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Stops admitting: new arrivals and queued waiters are rejected with a
    /// typed error. In-flight statements keep their permits.
    pub fn begin_shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }

    /// Waits until every admitted statement released its permit, or the
    /// deadline passes. Returns the number still active.
    pub fn wait_drained(&self, deadline: Duration) -> usize {
        let start = Instant::now();
        let mut st = self.lock();
        while st.active > 0 {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                break;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        st.active
    }

    pub fn stats(&self) -> AdmissionStats {
        let st = self.lock();
        AdmissionStats {
            active: st.active,
            queued: st.queued_total,
            peak_active: st.peak_active,
            peak_queued: st.peak_queued,
            admitted: st.admitted,
            rejected: st.rejected,
            total_queued_ms: st.total_queued_ms,
        }
    }

    /// Per-session counters, sorted by session id.
    pub fn session_stats(&self) -> Vec<(u64, SessionAdmission)> {
        let mut v = self.lock().sessions.clone();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Counters for one session (zeroes if it never submitted anything).
    pub fn stats_for(&self, session: u64) -> SessionAdmission {
        self.lock()
            .sessions
            .iter()
            .find(|(s, _)| *s == session)
            .map(|(_, st)| *st)
            .unwrap_or_default()
    }
}

/// RAII execution slot. Dropping it (on success, error, cancel, or caught
/// panic) frees the slot and wakes the next queued statement.
pub struct Permit {
    ctl: Arc<AdmissionController>,
    session: u64,
    queued_ms: u64,
}

impl Permit {
    /// How long this statement waited in the admission queue.
    pub fn queued_ms(&self) -> u64 {
        self.queued_ms
    }

    pub fn session(&self) -> u64 {
        self.session
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.ctl.release();
    }
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("session", &self.session)
            .field("queued_ms", &self.queued_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn ctl(max_concurrent: usize, max_queued: usize, timeout_ms: u64) -> Arc<AdmissionController> {
        AdmissionController::new(AdmissionConfig {
            max_concurrent,
            max_queued,
            queue_timeout: Duration::from_millis(timeout_ms),
        })
    }

    #[test]
    fn cap_is_enforced_and_slots_recycle() {
        let c = ctl(2, 8, 5_000);
        let p1 = c.admit(1).unwrap();
        let p2 = c.admit(2).unwrap();
        assert_eq!(c.stats().active, 2);

        let c2 = Arc::clone(&c);
        let waiter = thread::spawn(move || c2.admit(3).map(|p| p.queued_ms()));
        while c.stats().queued == 0 {
            thread::yield_now();
        }
        drop(p1);
        let queued_ms = waiter.join().unwrap().unwrap();
        assert!(queued_ms < 5_000);
        // The waiter's permit dropped inside its thread, so only p2 remains.
        assert_eq!(c.stats().active, 1);
        drop(p2);
        assert_eq!(c.stats().active, 0);
        assert_eq!(c.stats().peak_active, 2);
        assert_eq!(c.stats().admitted, 3);
    }

    #[test]
    fn queue_full_and_timeout_reject_typed() {
        let c = ctl(1, 1, 50);
        let _p = c.admit(1).unwrap();
        let c2 = Arc::clone(&c);
        let queued = thread::spawn(move || c2.admit(2));
        while c.stats().queued == 0 {
            thread::yield_now();
        }
        // Queue holds 1: the next arrival is rejected immediately.
        match c.admit(3) {
            Err(SnowError::Rejected(t)) => assert_eq!(t.reason, "admission queue full"),
            other => panic!("unexpected {other:?}"),
        }
        // The queued statement times out while the permit is held.
        match queued.join().unwrap() {
            Err(SnowError::Rejected(t)) => {
                assert_eq!(t.reason, "queue-wait deadline exceeded");
                assert!(t.queued_ms >= 50);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().rejected, 2);
        assert_eq!(c.stats().queued, 0, "timed-out ticket left the queue");
    }

    #[test]
    fn round_robin_prevents_starvation_by_a_flooding_session() {
        let c = ctl(1, 64, 10_000);
        let gate = c.admit(99).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));

        // Session 1 floods five statements; session 2 submits one after.
        let mut handles = Vec::new();
        for i in 0..5 {
            let c2 = Arc::clone(&c);
            let ord = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                let p = c2.admit(1).unwrap();
                ord.lock().unwrap().push((1u64, i));
                drop(p);
            }));
            // Deterministic arrival order: wait until this ticket is queued.
            while c.stats().queued < i + 1 {
                thread::yield_now();
            }
        }
        let c2 = Arc::clone(&c);
        let ord = Arc::clone(&order);
        handles.push(thread::spawn(move || {
            let p = c2.admit(2).unwrap();
            ord.lock().unwrap().push((2, 0));
            drop(p);
        }));
        while c.stats().queued < 6 {
            thread::yield_now();
        }

        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        let pos2 = order.iter().position(|(s, _)| *s == 2).unwrap();
        // Round-robin: session 2's lone statement runs second, not sixth.
        assert!(
            pos2 <= 1,
            "flooded session starved the single-statement session: order {order:?}"
        );
        // Within session 1, arrival order is preserved.
        let s1: Vec<usize> = order.iter().filter(|(s, _)| *s == 1).map(|(_, i)| *i).collect();
        assert_eq!(s1, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shutdown_rejects_queued_and_new_then_drains() {
        let c = ctl(1, 8, 10_000);
        let p = c.admit(1).unwrap();
        let c2 = Arc::clone(&c);
        let queued = thread::spawn(move || c2.admit(2));
        while c.stats().queued == 0 {
            thread::yield_now();
        }
        c.begin_shutdown();
        match queued.join().unwrap() {
            Err(SnowError::Rejected(t)) => assert_eq!(t.reason, "server shutting down"),
            other => panic!("unexpected {other:?}"),
        }
        match c.admit(3) {
            Err(SnowError::Rejected(t)) => assert_eq!(t.reason, "server shutting down"),
            other => panic!("unexpected {other:?}"),
        }
        // Drain observes the in-flight permit, then its release.
        assert_eq!(c.wait_drained(Duration::from_millis(10)), 1);
        drop(p);
        assert_eq!(c.wait_drained(Duration::from_secs(5)), 0);
    }

    #[test]
    fn no_starvation_under_concurrent_churn() {
        // 4 sessions × 8 statements over 2 slots: every statement must
        // complete well within the queue deadline.
        let c = ctl(2, 64, 30_000);
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for session in 0..4u64 {
            let c2 = Arc::clone(&c);
            let done2 = Arc::clone(&done);
            handles.push(thread::spawn(move || {
                for _ in 0..8 {
                    let p = c2.admit(session).unwrap();
                    thread::sleep(Duration::from_millis(1));
                    drop(p);
                    done2.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 32);
        let stats = c.stats();
        assert_eq!(stats.active, 0);
        assert_eq!(stats.admitted, 32);
        assert!(stats.peak_active <= 2, "cap violated: {}", stats.peak_active);
        for (_, s) in c.session_stats() {
            assert_eq!(s.admitted, 8);
            assert_eq!(s.rejected, 0);
        }
    }
}
