//! Sessions: per-connection state over a shared [`Database`].
//!
//! A [`Session`] owns its session parameters and an optional explicit
//! transaction. `BEGIN` pins the current catalog version; every statement
//! inside the transaction reads from (and stacks its own writes onto) that
//! pinned version — snapshot isolation with read-your-own-writes. Nothing is
//! visible to other sessions until `COMMIT`, which validates the whole write
//! set against the then-current catalog in one optimistic compare-and-swap:
//! it either installs one new version atomically or fails with a typed
//! [`SnowError::WriteConflict`] and aborts the transaction (the session must
//! re-run its logic on a fresh snapshot — replaying blindly would forfeit
//! exactly the isolation the transaction promised).
//!
//! Statements outside a transaction auto-commit with the same retry policy
//! as [`Database::execute`], but under this session's parameters.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::catalog::{CatalogSnapshot, TableWrite, WriteSet};
use crate::engine::{Database, QueryOptions, QueryResult, StatementResult};
use crate::error::{Result, SnowError};
use crate::govern::{QueryGovernor, SessionParams};
use crate::sql::{parse_statement, Statement};

/// An in-flight explicit transaction.
struct Txn {
    /// The catalog version pinned at `BEGIN` — the CAS base for `COMMIT` and
    /// the baseline for the commit-time diff.
    base: Arc<CatalogSnapshot>,
    /// `base` plus this transaction's own writes (read-your-own-writes).
    effective: Arc<CatalogSnapshot>,
    /// Upper-cased names of tables this transaction wrote.
    touched: BTreeSet<String>,
}

/// One logical connection: session parameters plus at most one explicit
/// transaction. Cheap to create; any number of sessions may share one
/// [`Database`].
pub struct Session {
    db: Arc<Database>,
    params: RwLock<SessionParams>,
    txn: Mutex<Option<Txn>>,
}

impl Session {
    /// Opens a session on a shared database, inheriting the database-level
    /// session parameters as its starting point.
    pub fn new(db: Arc<Database>) -> Session {
        let params = db.session_params();
        Session { db, params: RwLock::new(params), txn: Mutex::new(None) }
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.lock().is_some()
    }

    /// This session's current parameters.
    pub fn params(&self) -> SessionParams {
        *self.params.read()
    }

    /// The catalog snapshot statements currently read from: the
    /// transaction's effective catalog inside a transaction, the database's
    /// latest version otherwise.
    pub fn read_snapshot(&self) -> Arc<CatalogSnapshot> {
        match self.txn.lock().as_ref() {
            Some(t) => t.effective.clone(),
            None => self.db.snapshot(),
        }
    }

    /// Runs a query against this session's read snapshot under this
    /// session's parameters.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let gov = Arc::new(QueryGovernor::from_params(&self.params()));
        self.query_governed(sql, gov)
    }

    /// Runs a query against this session's read snapshot under an explicit
    /// governor. The caller keeps the governor, so it can trip it from
    /// another thread — this is how the network service layer cancels an
    /// in-flight statement when a cancel frame arrives or the client
    /// disconnects.
    pub fn query_governed(&self, sql: &str, gov: Arc<QueryGovernor>) -> Result<QueryResult> {
        let snap = self.read_snapshot();
        self.db
            .query_on(&snap, sql, &QueryOptions::default(), gov)
            .map_err(SnowError::from)
    }

    /// Executes any statement in this session. Queries and DML inside a
    /// transaction see the transaction's own writes; DDL and `VERIFY` are
    /// rejected inside a transaction (the catalog diff they'd need is not
    /// worth their rarity — Snowflake auto-commits DDL for the same reason).
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        let gov = Arc::new(QueryGovernor::from_params(&self.params()));
        self.execute_governed(sql, gov)
    }

    /// [`Session::execute`] under an explicit governor shared with the
    /// caller. Queries and DML rewrites check it at every batch boundary /
    /// partition claim, so tripping the governor (cancel, deadline) frees
    /// the executing thread within one batch of work. Session-state verbs
    /// (`BEGIN`, `SET`, ...) never block and ignore the governor.
    pub fn execute_governed(
        &self,
        sql: &str,
        gov: Arc<QueryGovernor>,
    ) -> Result<StatementResult> {
        match parse_statement(sql)? {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            Statement::Query(_) => {
                Ok(StatementResult::Rows(self.query_governed(sql, gov)?))
            }
            Statement::Set { ref name, .. }
                if name.eq_ignore_ascii_case(crate::engine::RETENTION_PARAM) =>
            {
                // Retention is durable store state, not a per-session limit:
                // route through the engine's intercept (rejected mid-txn like
                // any other catalog mutation).
                if self.in_transaction() {
                    return Err(SnowError::Catalog(
                        "cannot change DATA_RETENTION_VERSIONS inside a transaction \
                         (COMMIT or ROLLBACK first)"
                            .into(),
                    ));
                }
                self.db.execute(sql)
            }
            Statement::Set { name, value } => {
                let canonical = self.params.write().set(&name, value)?;
                Ok(StatementResult::Message(if value == 0 {
                    format!("{canonical} cleared")
                } else {
                    format!("{canonical} set to {value}")
                }))
            }
            Statement::Unset { name } => {
                let canonical = self.params.write().unset(&name)?;
                Ok(StatementResult::Message(format!("{canonical} cleared")))
            }
            stmt @ (Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }) => {
                let mut txn = self.txn.lock();
                match txn.as_mut() {
                    Some(t) => Session::apply_in_txn(&self.db, t, &stmt, &gov),
                    None => {
                        drop(txn);
                        self.db.autocommit_dml_governed(&stmt, &gov)
                    }
                }
            }
            other => {
                if self.in_transaction() {
                    return Err(SnowError::Catalog(format!(
                        "statement is not supported inside a transaction \
                         (COMMIT or ROLLBACK first): {other:?}"
                    )));
                }
                self.db.execute(sql)
            }
        }
    }

    /// Applies one DML statement to the transaction's effective catalog —
    /// prepared exactly like an auto-commit write, but stacked onto the
    /// private overlay instead of being committed.
    fn apply_in_txn(
        db: &Database,
        txn: &mut Txn,
        stmt: &Statement,
        gov: &Arc<QueryGovernor>,
    ) -> Result<StatementResult> {
        let (name, write, msg) = db.plan_dml(&txn.effective, stmt, gov)?;
        if let Some(w) = write {
            // Applying against the overlay's own version can only conflict if
            // the statement itself raced — it cannot here, the overlay is
            // session-private.
            let next = txn
                .effective
                .apply(txn.effective.version(), &WriteSet::single(&name, w))?;
            txn.effective = Arc::new(next);
            txn.touched.insert(name);
        }
        Ok(StatementResult::Message(msg))
    }

    fn begin(&self) -> Result<StatementResult> {
        let mut txn = self.txn.lock();
        if txn.is_some() {
            return Err(SnowError::Catalog("a transaction is already in progress".into()));
        }
        let base = self.db.snapshot();
        let version = base.version();
        *txn = Some(Txn { effective: base.clone(), base, touched: BTreeSet::new() });
        Ok(StatementResult::Message(format!(
            "transaction started (snapshot version {version})"
        )))
    }

    fn rollback(&self) -> Result<StatementResult> {
        let mut txn = self.txn.lock();
        if txn.take().is_none() {
            return Err(SnowError::Catalog("no transaction in progress".into()));
        }
        Ok(StatementResult::Message("rolled back".into()))
    }

    /// Commits the open transaction: diffs the effective catalog against the
    /// pinned base per touched table (partition `Arc` identity tells appends
    /// from rewrites) and submits the whole write set as one CAS against the
    /// base version. No retry — on conflict the transaction is aborted and
    /// the typed error surfaces to the caller.
    fn commit(&self) -> Result<StatementResult> {
        let mut guard = self.txn.lock();
        // Taking the transaction up front means *any* outcome — success or
        // conflict — ends it; a failed COMMIT must not leave a half-dead
        // transaction accepting more statements.
        let Some(txn) = guard.take() else {
            return Err(SnowError::Catalog("no transaction in progress".into()));
        };
        drop(guard);
        let mut writes = Vec::new();
        for name in &txn.touched {
            let before = txn.base.table(name);
            let after = txn.effective.table(name);
            match (before, after) {
                (None, Some(t)) => {
                    writes.push((name.clone(), TableWrite::Put { table: t, expect_absent: true }));
                }
                (Some(b), Some(a)) => {
                    let removed: Vec<_> = b
                        .partitions()
                        .iter()
                        .filter(|p| !a.partitions().iter().any(|q| Arc::ptr_eq(p, q)))
                        .cloned()
                        .collect();
                    let added: Vec<_> = a
                        .partitions()
                        .iter()
                        .filter(|p| !b.partitions().iter().any(|q| Arc::ptr_eq(p, q)))
                        .cloned()
                        .collect();
                    if removed.is_empty() && added.is_empty() {
                        continue;
                    }
                    if removed.is_empty() {
                        // Pure appends merge with concurrent appends instead
                        // of conflicting on partition identity.
                        writes.push((
                            name.clone(),
                            TableWrite::Append { parts: added, schema: a.schema().to_vec() },
                        ));
                    } else {
                        writes.push((name.clone(), TableWrite::Rewrite { removed, added }));
                    }
                }
                (Some(_), None) => writes.push((name.clone(), TableWrite::Drop)),
                (None, None) => {}
            }
        }
        if writes.is_empty() {
            return Ok(StatementResult::Message("committed (no changes)".into()));
        }
        let next = self.db.commit_writes(txn.base.version(), WriteSet { writes })?;
        Ok(StatementResult::Message(format!("committed version {}", next.version())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnDef, ColumnType};
    use crate::variant::Variant;

    fn shared_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.load_table(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..10).map(|i| vec![Variant::Int(i)]),
        )
        .unwrap();
        db
    }

    fn count(s: &Session) -> i64 {
        match s.query("SELECT count(*) FROM t").unwrap().scalar().unwrap() {
            Variant::Int(n) => *n,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transaction_isolates_until_commit_and_reads_own_writes() {
        let db = shared_db();
        let alice = Session::new(db.clone());
        let bob = Session::new(db.clone());
        alice.execute("BEGIN").unwrap();
        alice.execute("INSERT INTO t VALUES (100)").unwrap();
        alice.execute("DELETE FROM t WHERE x < 5").unwrap();
        // Alice reads her own writes; Bob still sees the committed version.
        assert_eq!(count(&alice), 6);
        assert_eq!(count(&bob), 10);
        alice.execute("COMMIT").unwrap();
        assert_eq!(count(&alice), 6);
        assert_eq!(count(&bob), 6);
    }

    #[test]
    fn rollback_discards_everything() {
        let db = shared_db();
        let s = Session::new(db.clone());
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE t SET x = x + 1000").unwrap();
        assert!(s.in_transaction());
        s.execute("ROLLBACK").unwrap();
        assert!(!s.in_transaction());
        assert_eq!(
            db.query_scalar("SELECT max(x) FROM t").unwrap(),
            Variant::Int(9),
            "rolled-back update must leave the table untouched"
        );
    }

    #[test]
    fn conflicting_commit_fails_typed_and_aborts() {
        let db = shared_db();
        let a = Session::new(db.clone());
        let b = Session::new(db.clone());
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        // Both rewrite the same partition; first committer wins.
        a.execute("UPDATE t SET x = x + 100 WHERE x = 3").unwrap();
        b.execute("UPDATE t SET x = x + 200 WHERE x = 3").unwrap();
        a.execute("COMMIT").unwrap();
        match b.execute("COMMIT") {
            Err(SnowError::WriteConflict(trip)) => {
                assert_eq!(trip.table, "T");
                assert_eq!(trip.attempts, 1, "transaction COMMIT must not retry");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!b.in_transaction(), "failed COMMIT must end the transaction");
        assert_eq!(db.query_scalar("SELECT max(x) FROM t").unwrap(), Variant::Int(103));
    }

    #[test]
    fn concurrent_appends_both_commit() {
        let db = shared_db();
        let a = Session::new(db.clone());
        let b = Session::new(db.clone());
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("INSERT INTO t VALUES (100)").unwrap();
        b.execute("INSERT INTO t VALUES (200)").unwrap();
        a.execute("COMMIT").unwrap();
        b.execute("COMMIT").unwrap();
        assert_eq!(db.table("t").unwrap().row_count(), 12, "appends merge, not conflict");
    }

    #[test]
    fn ddl_inside_a_transaction_is_rejected() {
        let db = shared_db();
        let s = Session::new(db);
        s.execute("BEGIN").unwrap();
        for sql in ["CREATE TABLE u (a INT)", "DROP TABLE t"] {
            match s.execute(sql) {
                Err(SnowError::Catalog(m)) => assert!(m.contains("transaction"), "{m}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn session_params_are_per_session() {
        let db = shared_db();
        let a = Session::new(db.clone());
        let b = Session::new(db.clone());
        a.execute("SET STATEMENT_TIMEOUT_IN_SECONDS = 30").unwrap();
        assert_eq!(a.params().statement_timeout_secs, Some(30));
        assert_eq!(b.params().statement_timeout_secs, None);
        assert_eq!(db.session_params().statement_timeout_secs, None);
    }

    #[test]
    fn txn_verbs_require_matching_state() {
        let db = shared_db();
        let s = Session::new(db);
        assert!(s.execute("COMMIT").is_err());
        assert!(s.execute("ROLLBACK").is_err());
        s.execute("BEGIN").unwrap();
        assert!(s.execute("BEGIN").is_err());
        s.execute("ROLLBACK").unwrap();
    }
}
