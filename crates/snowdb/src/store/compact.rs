//! Background compaction: merge small micro-partitions into full-size ones.
//!
//! Streaming micro-commit ingest ([`crate::Database::stream_ingest`]) leaves a
//! trail of small partitions — one per commit batch. The compactor folds them
//! back into `target_rows`-sized partitions (re-sorted on the clustering key
//! when one is configured) and publishes the merge as a single copy-on-write
//! [`TableWrite::Rewrite`] through the same optimistic commit path as DML.
//!
//! Compaction is strictly an *optimization*: it never changes query results,
//! and it deliberately does **not** retry lost commit races. Racing a writer
//! means the table just changed under the compactor's pinned snapshot; the
//! next pass re-plans against fresh state. Old partition files stay reachable
//! through manifest history until retention evicts them, so readers pinned on
//! pre-compaction versions keep scanning the originals.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::catalog::{TableWrite, WriteSet};
use crate::engine::Database;
use crate::error::{Result, SnowError};
use crate::govern::QueryGovernor;
use crate::variant::{cmp_variants, Variant};

/// When and how to compact one table.
#[derive(Clone, Debug)]
pub struct CompactionPolicy {
    /// Partitions with fewer rows than this are merge candidates.
    pub small_rows: usize,
    /// Row capacity of rebuilt partitions.
    pub target_rows: usize,
    /// Minimum number of candidate partitions before a pass rewrites anything
    /// (merging one partition with itself is pure churn).
    pub min_inputs: usize,
    /// Column to re-sort merged rows on, restoring clustering (and zone-map
    /// pruning) that interleaved micro-commits destroyed. `None` keeps
    /// arrival order.
    pub cluster_by: Option<String>,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            small_rows: crate::storage::DEFAULT_PARTITION_ROWS / 2,
            target_rows: crate::storage::DEFAULT_PARTITION_ROWS,
            min_inputs: 2,
            cluster_by: None,
        }
    }
}

/// What one successful compaction pass did.
#[derive(Clone, Copy, Debug)]
pub struct CompactionReport {
    /// Small partitions merged away.
    pub inputs: usize,
    /// Rows carried through the merge.
    pub rows: usize,
    /// Full-size partitions written in their place.
    pub outputs: usize,
}

/// Runs one compaction pass over `table`: pins a snapshot, merges every
/// partition smaller than the policy threshold, and commits the rewrite
/// against the pinned version. Returns `Ok(None)` when there is nothing
/// worth doing (missing table, too few candidates).
///
/// There is deliberately **no retry**: a [`SnowError::WriteConflict`] means a
/// writer won the race and the caller should simply try again later against
/// fresh state. The partitions prepared for the lost commit become debris and
/// are swept on the next write-open.
pub fn compact_table_once(
    db: &Database,
    table: &str,
    policy: &CompactionPolicy,
) -> Result<Option<CompactionReport>> {
    let upper = table.to_ascii_uppercase();
    let base = db.snapshot();
    let t = match base.table(&upper) {
        Some(t) => t,
        None => return Ok(None),
    };
    let removed: Vec<_> = t
        .partitions()
        .iter()
        .filter(|p| {
            let rows = p.row_count();
            rows > 0 && rows < policy.small_rows
        })
        .cloned()
        .collect();
    if removed.len() < policy.min_inputs.max(1) {
        return Ok(None);
    }
    let schema = t.schema().to_vec();
    let cluster_idx = policy
        .cluster_by
        .as_ref()
        .map(|c| {
            t.column_index(c).ok_or_else(|| {
                SnowError::Plan(format!("unknown clustering column '{c}' on table '{table}'"))
            })
        })
        .transpose()?;

    // Materialize candidate rows through the governed column readers so the
    // session's memory/byte budgets (and fault schedules) apply to compaction
    // exactly as they do to DML rewrites.
    let gov = Arc::new(QueryGovernor::from_params(&db.session_params()));
    let mut rows: Vec<Vec<Variant>> = Vec::new();
    for part in &removed {
        gov.checkpoint("Compact")?;
        let n = part.row_count();
        let mut cols = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            cols.push(part.read_column_governed(i, &gov, "Compact")?.data);
        }
        for r in 0..n {
            rows.push(cols.iter().map(|c| c.get(r)).collect());
        }
    }
    if let Some(idx) = cluster_idx {
        rows.sort_by(|a, b| cmp_variants(&a[idx], &b[idx]));
    }
    let added = db.build_partitions(&upper, &schema, &rows, policy.target_rows.max(1), &gov)?;
    let report =
        CompactionReport { inputs: removed.len(), rows: rows.len(), outputs: added.len() };
    db.commit_writes(base.version(), WriteSet::single(&upper, TableWrite::Rewrite {
        removed,
        added,
    }))?;
    Ok(Some(report))
}

/// Counters published by a background [`Compactor`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactorStats {
    /// Passes attempted (including no-op passes).
    pub passes: u64,
    /// Passes that committed a rewrite.
    pub compactions: u64,
    /// Passes that lost the commit race to a concurrent writer.
    pub conflicts_lost: u64,
    /// Passes that failed for any other reason (budget trip, I/O error).
    pub errors: u64,
}

#[derive(Default)]
struct StatsCell {
    passes: AtomicU64,
    compactions: AtomicU64,
    conflicts_lost: AtomicU64,
    errors: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> CompactorStats {
        CompactorStats {
            passes: self.passes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            conflicts_lost: self.conflicts_lost.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// A background thread running [`compact_table_once`] on an interval until
/// stopped. Lost races and governed trips are counted, never fatal: the
/// compactor's failure mode is "try again next pass".
pub struct Compactor {
    stop: Arc<AtomicBool>,
    stats: Arc<StatsCell>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns the compaction loop. `interval` is the pause between passes;
    /// stopping cuts the pause short.
    pub fn spawn(
        db: Arc<Database>,
        table: &str,
        policy: CompactionPolicy,
        interval: Duration,
    ) -> Compactor {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsCell::default());
        let (s, st, table) = (stop.clone(), stats.clone(), table.to_string());
        let join = std::thread::spawn(move || {
            while !s.load(Ordering::Relaxed) {
                st.passes.fetch_add(1, Ordering::Relaxed);
                match compact_table_once(&db, &table, &policy) {
                    Ok(Some(_)) => {
                        st.compactions.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(None) => {}
                    Err(SnowError::WriteConflict(_)) => {
                        st.conflicts_lost.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        st.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Sleep in short slices so stop() returns promptly.
                let mut left = interval;
                while !left.is_zero() && !s.load(Ordering::Relaxed) {
                    let step = left.min(Duration::from_millis(10));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        });
        Compactor { stop, stats, join: Some(join) }
    }

    /// Counters so far (live; the loop may still be running).
    pub fn stats(&self) -> CompactorStats {
        self.stats.snapshot()
    }

    /// Signals the loop to exit and joins it, returning the final counters.
    pub fn stop(mut self) -> CompactorStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnDef, ColumnType};

    fn db_with_small_parts(parts: usize, rows_per: usize) -> Database {
        let db = Database::new();
        db.load_table_with_partition_rows(
            "t",
            vec![ColumnDef::new("X", ColumnType::Int)],
            (0..(parts * rows_per) as i64).map(|i| vec![Variant::Int(i)]),
            rows_per,
        )
        .unwrap();
        db
    }

    #[test]
    fn merges_small_partitions_and_preserves_results() {
        let db = db_with_small_parts(8, 5);
        assert_eq!(db.table("t").unwrap().partitions().len(), 8);
        let before = db.query("SELECT x FROM t ORDER BY x").unwrap().rows;
        let policy = CompactionPolicy {
            small_rows: 10,
            target_rows: 100,
            min_inputs: 2,
            cluster_by: Some("X".into()),
        };
        let report = compact_table_once(&db, "t", &policy).unwrap().unwrap();
        assert_eq!(report.inputs, 8);
        assert_eq!(report.rows, 40);
        assert_eq!(report.outputs, 1);
        let t = db.table("t").unwrap();
        assert_eq!(t.partitions().len(), 1);
        assert_eq!(db.query("SELECT x FROM t ORDER BY x").unwrap().rows, before);
    }

    #[test]
    fn no_op_below_min_inputs_and_on_missing_table() {
        let db = db_with_small_parts(1, 5);
        let policy = CompactionPolicy { small_rows: 10, min_inputs: 2, ..Default::default() };
        assert!(compact_table_once(&db, "t", &policy).unwrap().is_none());
        assert!(compact_table_once(&db, "missing", &policy).unwrap().is_none());
        // Full-size partitions are never candidates.
        let db = db_with_small_parts(4, 50);
        let policy = CompactionPolicy { small_rows: 10, ..Default::default() };
        assert!(compact_table_once(&db, "t", &policy).unwrap().is_none());
    }

    #[test]
    fn unknown_cluster_column_is_a_plan_error() {
        let db = db_with_small_parts(4, 5);
        let policy = CompactionPolicy {
            small_rows: 10,
            cluster_by: Some("NOPE".into()),
            ..Default::default()
        };
        match compact_table_once(&db, "t", &policy) {
            Err(SnowError::Plan(m)) => assert!(m.contains("NOPE"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
