//! Persistent micro-partition store.
//!
//! This subsystem gives `snowdb` the storage architecture the paper's
//! performance story rests on (§II-B): tables live as *immutable* columnar
//! partition files on disk, a versioned manifest names the live partitions of
//! every table, scans read lazily — per column block, through a shared
//! buffer cache — and pruning decisions translate into file bytes that are
//! **never read**, making `bytes_scanned` actual I/O rather than an estimate.
//!
//! Layout of a database directory:
//!
//! ```text
//! <dir>/MANIFEST        committed catalog (JSON, see `manifest`)
//! <dir>/MANIFEST.tmp    commit-in-progress debris, ignored and swept
//! <dir>/parts/pN.part   immutable partition files (see `format`)
//! ```
//!
//! Invariants:
//! - partition files are written *before* the manifest commit that
//!   references them and never modified afterwards;
//! - the rename of `MANIFEST.tmp` onto `MANIFEST` is the single atomic
//!   commit point — a crash at any step reopens to the previous version;
//! - partition file names are never reused (`next_file` is persisted), so a
//!   stale reader can never observe a recycled file;
//! - the manifest retains the last `retention` committed versions (time
//!   travel, `UNDROP`, clones); a file is unlinked only when *no retained
//!   version and no live [`VersionPin`] references it* — files not reachable
//!   from any retained version are crash debris and are swept on open.

pub mod cache;
pub mod compact;
pub mod format;
pub mod manifest;

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

use crate::error::{Result, SnowError};
use crate::govern::chaos::{ChaosSchedule, ChaosSite};
use crate::govern::QueryGovernor;
use crate::storage::{ColumnDef, ColumnRead, MicroPartition, ScanSource, Table, ZoneMap};

pub use cache::{BufferCache, CacheOutcome, CacheStats, DEFAULT_CACHE_BYTES};
pub use compact::{compact_table_once, CompactionPolicy, CompactionReport, Compactor, CompactorStats};
pub use format::{ColumnMeta, PartitionMeta};
pub use manifest::{Manifest, PartRef, TableManifest, VersionRecord, DEFAULT_RETENTION};

fn storage(msg: impl Into<String>) -> SnowError {
    SnowError::Storage(msg.into())
}

/// A pin on one committed catalog version: while any `Arc<VersionPin>` is
/// alive, GC will not unlink the partition files it names — even after the
/// version falls out of the retention window (the files go to the deferred
/// set and are swept once the pin drops). Pins are registered weakly on the
/// store, so a forgotten pin costs nothing once dropped.
#[derive(Debug)]
pub struct VersionPin {
    version: u64,
    files: HashSet<String>,
}

impl VersionPin {
    /// The pinned catalog version.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One disk-backed micro-partition: a path, the decoded footer (schema, zone
/// maps, block ranges), and a handle on the store's shared buffer cache.
/// All metadata questions are answered from the footer without touching
/// block bytes; data reads go through [`DiskPartition::read_column_governed`].
#[derive(Debug)]
pub struct DiskPartition {
    path: PathBuf,
    /// Unique id (the file's sequence number) — the cache key namespace.
    file_id: u64,
    meta: PartitionMeta,
    cache: Arc<BufferCache>,
    /// Keeps the backing file pinned against GC for partitions reconstructed
    /// from a *historical* version (time travel / `UNDROP`). `None` for
    /// current-version partitions, whose lifetime the catalog snapshot pins.
    _pin: Option<Arc<VersionPin>>,
}

impl DiskPartition {
    pub fn row_count(&self) -> usize {
        self.meta.row_count
    }

    /// The partition's file name inside `parts/` — the manifest-side identity
    /// used when a copy-on-write rewrite removes this partition.
    pub fn file_name(&self) -> String {
        format!("p{}.part", self.file_id)
    }

    pub fn zone_map(&self, i: usize) -> Option<&ZoneMap> {
        self.meta.columns[i].zone_map.as_ref()
    }

    /// Optimizer statistics from the footer (format v3+; `None` for files
    /// written by older versions). Metadata-only, like `zone_map`.
    pub fn column_stats(&self, i: usize) -> Option<&crate::storage::ColumnStats> {
        self.meta.columns[i].stats.as_ref()
    }

    /// Exact encoded length of column `i`'s block — the I/O cost of reading
    /// it, and the savings of skipping it.
    pub fn column_bytes(&self, i: usize) -> u64 {
        self.meta.columns[i].len
    }

    pub fn total_bytes(&self) -> u64 {
        self.meta.total_block_bytes()
    }

    /// The decoded footer.
    pub fn meta(&self) -> &PartitionMeta {
        &self.meta
    }

    /// Materializes column `i`: governor checkpoint (the `StoreRead` chaos
    /// site), then buffer cache, then — only on a miss — a CRC-checked read
    /// of exactly the block's bytes. The miss charges the in-memory size
    /// against the query's memory budget — the *encoded* size for
    /// dictionary/run-length blocks, which keep their encoding in memory —
    /// so compressed columns also compress the cache and the budget.
    /// Hits are free.
    pub fn read_column_governed(
        &self,
        i: usize,
        gov: &QueryGovernor,
        op: &str,
    ) -> Result<ColumnRead> {
        gov.store_checkpoint(op)?;
        let key = (self.file_id, i as u32);
        if let Some(data) = self.cache.get(key) {
            return Ok(ColumnRead {
                data,
                io_bytes: 0,
                mem_bytes: 0,
                cache: Some(CacheOutcome { hit: true, evictions: 0 }),
            });
        }
        let cm = &self.meta.columns[i];
        let data = Arc::new(format::read_column(&self.path, cm, self.meta.row_count)?);
        let mem_bytes = data.estimated_size();
        let evictions = self.cache.insert(key, data.clone(), mem_bytes);
        gov.charge_memory(mem_bytes, op)?;
        Ok(ColumnRead {
            data,
            io_bytes: cm.len,
            mem_bytes,
            cache: Some(CacheOutcome { hit: false, evictions }),
        })
    }
}

/// Handle on an open database directory: the committed catalog state, the
/// shared buffer cache, and the commit machinery. One `Store` is shared by
/// the [`Database`](crate::engine::Database) that opened it.
pub struct Store {
    dir: PathBuf,
    parts_dir: PathBuf,
    cache: Arc<BufferCache>,
    /// The manifest to be written by the *next* commit: the committed state
    /// plus any file-sequence numbers allocated since. Held across commit
    /// I/O, serializing commits.
    state: Mutex<Manifest>,
    chaos: Mutex<Option<Arc<ChaosSchedule>>>,
    /// Live version pins (weak: a dropped pin unpins). Checked by GC before
    /// any unlink. Lock order: `state` before `pins` before `deferred`.
    pins: Mutex<Vec<Weak<VersionPin>>>,
    /// Files evicted from retention while still pinned (or whose unlink hit
    /// an injected crash). Retried on every subsequent commit; unreferenced
    /// leftovers are also swept on the next write-mode open.
    deferred: Mutex<HashSet<String>>,
    /// Read-only stores skip the advisory lock and refuse every commit.
    read_only: bool,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("version", &self.version())
            .finish()
    }
}

impl Store {
    /// Opens (or initializes) the database directory for writing and
    /// reconstructs every committed table. Takes the directory's advisory
    /// `LOCK` (a second writer process gets a typed `Storage` error). Crash
    /// debris — a leftover `MANIFEST.tmp`, partition files not referenced by
    /// the committed manifest — is swept.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Arc<Store>, Vec<Table>)> {
        Store::open_mode(dir, false)
    }

    /// Opens the directory read-only: no advisory lock (so it works alongside
    /// a live writer process), no debris sweep (debris may be that writer's
    /// in-flight commit), and every commit is refused.
    pub fn open_read_only(dir: impl AsRef<Path>) -> Result<(Arc<Store>, Vec<Table>)> {
        Store::open_mode(dir, true)
    }

    fn open_mode(dir: impl AsRef<Path>, read_only: bool) -> Result<(Arc<Store>, Vec<Table>)> {
        let dir = dir.as_ref().to_path_buf();
        let parts_dir = dir.join("parts");
        std::fs::create_dir_all(&parts_dir)
            .map_err(|e| storage(format!("{}: create: {e}", parts_dir.display())))?;

        if !read_only {
            acquire_lock(&dir)?;
        }
        let mut committed = manifest::read_manifest(&dir)?.unwrap_or_default();
        if let Some(k) = retention_from_env() {
            committed.retention = k;
        }
        if !read_only {
            sweep_debris(&dir, &parts_dir, &committed);
        }

        let cache = Arc::new(BufferCache::new(DEFAULT_CACHE_BYTES));
        let store = Arc::new(Store {
            dir,
            parts_dir,
            cache,
            state: Mutex::new(committed.clone()),
            chaos: Mutex::new(None),
            pins: Mutex::new(Vec::new()),
            deferred: Mutex::new(HashSet::new()),
            read_only,
        });

        let mut tables = Vec::new();
        for (name, tm) in &committed.tables {
            let mut partitions = Vec::with_capacity(tm.partitions.len());
            for pref in &tm.partitions {
                partitions.push(Arc::new(ScanSource::Disk(store.open_partition(pref, name, None)?)));
            }
            tables.push(Table::from_parts(name.clone(), tm.schema.clone(), partitions));
        }
        Ok((store, tables))
    }

    /// Initializes a *fresh* database directory; refuses to clobber one that
    /// already holds a committed manifest (use [`Store::open`] for that).
    pub fn create(dir: impl AsRef<Path>) -> Result<Arc<Store>> {
        let dir = dir.as_ref();
        if dir.join(manifest::MANIFEST_FILE).exists() {
            return Err(storage(format!(
                "{}: directory already contains a database (open it instead)",
                dir.display()
            )));
        }
        let (store, _tables) = Store::open(dir)?;
        Ok(store)
    }

    /// Validates and wires up one committed partition file. `pin` keeps the
    /// file GC-protected for the partition's lifetime (historical reads).
    fn open_partition(
        &self,
        pref: &PartRef,
        table: &str,
        pin: Option<Arc<VersionPin>>,
    ) -> Result<DiskPartition> {
        let path = self.parts_dir.join(&pref.file);
        let file_id = parse_file_id(&pref.file).ok_or_else(|| {
            storage(format!(
                "table '{table}': malformed partition file name '{}'",
                pref.file
            ))
        })?;
        let meta = format::read_footer(&path)?;
        if meta.row_count != pref.rows {
            return Err(storage(format!(
                "table '{table}': {} holds {} rows but the manifest says {}",
                path.display(),
                meta.row_count,
                pref.rows
            )));
        }
        Ok(DiskPartition { path, file_id, meta, cache: self.cache.clone(), _pin: pin })
    }

    /// Allocates the next partition-file sequence number. The number is
    /// consumed even if the write or commit later fails — names are never
    /// reused within a catalog lineage.
    fn alloc_file_id(&self) -> u64 {
        let mut state = self.state.lock().expect("store state lock");
        let id = state.next_file;
        state.next_file += 1;
        id
    }

    /// Writes one sealed partition as an immutable file (not yet visible:
    /// only a manifest commit publishes it). Returns the scan source plus the
    /// manifest reference for the commit.
    pub fn write_partition(
        self: &Arc<Store>,
        part: &MicroPartition,
        schema: &[ColumnDef],
    ) -> Result<(Arc<ScanSource>, PartRef)> {
        let file_id = self.alloc_file_id();
        let file = format!("p{file_id}.part");
        let path = self.parts_dir.join(&file);
        let meta = format::write_partition(&path, schema, part)?;
        let pref = PartRef { file, rows: meta.row_count };
        let disk = DiskPartition { path, file_id, meta, cache: self.cache.clone(), _pin: None };
        Ok((Arc::new(ScanSource::Disk(disk)), pref))
    }

    /// A [`PartitionSink`](crate::storage::PartitionSink) that streams sealed
    /// partitions straight to disk, collecting their manifest references.
    pub fn sink(self: &Arc<Store>, schema: Vec<ColumnDef>) -> DiskSink {
        DiskSink {
            store: self.clone(),
            schema,
            refs: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Commits a new or replaced table atomically. On error (including
    /// injected `ManifestCommit` faults) the previous catalog version stays
    /// committed and the freshly written files remain invisible debris.
    pub fn commit_table(
        &self,
        name: &str,
        schema: Vec<ColumnDef>,
        partitions: Vec<PartRef>,
    ) -> Result<u64> {
        self.commit_with(|m| {
            m.tables
                .insert(name.to_string(), TableManifest { schema, partitions });
        })
    }

    /// Commits a table drop; returns the new version. The dropped table's
    /// files are *not* unlinked here: the drop's predecessor version stays in
    /// the retention history (that is what `UNDROP` restores from), and GC
    /// unlinks the files only once every retained version and pin that
    /// references them is gone.
    pub fn commit_drop(&self, name: &str) -> Result<u64> {
        self.commit_with(|m| {
            m.tables.remove(name);
        })
    }

    /// Every commit follows the same lifecycle: archive the current version
    /// into the retained history, bump, mutate, evict history beyond the
    /// retention window, write the manifest atomically, then GC. Because the
    /// predecessor is always archived first, a file removed by a rewrite or
    /// drop stays referenced for another `retention - 1` commits — history
    /// eviction is the *only* point where a committed file can become
    /// unreachable, and [`Store::sweep_unreachable`] is the only unlink site.
    fn commit_with(&self, mutate: impl FnOnce(&mut Manifest)) -> Result<u64> {
        if self.read_only {
            return Err(storage(format!(
                "{}: database is read-only (opened without the write lock)",
                self.dir.display()
            )));
        }
        let mut state = self.state.lock().expect("store state lock");
        let mut next = state.clone();
        next.archive_current();
        next.version += 1;
        mutate(&mut next);
        next.retention = next.retention.max(1);
        let evicted = next.enforce_retention();
        let chaos = self.chaos.lock().expect("store chaos lock").clone();
        if let Err(e) = manifest::commit_manifest(&self.dir, &next, chaos.as_deref()) {
            // CAS ambiguity: the failure may have struck *after* the atomic
            // rename (a crash-after-commit fault, or an fsync error on the
            // directory). Re-read the on-disk manifest to resolve it — if the
            // new version is durable the commit happened and in-memory state
            // must say so, otherwise the previous version stays live.
            match manifest::read_manifest(&self.dir) {
                Ok(Some(on_disk)) if on_disk.version == next.version => {}
                _ => return Err(e),
            }
        }
        let version = next.version;
        *state = next;
        // GC runs only after the commit is durable. Candidates are the files
        // of just-evicted versions plus earlier deferrals — never a file that
        // merely *exists* in parts/, so a concurrent writer's staged-but-
        // uncommitted partitions are untouchable by construction.
        let mut candidates: Vec<String> = evicted
            .iter()
            .flat_map(|rec| {
                rec.tables
                    .values()
                    .flat_map(|t| t.partitions.iter().map(|p| p.file.clone()))
            })
            .collect();
        candidates.extend(self.deferred.lock().expect("store deferred lock").drain());
        self.sweep_unreachable(candidates, &state, chaos.as_deref());
        Ok(version)
    }

    /// Unlinks each candidate file unless a retained version still references
    /// it (skip forever — it will be re-offered when that version evicts) or
    /// a live pin protects it (defer to the next commit). An injected
    /// [`ChaosSite::GcUnlink`] fault simulates a crash mid-sweep: the file is
    /// deferred, and reopen's debris sweep provides the crash-recovery path.
    fn sweep_unreachable(
        &self,
        candidates: Vec<String>,
        committed: &Manifest,
        chaos: Option<&ChaosSchedule>,
    ) {
        if candidates.is_empty() {
            return;
        }
        let live = committed.all_files();
        let pinned = self.pinned_files();
        let mut deferred = self.deferred.lock().expect("store deferred lock");
        for file in candidates {
            if live.contains(&file) {
                continue;
            }
            if pinned.contains(&file) || gc_chaos_point(chaos, &file).is_err() {
                deferred.insert(file);
                continue;
            }
            let _ = std::fs::remove_file(self.parts_dir.join(&file));
        }
    }

    /// Pins the *current* committed version's files — attached by the engine
    /// to every published catalog snapshot, so an in-flight query holding an
    /// old snapshot keeps its files on disk even after retention evicts the
    /// version.
    pub fn pin_current(&self) -> Arc<VersionPin> {
        let state = self.state.lock().expect("store state lock");
        let files = state
            .tables
            .values()
            .flat_map(|t| t.partitions.iter().map(|p| p.file.clone()))
            .collect();
        self.pin_version(state.version, files)
    }

    /// Registers a pin on `version` covering `files`. GC defers unlinking any
    /// of these files until the returned pin (and every clone) is dropped.
    pub fn pin_version(&self, version: u64, files: HashSet<String>) -> Arc<VersionPin> {
        let pin = Arc::new(VersionPin { version, files });
        let mut pins = self.pins.lock().expect("store pins lock");
        pins.retain(|w| w.strong_count() > 0);
        pins.push(Arc::downgrade(&pin));
        pin
    }

    /// The union of files protected by live pins.
    fn pinned_files(&self) -> HashSet<String> {
        let mut pins = self.pins.lock().expect("store pins lock");
        pins.retain(|w| w.strong_count() > 0);
        let mut out = HashSet::new();
        for w in pins.iter() {
            if let Some(pin) = w.upgrade() {
                out.extend(pin.files.iter().cloned());
            }
        }
        out
    }

    /// Retained catalog versions, ascending (oldest history through current).
    pub fn retained_versions(&self) -> Vec<u64> {
        self.state.lock().expect("store state lock").retained_versions()
    }

    /// The configured retention window (number of versions, ≥ 1).
    pub fn retention(&self) -> u64 {
        self.state.lock().expect("store state lock").retention
    }

    /// Sets the retention window and persists it as a commit of its own —
    /// which immediately evicts (and GCs) any history beyond the new window.
    /// Values < 1 clamp to 1.
    pub fn set_retention(&self, versions: u64) -> Result<u64> {
        let versions = versions.max(1);
        self.commit_with(move |m| {
            m.retention = versions;
        })
    }

    /// Reconstructs table `name` as it stood at committed version `version`.
    /// Returns `Ok(None)` when the version is retained but the table did not
    /// exist in it; a typed `Storage` error when the version has been evicted
    /// from the retention window (or never existed). The returned table's
    /// partitions carry a [`VersionPin`], so its files survive GC for as long
    /// as the table (or any plan scanning it) is alive.
    pub fn open_table_at(self: &Arc<Store>, version: u64, name: &str) -> Result<Option<Table>> {
        let (tm, pin) = {
            let state = self.state.lock().expect("store state lock");
            let Some(tables) = state.tables_at(version) else {
                return Err(storage(format!(
                    "version {version} is outside the retention window (retained: {:?})",
                    state.retained_versions()
                )));
            };
            let Some(tm) = tables.get(name) else {
                return Ok(None);
            };
            let files: HashSet<String> =
                tm.partitions.iter().map(|p| p.file.clone()).collect();
            // Pin under the state lock: a racing commit cannot evict-and-
            // unlink these files between lookup and pin registration.
            (tm.clone(), self.pin_version(version, files))
        };
        let mut partitions = Vec::with_capacity(tm.partitions.len());
        for pref in &tm.partitions {
            partitions.push(Arc::new(ScanSource::Disk(self.open_partition(
                pref,
                name,
                Some(pin.clone()),
            )?)));
        }
        Ok(Some(Table::from_parts(name.to_string(), tm.schema.clone(), partitions)))
    }

    /// The table names present at retained version `version` (typed `Storage`
    /// error outside the retention window).
    pub fn table_names_at(&self, version: u64) -> Result<Vec<String>> {
        let state = self.state.lock().expect("store state lock");
        let Some(tables) = state.tables_at(version) else {
            return Err(storage(format!(
                "version {version} is outside the retention window (retained: {:?})",
                state.retained_versions()
            )));
        };
        Ok(tables.keys().cloned().collect())
    }

    /// Applies one catalog [`WriteSet`](crate::catalog::WriteSet) as a single
    /// manifest commit. Every partition named by the set must already be a
    /// written partition *file* (files are invisible until this commit).
    /// Files removed by rewrites or drops are *not* unlinked here: the
    /// pre-commit version keeps referencing them from the retained history,
    /// and GC unlinks them only once they fall out of every retained version
    /// and pin (see [`Store::commit_with`]).
    pub(crate) fn commit_writes(&self, set: &crate::catalog::WriteSet) -> Result<u64> {
        use crate::catalog::TableWrite;
        // Translate sources to manifest references up front so a non-disk
        // partition is a typed error, not a silently empty manifest entry.
        let as_refs = |parts: &[Arc<crate::storage::ScanSource>]| -> Result<Vec<PartRef>> {
            parts
                .iter()
                .map(|p| match p.as_ref() {
                    crate::storage::ScanSource::Disk(d) => {
                        Ok(PartRef { file: d.file_name(), rows: d.row_count() })
                    }
                    crate::storage::ScanSource::Mem(_) => Err(storage(
                        "cannot commit an in-memory partition to the manifest \
                         (persist it first)",
                    )),
                })
                .collect()
        };
        let mut edits: Vec<(String, ManifestEdit)> = Vec::with_capacity(set.writes.len());
        for (name, write) in &set.writes {
            let edit = match write {
                TableWrite::Put { table, .. } => ManifestEdit::Put {
                    schema: table.schema().to_vec(),
                    partitions: as_refs(table.partitions())?,
                },
                TableWrite::Append { parts, .. } => ManifestEdit::Append(as_refs(parts)?),
                TableWrite::Rewrite { removed, added } => ManifestEdit::Rewrite {
                    removed: removed
                        .iter()
                        .filter_map(|p| match p.as_ref() {
                            crate::storage::ScanSource::Disk(d) => Some(d.file_name()),
                            crate::storage::ScanSource::Mem(_) => None,
                        })
                        .collect(),
                    added: as_refs(added)?,
                },
                TableWrite::Drop => ManifestEdit::Drop,
            };
            edits.push((name.clone(), edit));
        }
        self.commit_with(|m| {
            for (name, edit) in edits {
                match edit {
                    ManifestEdit::Put { schema, partitions } => {
                        m.tables.insert(name, TableManifest { schema, partitions });
                    }
                    ManifestEdit::Append(refs) => {
                        if let Some(tm) = m.tables.get_mut(&name) {
                            tm.partitions.extend(refs);
                        }
                    }
                    ManifestEdit::Rewrite { removed, added } => {
                        if let Some(tm) = m.tables.get_mut(&name) {
                            tm.partitions.retain(|p| !removed.contains(&p.file));
                            tm.partitions.extend(added);
                        }
                    }
                    ManifestEdit::Drop => {
                        m.tables.remove(&name);
                    }
                }
            }
        })
    }

    /// Whether this store was opened read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The committed catalog version.
    pub fn version(&self) -> u64 {
        self.state.lock().expect("store state lock").version
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared buffer cache.
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// Buffer-cache counters (hits / misses / evictions / residency).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Re-bounds the buffer cache (evicting immediately if shrinking).
    pub fn set_cache_capacity(&self, bytes: u64) {
        self.cache.set_capacity(bytes);
    }

    /// Arms (or clears) a fault schedule on the store's commit path — the
    /// `ManifestCommit` chaos site. Read-path faults (`StoreRead`) ride in
    /// each query's governor instead.
    pub fn set_chaos(&self, schedule: Option<ChaosSchedule>) {
        *self.chaos.lock().expect("store chaos lock") = schedule.map(Arc::new);
    }
}

/// Streams sealed partitions to disk during ingest. Clone-cheap: clones share
/// the collected manifest references.
#[derive(Clone)]
pub struct DiskSink {
    store: Arc<Store>,
    schema: Vec<ColumnDef>,
    refs: Arc<Mutex<Vec<PartRef>>>,
}

impl DiskSink {
    /// The manifest references of every partition flushed so far, in order.
    pub fn refs(&self) -> Vec<PartRef> {
        self.refs.lock().expect("sink refs lock").clone()
    }
}

impl crate::storage::PartitionSink for DiskSink {
    fn flush(&self, part: MicroPartition) -> Result<Arc<ScanSource>> {
        let (source, pref) = self.store.write_partition(&part, &self.schema)?;
        self.refs.lock().expect("sink refs lock").push(pref);
        Ok(source)
    }
}

/// Pre-translated manifest mutation for one table of a write set.
enum ManifestEdit {
    Put { schema: Vec<ColumnDef>, partitions: Vec<PartRef> },
    Append(Vec<PartRef>),
    Rewrite { removed: Vec<String>, added: Vec<PartRef> },
    Drop,
}

/// `pN.part` → `N`.
fn parse_file_id(file: &str) -> Option<u64> {
    file.strip_prefix('p')?.strip_suffix(".part")?.parse().ok()
}

/// `SNOWDB_RETAIN` overrides the persisted retention window at open time
/// (clamped to ≥ 1); unset or unparsable means keep the manifest's value.
fn retention_from_env() -> Option<u64> {
    std::env::var("SNOWDB_RETAIN")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(|k| k.max(1))
}

/// Name of the advisory lock file inside the database directory.
pub const LOCK_FILE: &str = "LOCK";

/// Takes the directory's advisory write lock: a `LOCK` file holding the
/// owner's PID, created with `O_EXCL` so exactly one process wins a race.
///
/// - The owning process may re-open the directory freely (the engine keeps no
///   global registry of open stores, and tests legitimately reopen).
/// - A lock left by a *dead* process (checked via `/proc/<pid>`) is stale and
///   is broken — crash recovery must not require manual lock removal.
/// - A lock held by a live foreign process is a typed
///   `SnowError::Storage("database is locked ...")`.
///
/// The lock is advisory and is intentionally never released on drop: the
/// stale-PID check makes releases unnecessary, and an explicit release would
/// break same-process reopen while older handles are still alive.
fn acquire_lock(dir: &Path) -> Result<()> {
    use std::io::Write as _;
    let path = dir.join(LOCK_FILE);
    let my_pid = std::process::id();
    loop {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                f.write_all(format!("{my_pid}\n").as_bytes())
                    .map_err(|e| storage(format!("{}: write: {e}", path.display())))?;
                let _ = f.sync_all();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid == my_pid => return Ok(()),
                    Some(pid) if !pid_is_alive(pid) => {
                        // Stale lock from a dead process: break it and race
                        // for the fresh one (another opener may win — loop).
                        let _ = std::fs::remove_file(&path);
                    }
                    Some(pid) => {
                        return Err(storage(format!(
                            "database is locked by process {pid} ({})",
                            dir.display()
                        )));
                    }
                    // Unreadable/empty lock: a writer is mid-creation or
                    // crashed between create and write. Without a PID there
                    // is no owner to defer to; treat as stale.
                    None => {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            Err(e) => return Err(storage(format!("{}: create lock: {e}", path.display()))),
        }
    }
}

/// Best-effort liveness probe for a PID. On Linux `/proc/<pid>` is exact
/// enough for an advisory lock; elsewhere assume alive (never break a lock
/// we cannot verify is stale).
fn pid_is_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

/// A [`ChaosSite::GcUnlink`] injection point on the GC sweep. Injected
/// faults — including panics — surface as a typed error the sweeper turns
/// into a deferral, simulating a crash that left the file on disk.
fn gc_chaos_point(chaos: Option<&ChaosSchedule>, file: &str) -> Result<()> {
    let Some(schedule) = chaos else { return Ok(()) };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        schedule.maybe_inject(ChaosSite::GcUnlink, "GcUnlink")
    })) {
        Ok(r) => r,
        Err(payload) => Err(storage(format!(
            "simulated crash during GC unlink of {file}: {}",
            crate::govern::panic_message(&*payload)
        ))),
    }
}

/// Removes commit debris: a leftover `MANIFEST.tmp` and partition files not
/// referenced by *any retained version* of the committed manifest (current
/// or history — the bug this replaced swept against the newest version only,
/// destroying time-travel history on every write-mode open). Safe because
/// files only become meaningful through a commit, and `next_file` never
/// reuses names. This is also the crash-recovery path for a GC interrupted
/// mid-sweep: deferred files die here once nothing references them.
fn sweep_debris(dir: &Path, parts_dir: &Path, committed: &Manifest) {
    let _ = std::fs::remove_file(dir.join(manifest::MANIFEST_TMP));
    let live = committed.all_files();
    let Ok(entries) = std::fs::read_dir(parts_dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !live.contains(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnType, TableBuilder};
    use crate::Variant;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("snowdb-store-{}-{tag}-{n}", std::process::id()))
    }

    fn schema() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("ID", ColumnType::Int),
            ColumnDef::new("NAME", ColumnType::Str),
        ]
    }

    fn build_table(store: &Arc<Store>, rows: i64) -> (Table, Vec<PartRef>) {
        let sink = store.sink(schema());
        let mut b = TableBuilder::with_sink("T", schema(), 4, Box::new(sink.clone()));
        for i in 0..rows {
            b.push_row(&[Variant::Int(i), Variant::str(format!("n{i}"))]).unwrap();
        }
        let t = b.finish().unwrap();
        (t, sink.refs())
    }

    #[test]
    fn write_commit_reopen_roundtrip() {
        let dir = temp_dir("roundtrip");
        {
            let store = Store::create(&dir).unwrap();
            let (t, refs) = build_table(&store, 10);
            assert_eq!(t.partitions().len(), 3);
            assert_eq!(refs.len(), 3);
            store.commit_table("T", schema(), refs).unwrap();
            assert_eq!(store.version(), 1);
        }
        let (store, tables) = Store::open(&dir).unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.name(), "T");
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.schema(), schema());
        assert!(t.partitions().iter().all(|p| p.is_disk()));
        // Lazy read returns the data.
        let col = t.partitions()[0].read_column(0).unwrap();
        assert_eq!(col.get(0), Variant::Int(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_partitions_are_invisible_and_swept() {
        let dir = temp_dir("sweep");
        {
            let store = Store::create(&dir).unwrap();
            let (t, refs) = build_table(&store, 8);
            store.commit_table("T", schema(), refs).unwrap();
            drop(t);
            // A second table is written but never committed (simulated crash).
            let _ = build_table(&store, 5);
        }
        let parts_before = std::fs::read_dir(dir.join("parts")).unwrap().count();
        assert!(parts_before > 2, "orphans present before reopen");
        let (_store, tables) = Store::open(&dir).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 8);
        // Orphans are swept; only the committed table's two files remain.
        let parts_after = std::fs::read_dir(dir.join("parts")).unwrap().count();
        assert_eq!(parts_after, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hit_makes_reads_free() {
        let dir = temp_dir("cache");
        let store = Store::create(&dir).unwrap();
        let (t, refs) = build_table(&store, 4);
        store.commit_table("T", schema(), refs).unwrap();
        let gov = QueryGovernor::unbounded();
        let cold = t.partitions()[0].read_column_governed(0, &gov, "Scan").unwrap();
        assert!(cold.io_bytes > 0);
        assert!(!cold.cache.unwrap().hit);
        let warm = t.partitions()[0].read_column_governed(0, &gov, "Scan").unwrap();
        assert_eq!(warm.io_bytes, 0);
        assert!(warm.cache.unwrap().hit);
        assert!(Arc::ptr_eq(&cold.data, &warm.data));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_reads_charge_memory_budget_on_miss_only() {
        let dir = temp_dir("gov");
        let store = Store::create(&dir).unwrap();
        let (t, refs) = build_table(&store, 4);
        store.commit_table("T", schema(), refs).unwrap();
        // Budget too small for the decoded block: the miss trips it.
        let tight = QueryGovernor::unbounded().with_memory_limit(1);
        let err = t.partitions()[0]
            .read_column_governed(0, &tight, "Scan")
            .unwrap_err();
        assert!(matches!(err, SnowError::ResourceExhausted(_)), "{err}");
        // The block is now cached; a hit under the same tight budget is free.
        let warm = t.partitions()[0]
            .read_column_governed(0, &tight, "Scan")
            .unwrap();
        assert_eq!(warm.mem_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_drop_retains_history_then_gc_unlinks_past_retention() {
        let dir = temp_dir("drop");
        let store = Store::create(&dir).unwrap();
        let (_t, refs) = build_table(&store, 8);
        store.commit_table("T", schema(), refs).unwrap();
        store.commit_drop("T").unwrap();
        assert_eq!(store.version(), 2);
        // The drop keeps the files: version 1 is retained and UNDROP-able.
        assert_eq!(std::fs::read_dir(dir.join("parts")).unwrap().count(), 2);
        assert!(store.open_table_at(1, "T").unwrap().is_some());
        // Shrinking retention to 1 evicts version 1 and GC unlinks its files.
        store.set_retention(1).unwrap();
        assert_eq!(std::fs::read_dir(dir.join("parts")).unwrap().count(), 0);
        let err = store.open_table_at(1, "T").unwrap_err();
        assert!(matches!(err, SnowError::Storage(_)), "{err}");
        let (store2, tables) = Store::open(&dir).unwrap();
        assert_eq!(tables.len(), 0);
        assert_eq!(store2.version(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retained_versions_survive_reopen_and_sweep() {
        let dir = temp_dir("retain");
        {
            let store = Store::create(&dir).unwrap();
            let (_t, refs) = build_table(&store, 8);
            store.commit_table("T", schema(), refs).unwrap();
            let (_t2, refs2) = build_table(&store, 4);
            // Replace the table's partitions entirely: version 1's files are
            // now referenced only by the history.
            store.commit_table("T", schema(), refs2).unwrap();
        }
        // Reopen sweeps debris — the historical files must survive it (the
        // pre-retention sweeper would have deleted them here).
        let (store, tables) = Store::open(&dir).unwrap();
        assert_eq!(tables[0].row_count(), 4);
        assert_eq!(store.retained_versions(), vec![1, 2]);
        let old = store.open_table_at(1, "T").unwrap().unwrap();
        assert_eq!(old.row_count(), 8);
        let col = old.partitions()[0].read_column(0).unwrap();
        assert_eq!(col.get(0), Variant::Int(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinned_files_survive_eviction_until_pin_drops() {
        let dir = temp_dir("pin");
        let store = Store::create(&dir).unwrap();
        let (_t, refs) = build_table(&store, 8);
        store.commit_table("T", schema(), refs).unwrap();
        // Pin version 1 (as a long-running reader would), then replace the
        // table's partitions and evict version 1 from retention.
        let old = store.open_table_at(1, "T").unwrap().unwrap();
        let (_t2, refs2) = build_table(&store, 4);
        store.commit_table("T", schema(), refs2).unwrap();
        store.set_retention(1).unwrap();
        // Version 1's two files are deferred, not unlinked: still scannable.
        assert_eq!(std::fs::read_dir(dir.join("parts")).unwrap().count(), 3);
        let col = old.partitions()[0].read_column(0).unwrap();
        assert_eq!(col.get(0), Variant::Int(0));
        // Drop the pin; the next commit retries the deferral and unlinks.
        drop(old);
        store.set_retention(1).unwrap();
        assert_eq!(std::fs::read_dir(dir.join("parts")).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_commit_fault_preserves_previous_version() {
        let dir = temp_dir("chaos");
        let store = Store::create(&dir).unwrap();
        let (_t, refs) = build_table(&store, 8);
        store.commit_table("T", schema(), refs).unwrap();
        // Period-1 schedule: the very first injection point fires, killing
        // the commit before the rename.
        store.set_chaos(Some(ChaosSchedule::with_period(0xC0FFEE, 1)));
        let (_t2, refs2) = build_table(&store, 3);
        let err = store.commit_table("T2", schema(), refs2).unwrap_err();
        assert!(matches!(err, SnowError::Storage(_) | SnowError::Internal(_)), "{err}");
        store.set_chaos(None);
        assert_eq!(store.version(), 1, "failed commit must not advance the version");
        // Reopen sees only the committed table.
        drop(store);
        let (store2, tables) = Store::open(&dir).unwrap();
        assert_eq!(store2.version(), 1);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "T");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_database() {
        let dir = temp_dir("refuse");
        let store = Store::create(&dir).unwrap();
        store.commit_table("T", schema(), vec![]).unwrap();
        drop(store);
        let err = Store::create(&dir).unwrap_err();
        assert!(matches!(err, SnowError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
