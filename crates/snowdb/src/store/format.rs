//! Immutable micro-partition file format.
//!
//! One file per micro-partition, laid out so that projection pruning is a
//! byte-range decision: per-column compressed blocks first, then a
//! self-describing footer, so a reader fetches the footer once and afterwards
//! reads exactly the blocks of the columns a query materializes.
//!
//! ```text
//! +--------+---------+-----------------+-----------------+-----+--------+
//! | "SNPT" | version | column block 0  | column block 1  | ... | footer |
//! | 4 B    | u16+pad | (encoding per   | (offset/len/crc |     |        |
//! |        |         |  column type)   |  in footer)     |     |        |
//! +--------+---------+-----------------+-----------------+-----+--------+
//!                                        +------------+------------+--------+
//!                        ... footer ...  | footer crc | footer len | "SNPT" |
//!                                        | u32        | u32        | 4 B    |
//!                                        +------------+------------+--------+
//! ```
//!
//! The footer carries the schema (column names and types), row count, and for
//! every column its on-disk byte range, a CRC32 of the block, and the zone map
//! (min/max/null-count) — so partition pruning needs *zero* block bytes.
//!
//! Block encodings (all little-endian, varints are LEB128):
//! - `Int`    — validity bitmap, then zigzag-varint per non-null value;
//! - `Float`  — validity bitmap, then raw `f64` bits per non-null value;
//! - `Bool`   — validity bitmap, then value bitmap (one bit per row);
//! - `Str`    — validity bitmap, then `varint len + bytes` per non-null value;
//! - `Variant`— per row a tagged tree (null / bool / int / float / str /
//!   array / object), depth-guarded on decode.
//!
//! Version 2 adds a per-column *encoding id* to the footer and two encoded
//! block layouts chosen at partition-build time (see
//! [`crate::storage::encode`]):
//! - `DictStr` — varint dictionary length, `varint len + bytes` per entry,
//!   then per row `varint code + 1` (`0` marks NULL);
//! - `RleInt`/`RleBool` — varint run count, varint length per run, then the
//!   per-run values as a plain `Int`/`Bool` block of `runs` rows.
//!
//! Version 3 adds per-column optimizer statistics to the footer — NDV (KMV)
//! sketch hashes, null counts, equi-depth histogram bounds, and array
//! fan-out counters — so cost-based planning over a reopened database is a
//! metadata-only read, like zone-map pruning. Files written by versions 1
//! and 2 remain readable and simply report no statistics.
//!
//! Version 1 files (no encoding ids, all blocks plain) remain readable.
//!
//! Every decode path is cursor-based and returns a typed
//! [`SnowError::Storage`] on truncation, bad magic, unsupported version,
//! unknown encoding id, CRC mismatch, or malformed bytes (including
//! out-of-range dictionary codes and inconsistent run lengths) — corrupt
//! input never panics.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::error::{Result, SnowError};
use crate::storage::stats::{ColumnStats, KmvSketch};
use crate::storage::{ColumnData, ColumnDef, ColumnType, MicroPartition, ZoneMap};
use crate::variant::{Object, Variant};

/// File magic, present both in the 8-byte header and the 4-byte trailer.
pub const MAGIC: [u8; 4] = *b"SNPT";
/// Current format version (v3 = per-column optimizer statistics; v2 =
/// per-column encoding ids); readers accept every version from
/// [`MIN_FORMAT_VERSION`] up and reject anything else with a typed error.
pub const FORMAT_VERSION: u16 = 3;
/// Oldest version the reader still understands (v1 = all blocks plain).
pub const MIN_FORMAT_VERSION: u16 = 1;
/// Fixed byte length of the header (`magic + version + padding`).
pub const HEADER_LEN: u64 = 8;
/// Fixed byte length of the trailer (`footer crc + footer len + magic`).
pub const TRAILER_LEN: u64 = 12;
/// Maximum nesting depth accepted when decoding a `VARIANT` value — bounds
/// stack use on adversarially deep (or corrupt) input.
pub const MAX_VARIANT_DEPTH: usize = 512;

/// On-disk block encoding of one column, recorded per column in the footer.
/// The *logical* type is [`ColumnMeta::ty`]; the encoding says how the block
/// bytes represent it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockEncoding {
    /// The v1 layouts: one value per row.
    Plain,
    /// Dictionary-coded strings.
    DictStr,
    /// Run-length-coded ints.
    RleInt,
    /// Run-length-coded bools.
    RleBool,
}

impl BlockEncoding {
    fn tag(self) -> u8 {
        match self {
            BlockEncoding::Plain => 0,
            BlockEncoding::DictStr => 1,
            BlockEncoding::RleInt => 2,
            BlockEncoding::RleBool => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<BlockEncoding> {
        match tag {
            0 => Ok(BlockEncoding::Plain),
            1 => Ok(BlockEncoding::DictStr),
            2 => Ok(BlockEncoding::RleInt),
            3 => Ok(BlockEncoding::RleBool),
            t => Err(storage(format!("unknown column encoding id {t}"))),
        }
    }

    /// The encoding a column's in-memory representation writes as.
    fn of(col: &ColumnData) -> BlockEncoding {
        match col {
            ColumnData::DictStr { .. } => BlockEncoding::DictStr,
            ColumnData::Runs { values, .. } => match values.column_type() {
                ColumnType::Int => BlockEncoding::RleInt,
                ColumnType::Bool => BlockEncoding::RleBool,
                // Runs only ever wrap int/bool values; anything else writes
                // decoded (see `encode_column`).
                _ => BlockEncoding::Plain,
            },
            _ => BlockEncoding::Plain,
        }
    }
}

/// Footer entry for one column: identity, on-disk block range, and stats.
#[derive(Clone, Debug)]
pub struct ColumnMeta {
    pub name: String,
    pub ty: ColumnType,
    /// How the block bytes are encoded (always [`BlockEncoding::Plain`] for
    /// v1 files).
    pub encoding: BlockEncoding,
    /// Absolute byte offset of the block from the start of the file.
    pub offset: u64,
    /// Encoded block length in bytes — the exact I/O cost of reading the
    /// column, and the unit `bytes_scanned` accounts for disk scans.
    pub len: u64,
    /// CRC32 (IEEE) of the encoded block.
    pub crc: u32,
    /// Zone map, when the column type supports one.
    pub zone_map: Option<ZoneMap>,
    /// Optimizer statistics (format v3+); `None` when the file predates v3.
    pub stats: Option<ColumnStats>,
}

/// Decoded footer of a partition file.
#[derive(Clone, Debug)]
pub struct PartitionMeta {
    pub row_count: usize,
    pub columns: Vec<ColumnMeta>,
}

impl PartitionMeta {
    /// The schema as recorded in the footer.
    pub fn schema(&self) -> Vec<ColumnDef> {
        self.columns.iter().map(|c| ColumnDef::new(c.name.clone(), c.ty)).collect()
    }

    /// Sum of all encoded block lengths (the file's data bytes).
    pub fn total_block_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.len).sum()
    }
}

fn storage(msg: impl Into<String>) -> SnowError {
    SnowError::Storage(msg.into())
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> SnowError {
    storage(format!("{}: {what}: {e}", path.display()))
}

/// Prepends file-path context onto a `Storage` error from a lower layer.
fn with_path(path: &Path, e: SnowError) -> SnowError {
    match e {
        SnowError::Storage(m) => storage(format!("{}: {m}", path.display())),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled, no external crates in this workspace.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive encoders / cursor-based decoders.
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_bitmap(out: &mut Vec<u8>, bits: impl Iterator<Item = bool>) {
    let mut byte = 0u8;
    let mut n = 0usize;
    for b in bits {
        if b {
            byte |= 1 << (n % 8);
        }
        n += 1;
        if n.is_multiple_of(8) {
            out.push(byte);
            byte = 0;
        }
    }
    if !n.is_multiple_of(8) {
        out.push(byte);
    }
}

/// Bounds-checked forward cursor over a byte slice; every read is fallible.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| storage(format!("truncated: need {n} bytes at offset {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(storage("varint overflows u64".to_string()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A usize-bounded varint for in-memory lengths/counts; rejects values
    /// that could not possibly fit in the remaining input, so corrupt lengths
    /// fail fast instead of attempting huge allocations.
    fn varlen(&mut self) -> Result<usize> {
        let v = self.varint()?;
        let n = usize::try_from(v).map_err(|_| storage("length overflows usize"))?;
        Ok(n)
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(storage(format!(
                "trailing garbage: {} bytes after expected end",
                self.buf.len() - self.pos
            )))
        }
    }
}

struct Bitmap<'a> {
    bytes: &'a [u8],
}

impl<'a> Bitmap<'a> {
    fn read(cur: &mut Cur<'a>, rows: usize) -> Result<Bitmap<'a>> {
        Ok(Bitmap { bytes: cur.take(rows.div_ceil(8))? })
    }

    fn get(&self, i: usize) -> bool {
        self.bytes[i / 8] >> (i % 8) & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Variant encoding: a compact tagged tree.
// ---------------------------------------------------------------------------

const VTAG_NULL: u8 = 0;
const VTAG_FALSE: u8 = 1;
const VTAG_TRUE: u8 = 2;
const VTAG_INT: u8 = 3;
const VTAG_FLOAT: u8 = 4;
const VTAG_STR: u8 = 5;
const VTAG_ARRAY: u8 = 6;
const VTAG_OBJECT: u8 = 7;

/// Appends the binary encoding of `v` to `out`.
pub fn encode_variant(v: &Variant, out: &mut Vec<u8>) {
    match v {
        Variant::Null => out.push(VTAG_NULL),
        Variant::Bool(false) => out.push(VTAG_FALSE),
        Variant::Bool(true) => out.push(VTAG_TRUE),
        Variant::Int(i) => {
            out.push(VTAG_INT);
            put_varint(out, zigzag(*i));
        }
        Variant::Float(f) => {
            out.push(VTAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Variant::Str(s) => {
            out.push(VTAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Variant::Array(items) => {
            out.push(VTAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items.iter() {
                encode_variant(item, out);
            }
        }
        Variant::Object(obj) => {
            out.push(VTAG_OBJECT);
            put_varint(out, obj.len() as u64);
            for (k, val) in obj.iter() {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_variant(val, out);
            }
        }
    }
}

fn decode_str(cur: &mut Cur<'_>) -> Result<Arc<str>> {
    let len = cur.varlen()?;
    let bytes = cur.take(len)?;
    let s = std::str::from_utf8(bytes).map_err(|e| storage(format!("invalid utf-8: {e}")))?;
    Ok(Arc::from(s))
}

fn decode_variant(cur: &mut Cur<'_>, depth: usize) -> Result<Variant> {
    if depth > MAX_VARIANT_DEPTH {
        return Err(storage(format!("variant nesting exceeds depth {MAX_VARIANT_DEPTH}")));
    }
    match cur.u8()? {
        VTAG_NULL => Ok(Variant::Null),
        VTAG_FALSE => Ok(Variant::Bool(false)),
        VTAG_TRUE => Ok(Variant::Bool(true)),
        VTAG_INT => Ok(Variant::Int(unzigzag(cur.varint()?))),
        VTAG_FLOAT => Ok(Variant::Float(f64::from_bits(cur.u64()?))),
        VTAG_STR => Ok(Variant::Str(decode_str(cur)?)),
        VTAG_ARRAY => {
            let n = cur.varlen()?;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_variant(cur, depth + 1)?);
            }
            Ok(Variant::array(items))
        }
        VTAG_OBJECT => {
            let n = cur.varlen()?;
            let mut obj = Object::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = decode_str(cur)?;
                let val = decode_variant(cur, depth + 1)?;
                obj.insert(key, val);
            }
            Ok(Variant::object(obj))
        }
        tag => Err(storage(format!("unknown variant tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// Column block encoding.
// ---------------------------------------------------------------------------

/// Appends the encoded block for `col` to `out`.
pub fn encode_column(col: &ColumnData, out: &mut Vec<u8>) {
    match col {
        ColumnData::Int(v) => {
            put_bitmap(out, v.iter().map(Option::is_some));
            for x in v.iter().flatten() {
                put_varint(out, zigzag(*x));
            }
        }
        ColumnData::Float(v) => {
            put_bitmap(out, v.iter().map(Option::is_some));
            for x in v.iter().flatten() {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ColumnData::Bool(v) => {
            put_bitmap(out, v.iter().map(Option::is_some));
            put_bitmap(out, v.iter().map(|b| b.unwrap_or(false)));
        }
        ColumnData::Str(v) => {
            put_bitmap(out, v.iter().map(Option::is_some));
            for s in v.iter().flatten() {
                put_varint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
        ColumnData::Variant(v) => {
            for val in v {
                encode_variant(val, out);
            }
        }
        ColumnData::DictStr { codes, dict } => {
            put_varint(out, dict.len() as u64);
            for s in dict.iter() {
                put_varint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            // Per row: code + 1, with 0 marking NULL — codes are dense and
            // small, so the varint usually costs one byte.
            for &c in codes {
                if c == crate::storage::NULL_CODE {
                    put_varint(out, 0);
                } else {
                    put_varint(out, u64::from(c) + 1);
                }
            }
        }
        ColumnData::Runs { ends, values } => match values.column_type() {
            ColumnType::Int | ColumnType::Bool => {
                put_varint(out, ends.len() as u64);
                let mut start = 0u32;
                for &e in ends {
                    put_varint(out, u64::from(e - start));
                    start = e;
                }
                encode_column(values, out);
            }
            // Runs only ever wrap int/bool values; a foreign payload writes
            // decoded so the block matches its Plain footer encoding.
            _ => encode_column(&col.decoded(), out),
        },
    }
}

/// Decodes a plain (one value per row) block body from the cursor.
fn decode_plain(ty: ColumnType, rows: usize, cur: &mut Cur<'_>) -> Result<ColumnData> {
    Ok(match ty {
        ColumnType::Int => {
            let valid = Bitmap::read(cur, rows)?;
            let mut v = Vec::with_capacity(rows);
            for i in 0..rows {
                v.push(if valid.get(i) { Some(unzigzag(cur.varint()?)) } else { None });
            }
            ColumnData::Int(v)
        }
        ColumnType::Float => {
            let valid = Bitmap::read(cur, rows)?;
            let mut v = Vec::with_capacity(rows);
            for i in 0..rows {
                v.push(if valid.get(i) { Some(f64::from_bits(cur.u64()?)) } else { None });
            }
            ColumnData::Float(v)
        }
        ColumnType::Bool => {
            let valid = Bitmap::read(cur, rows)?;
            let vals = Bitmap::read(cur, rows)?;
            let mut v = Vec::with_capacity(rows);
            for i in 0..rows {
                v.push(valid.get(i).then(|| vals.get(i)));
            }
            ColumnData::Bool(v)
        }
        ColumnType::Str => {
            let valid = Bitmap::read(cur, rows)?;
            let mut v = Vec::with_capacity(rows);
            for i in 0..rows {
                v.push(if valid.get(i) { Some(decode_str(cur)?) } else { None });
            }
            ColumnData::Str(v)
        }
        ColumnType::Variant => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(decode_variant(cur, 0)?);
            }
            ColumnData::Variant(v)
        }
    })
}

/// Decodes a column block of `rows` rows; the block must be consumed exactly.
/// The decoded column *keeps* the block's encoding (`DictStr`/`Runs` stay
/// encoded in memory) — decoding to the plain representation is an execution
/// decision, not a storage one.
pub fn decode_column(
    ty: ColumnType,
    encoding: BlockEncoding,
    rows: usize,
    bytes: &[u8],
) -> Result<ColumnData> {
    let mut cur = Cur::new(bytes);
    let col = match encoding {
        BlockEncoding::Plain => decode_plain(ty, rows, &mut cur)?,
        BlockEncoding::DictStr => {
            if ty != ColumnType::Str {
                return Err(storage(format!(
                    "dictionary encoding on non-string column type {}",
                    ty.name()
                )));
            }
            let dict_len = cur.varlen()?;
            if dict_len >= crate::storage::NULL_CODE as usize {
                return Err(storage(format!("dictionary length {dict_len} out of range")));
            }
            let mut dict = Vec::with_capacity(dict_len.min(4096));
            for _ in 0..dict_len {
                dict.push(decode_str(&mut cur)?);
            }
            let mut codes = Vec::with_capacity(rows);
            for _ in 0..rows {
                let raw = cur.varint()?;
                if raw == 0 {
                    codes.push(crate::storage::NULL_CODE);
                } else if (raw - 1) < dict_len as u64 {
                    codes.push((raw - 1) as u32);
                } else {
                    return Err(storage(format!(
                        "dictionary code {} out of range (dictionary has {dict_len} entries)",
                        raw - 1
                    )));
                }
            }
            ColumnData::DictStr { codes, dict: Arc::new(dict) }
        }
        BlockEncoding::RleInt | BlockEncoding::RleBool => {
            let vty = if encoding == BlockEncoding::RleInt {
                ColumnType::Int
            } else {
                ColumnType::Bool
            };
            if ty != vty {
                return Err(storage(format!(
                    "run-length encoding of {} on column type {}",
                    vty.name(),
                    ty.name()
                )));
            }
            let run_count = cur.varlen()?;
            if run_count > rows {
                return Err(storage(format!(
                    "run count {run_count} exceeds row count {rows}"
                )));
            }
            let mut ends = Vec::with_capacity(run_count);
            let mut total = 0u64;
            for _ in 0..run_count {
                let len = cur.varint()?;
                if len == 0 {
                    return Err(storage("empty run in run-length block".to_string()));
                }
                total += len;
                if total > rows as u64 {
                    return Err(storage(format!(
                        "run lengths total {total} exceeds row count {rows}"
                    )));
                }
                ends.push(total as u32);
            }
            if total != rows as u64 {
                return Err(storage(format!(
                    "run lengths total {total} does not cover {rows} rows"
                )));
            }
            let values = decode_plain(vty, run_count, &mut cur)?;
            ColumnData::Runs { ends, values: Box::new(values) }
        }
    };
    cur.done()?;
    Ok(col)
}

// ---------------------------------------------------------------------------
// Footer encoding.
// ---------------------------------------------------------------------------

fn ty_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Bool => 2,
        ColumnType::Str => 3,
        ColumnType::Variant => 4,
    }
}

fn ty_from_tag(tag: u8) -> Result<ColumnType> {
    match tag {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Float),
        2 => Ok(ColumnType::Bool),
        3 => Ok(ColumnType::Str),
        4 => Ok(ColumnType::Variant),
        t => Err(storage(format!("unknown column type tag {t}"))),
    }
}

fn encode_footer(meta: &PartitionMeta, version: u16) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, meta.row_count as u64);
    put_varint(&mut out, meta.columns.len() as u64);
    for c in &meta.columns {
        put_varint(&mut out, c.name.len() as u64);
        out.extend_from_slice(c.name.as_bytes());
        out.push(ty_tag(c.ty));
        if version >= 2 {
            out.push(c.encoding.tag());
        } else {
            debug_assert_eq!(c.encoding, BlockEncoding::Plain, "v1 footers are plain-only");
        }
        put_varint(&mut out, c.offset);
        put_varint(&mut out, c.len);
        out.extend_from_slice(&c.crc.to_le_bytes());
        match &c.zone_map {
            None => out.push(0),
            Some(zm) => {
                out.push(1);
                encode_variant(&zm.min, &mut out);
                encode_variant(&zm.max, &mut out);
                put_varint(&mut out, zm.null_count as u64);
            }
        }
        if version >= 3 {
            match &c.stats {
                None => out.push(0),
                Some(s) => {
                    out.push(1);
                    put_varint(&mut out, s.rows);
                    put_varint(&mut out, s.nulls);
                    put_varint(&mut out, s.ndv.hashes().len() as u64);
                    for &h in s.ndv.hashes() {
                        out.extend_from_slice(&h.to_le_bytes());
                    }
                    put_varint(&mut out, s.histogram.len() as u64);
                    for b in &s.histogram {
                        encode_variant(b, &mut out);
                    }
                    put_varint(&mut out, s.array_cells);
                    put_varint(&mut out, s.array_elems);
                }
            }
        }
    }
    out
}

fn decode_footer(bytes: &[u8], version: u16) -> Result<PartitionMeta> {
    let mut cur = Cur::new(bytes);
    let row_count = cur.varlen()?;
    let col_count = cur.varlen()?;
    let mut columns = Vec::with_capacity(col_count.min(4096));
    for _ in 0..col_count {
        let name = decode_str(&mut cur)?.to_string();
        let ty = ty_from_tag(cur.u8()?)?;
        // v1 footers carry no encoding id: every block is plain.
        let encoding = if version >= 2 {
            BlockEncoding::from_tag(cur.u8()?)?
        } else {
            BlockEncoding::Plain
        };
        let offset = cur.varint()?;
        let len = cur.varint()?;
        let crc = cur.u32()?;
        let zone_map = match cur.u8()? {
            0 => None,
            1 => {
                let min = decode_variant(&mut cur, 0)?;
                let max = decode_variant(&mut cur, 0)?;
                let null_count = cur.varlen()?;
                Some(ZoneMap { min, max, null_count })
            }
            f => return Err(storage(format!("bad zone-map flag {f}"))),
        };
        // v1/v2 footers carry no statistics block.
        let stats = if version >= 3 {
            match cur.u8()? {
                0 => None,
                1 => {
                    let rows = cur.varint()?;
                    let nulls = cur.varint()?;
                    let hash_count = cur.varlen()?;
                    if hash_count > crate::storage::stats::KMV_K {
                        return Err(storage(format!(
                            "NDV sketch holds {hash_count} hashes (max {})",
                            crate::storage::stats::KMV_K
                        )));
                    }
                    let mut hashes = Vec::with_capacity(hash_count);
                    for _ in 0..hash_count {
                        hashes.push(cur.u64()?);
                    }
                    let bound_count = cur.varlen()?;
                    if bound_count > crate::storage::stats::HISTOGRAM_BOUNDS {
                        return Err(storage(format!(
                            "histogram holds {bound_count} bounds (max {})",
                            crate::storage::stats::HISTOGRAM_BOUNDS
                        )));
                    }
                    let mut histogram = Vec::with_capacity(bound_count);
                    for _ in 0..bound_count {
                        histogram.push(decode_variant(&mut cur, 0)?);
                    }
                    let array_cells = cur.varint()?;
                    let array_elems = cur.varint()?;
                    Some(ColumnStats {
                        rows,
                        nulls,
                        ndv: KmvSketch::from_hashes(hashes),
                        histogram,
                        array_cells,
                        array_elems,
                    })
                }
                f => return Err(storage(format!("bad column-stats flag {f}"))),
            }
        } else {
            None
        };
        columns.push(ColumnMeta { name, ty, encoding, offset, len, crc, zone_map, stats });
    }
    cur.done()?;
    Ok(PartitionMeta { row_count, columns })
}

// ---------------------------------------------------------------------------
// Whole-file writer / reader.
// ---------------------------------------------------------------------------

/// Writes a sealed micro-partition to `path` and fsyncs it. The file is not
/// visible to any reader until a manifest commit references it, so the write
/// needs no temp-file dance of its own.
pub fn write_partition(
    path: &Path,
    schema: &[ColumnDef],
    part: &MicroPartition,
) -> Result<PartitionMeta> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&[0u8; 2]); // reserved
    debug_assert_eq!(buf.len() as u64, HEADER_LEN);

    let mut columns = Vec::with_capacity(schema.len());
    for (i, def) in schema.iter().enumerate() {
        let offset = buf.len() as u64;
        encode_column(part.column(i), &mut buf);
        let len = buf.len() as u64 - offset;
        let crc = crc32(&buf[offset as usize..]);
        // Record the type the block was *encoded* with, not the declared
        // schema type: a column that drifted mid-ingest is promoted to
        // Variant storage, and the decoder keys off this footer field.
        columns.push(ColumnMeta {
            name: def.name.clone(),
            ty: part.column(i).column_type(),
            encoding: BlockEncoding::of(part.column(i)),
            offset,
            len,
            crc,
            zone_map: part.zone_map(i).cloned(),
            stats: part.column_stats(i).cloned(),
        });
    }
    let meta = PartitionMeta { row_count: part.row_count(), columns };

    let footer = encode_footer(&meta, FORMAT_VERSION);
    buf.extend_from_slice(&footer);
    buf.extend_from_slice(&crc32(&footer).to_le_bytes());
    buf.extend_from_slice(&(footer.len() as u32).to_le_bytes());
    buf.extend_from_slice(&MAGIC);

    let mut f = std::fs::File::create(path).map_err(|e| io_err(path, "create", e))?;
    f.write_all(&buf).map_err(|e| io_err(path, "write", e))?;
    f.sync_all().map_err(|e| io_err(path, "fsync", e))?;
    Ok(meta)
}

/// Reads and validates the footer of a partition file: magic, version, and
/// footer CRC. Block bytes are *not* touched — this is the metadata-only read
/// that makes pruning free of data I/O.
pub fn read_footer(path: &Path) -> Result<PartitionMeta> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, "open", e))?;
    let file_len = f.metadata().map_err(|e| io_err(path, "stat", e))?.len();
    if file_len < HEADER_LEN + TRAILER_LEN {
        return Err(storage(format!(
            "{}: file too short ({file_len} bytes) to be a partition file",
            path.display()
        )));
    }

    let mut header = [0u8; 8];
    f.read_exact(&mut header).map_err(|e| io_err(path, "read header", e))?;
    if header[0..4] != MAGIC {
        return Err(storage(format!("{}: bad magic (not a partition file)", path.display())));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(storage(format!(
            "{}: unsupported format version {version} (expected {MIN_FORMAT_VERSION}..={FORMAT_VERSION})",
            path.display()
        )));
    }

    let mut trailer = [0u8; TRAILER_LEN as usize];
    f.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(|e| io_err(path, "seek trailer", e))?;
    f.read_exact(&mut trailer).map_err(|e| io_err(path, "read trailer", e))?;
    if trailer[8..12] != MAGIC {
        return Err(storage(format!("{}: bad trailing magic (truncated file?)", path.display())));
    }
    let footer_crc = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes"));
    let footer_len = u64::from(u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes")));
    let footer_end = file_len - TRAILER_LEN;
    if footer_len > footer_end - HEADER_LEN {
        return Err(storage(format!(
            "{}: footer length {footer_len} exceeds file size",
            path.display()
        )));
    }

    let mut footer = vec![0u8; footer_len as usize];
    f.seek(SeekFrom::Start(footer_end - footer_len))
        .map_err(|e| io_err(path, "seek footer", e))?;
    f.read_exact(&mut footer).map_err(|e| io_err(path, "read footer", e))?;
    if crc32(&footer) != footer_crc {
        return Err(storage(format!("{}: footer checksum mismatch", path.display())));
    }

    let meta = decode_footer(&footer, version).map_err(|e| with_path(path, e))?;
    for c in &meta.columns {
        if c.offset < HEADER_LEN || c.offset + c.len > footer_end - footer_len {
            return Err(storage(format!(
                "{}: column '{}' block range [{}, {}) escapes the data section",
                path.display(),
                c.name,
                c.offset,
                c.offset + c.len
            )));
        }
    }
    Ok(meta)
}

/// Reads, CRC-checks, and decodes one column block. This is the *only* data
/// I/O a disk scan performs, and it reads exactly `meta.len` bytes.
pub fn read_column(path: &Path, meta: &ColumnMeta, rows: usize) -> Result<ColumnData> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, "open", e))?;
    let mut block = vec![0u8; meta.len as usize];
    f.seek(SeekFrom::Start(meta.offset))
        .map_err(|e| io_err(path, "seek block", e))?;
    f.read_exact(&mut block)
        .map_err(|e| io_err(path, &format!("read column '{}'", meta.name), e))?;
    if crc32(&block) != meta.crc {
        return Err(storage(format!(
            "{}: column '{}' block checksum mismatch",
            path.display(),
            meta.name
        )));
    }
    decode_column(meta.ty, meta.encoding, rows, &block)
        .map_err(|e| with_path(path, with_ctx(&format!("column '{}'", meta.name), e)))
}

fn with_ctx(prefix: &str, e: SnowError) -> SnowError {
    match e {
        SnowError::Storage(m) => storage(format!("{prefix}: {m}")),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TableBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "snowdb-format-{}-{tag}-{n}.part",
            std::process::id()
        ))
    }

    fn sample_partition() -> (Vec<ColumnDef>, MicroPartition) {
        let schema = vec![
            ColumnDef::new("I", ColumnType::Int),
            ColumnDef::new("F", ColumnType::Float),
            ColumnDef::new("B", ColumnType::Bool),
            ColumnDef::new("S", ColumnType::Str),
            ColumnDef::new("V", ColumnType::Variant),
        ];
        let mut b = TableBuilder::with_partition_rows("t", schema.clone(), 64);
        for i in 0..13i64 {
            let nested = crate::variant::parse_json(&format!(
                "{{\"a\": [{i}, null, {{\"deep\": \"x{i}\"}}], \"b\": {}}}",
                i as f64 * 0.5
            ))
            .unwrap();
            let row = vec![
                if i % 4 == 0 { Variant::Null } else { Variant::Int(i - 6) },
                Variant::Float(i as f64 * 1.5 - 3.0),
                if i % 3 == 0 { Variant::Null } else { Variant::Bool(i % 2 == 0) },
                if i % 5 == 0 { Variant::Null } else { Variant::str(format!("s{i}")) },
                nested,
            ];
            b.push_row(&row).unwrap();
        }
        let t = b.finish().unwrap();
        let part = t.partitions()[0].as_mem().unwrap().clone();
        (schema, part)
    }

    #[test]
    fn partition_file_roundtrip_all_types() {
        let (schema, part) = sample_partition();
        let path = temp_path("roundtrip");
        let meta = write_partition(&path, &schema, &part).unwrap();
        assert_eq!(meta.row_count, 13);
        assert_eq!(meta.columns.len(), 5);

        let footer = read_footer(&path).unwrap();
        assert_eq!(footer.row_count, 13);
        assert_eq!(footer.schema(), schema);
        // Zone maps round-trip through the footer.
        // Col 0 is Int(i - 6) with every i % 4 == 0 null: min at i=1, max at i=11.
        let zm = footer.columns[0].zone_map.as_ref().unwrap();
        assert_eq!(zm.min, Variant::Int(-5));
        assert_eq!(zm.max, Variant::Int(5));
        assert!(footer.columns[4].zone_map.is_none());

        for (i, cm) in footer.columns.iter().enumerate() {
            let col = read_column(&path, cm, footer.row_count).unwrap();
            for r in 0..footer.row_count {
                assert_eq!(col.get(r), part.column(i).get(r), "col {i} row {r}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_zone_maps_roundtrip_bit_exact() {
        let schema = vec![ColumnDef::new("F", ColumnType::Float)];
        let mut b = TableBuilder::with_partition_rows("t", schema.clone(), 8);
        for v in [-0.0f64, 1.0e-300, f64::MAX] {
            b.push_row(&[Variant::Float(v)]).unwrap();
        }
        let t = b.finish().unwrap();
        let part = t.partitions()[0].as_mem().unwrap().clone();
        let path = temp_path("floatzm");
        write_partition(&path, &schema, &part).unwrap();
        let footer = read_footer(&path).unwrap();
        let zm = footer.columns[0].zone_map.as_ref().unwrap();
        assert_eq!(zm.min, Variant::Float(-0.0));
        assert_eq!(zm.max, Variant::Float(f64::MAX));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_block_fails_with_typed_checksum_error() {
        let (schema, part) = sample_partition();
        let path = temp_path("corrupt");
        let meta = write_partition(&path, &schema, &part).unwrap();
        // Flip one byte inside the first column's block.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[meta.columns[0].offset as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Footer still validates; the damaged block does not.
        let footer = read_footer(&path).unwrap();
        let err = read_column(&path, &footer.columns[0], footer.row_count).unwrap_err();
        assert!(
            matches!(err, SnowError::Storage(ref m) if m.contains("checksum")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_footer_fails_typed() {
        let (schema, part) = sample_partition();
        let path = temp_path("trunc");
        write_partition(&path, &schema, &part).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = read_footer(&path).unwrap_err();
        assert!(matches!(err, SnowError::Storage(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_fail_typed() {
        let (schema, part) = sample_partition();
        let path = temp_path("magic");
        write_partition(&path, &schema, &part).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = read_footer(&path).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("magic")), "{err}");

        let mut bad_version = good.clone();
        bad_version[4] = 0xFE;
        std::fs::write(&path, &bad_version).unwrap();
        let err = read_footer(&path).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("version")), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deep_variant_nesting_is_depth_guarded_on_decode() {
        let mut bytes = Vec::new();
        for _ in 0..(MAX_VARIANT_DEPTH + 8) {
            bytes.push(VTAG_ARRAY);
            bytes.push(1); // one element
        }
        bytes.push(VTAG_NULL);
        let err =
            decode_column(ColumnType::Variant, BlockEncoding::Plain, 1, &bytes).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("depth")), "{err}");
    }

    /// Builds a low-cardinality / repetitive partition that triggers every
    /// encoded block layout (dict strings, int runs, bool runs).
    fn encoded_partition() -> (Vec<ColumnDef>, MicroPartition) {
        let schema = vec![
            ColumnDef::new("S", ColumnType::Str),
            ColumnDef::new("I", ColumnType::Int),
            ColumnDef::new("B", ColumnType::Bool),
        ];
        crate::storage::set_ingest_encoding(Some(true));
        let mut b = TableBuilder::with_partition_rows("t", schema.clone(), 512);
        for i in 0..300i64 {
            b.push_row(&[
                if i % 11 == 0 {
                    Variant::Null
                } else {
                    Variant::str(["alpha", "beta", "gamma"][(i % 3) as usize])
                },
                Variant::Int(i / 50),
                Variant::Bool(i < 200),
            ])
            .unwrap();
        }
        let t = b.finish().unwrap();
        crate::storage::set_ingest_encoding(None);
        let part = t.partitions()[0].as_mem().unwrap().clone();
        (schema, part)
    }

    #[test]
    fn encoded_partition_roundtrips_and_shrinks() {
        let (schema, part) = encoded_partition();
        let path = temp_path("encoded");
        let meta = write_partition(&path, &schema, &part).unwrap();
        assert_eq!(meta.columns[0].encoding, BlockEncoding::DictStr);
        assert_eq!(meta.columns[1].encoding, BlockEncoding::RleInt);
        assert_eq!(meta.columns[2].encoding, BlockEncoding::RleBool);

        let footer = read_footer(&path).unwrap();
        for (i, cm) in footer.columns.iter().enumerate() {
            let col = read_column(&path, cm, footer.row_count).unwrap();
            // Encoded blocks stay encoded in memory.
            assert_eq!(
                BlockEncoding::of(&col),
                cm.encoding,
                "column {i} lost its encoding on read"
            );
            for r in 0..footer.row_count {
                assert_eq!(col.get(r), part.column(i).get(r), "col {i} row {r}");
            }
        }

        // The same rows written without encoding must cost more block bytes.
        crate::storage::set_ingest_encoding(Some(false));
        let mut b = TableBuilder::with_partition_rows("t", schema.clone(), 512);
        for r in 0..part.row_count() {
            let row: Vec<Variant> = (0..schema.len()).map(|c| part.column(c).get(r)).collect();
            b.push_row(&row).unwrap();
        }
        let plain_t = b.finish().unwrap();
        crate::storage::set_ingest_encoding(None);
        let plain_part = plain_t.partitions()[0].as_mem().unwrap().clone();
        let plain_path = temp_path("plain");
        let plain_meta = write_partition(&plain_path, &schema, &plain_part).unwrap();
        assert!(
            meta.total_block_bytes() < plain_meta.total_block_bytes(),
            "encoded {} >= plain {}",
            meta.total_block_bytes(),
            plain_meta.total_block_bytes()
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plain_path).ok();
    }

    #[test]
    fn v1_files_remain_readable() {
        // Write a version-1 file by hand: plain blocks, v1 footer (no
        // encoding ids), version 1 in the header.
        let (schema, part) = sample_partition();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&[0u8; 2]);
        let mut columns = Vec::new();
        for (i, def) in schema.iter().enumerate() {
            let offset = buf.len() as u64;
            let plain = part.column(i).decoded();
            encode_column(&plain, &mut buf);
            let len = buf.len() as u64 - offset;
            columns.push(ColumnMeta {
                name: def.name.clone(),
                ty: plain.column_type(),
                encoding: BlockEncoding::Plain,
                offset,
                len,
                crc: crc32(&buf[offset as usize..]),
                zone_map: part.zone_map(i).cloned(),
                stats: None,
            });
        }
        let meta = PartitionMeta { row_count: part.row_count(), columns };
        let footer = encode_footer(&meta, 1);
        buf.extend_from_slice(&footer);
        buf.extend_from_slice(&crc32(&footer).to_le_bytes());
        buf.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        buf.extend_from_slice(&MAGIC);
        let path = temp_path("v1");
        std::fs::write(&path, &buf).unwrap();

        let read = read_footer(&path).unwrap();
        assert_eq!(read.row_count, part.row_count());
        for (i, cm) in read.columns.iter().enumerate() {
            assert_eq!(cm.encoding, BlockEncoding::Plain);
            let col = read_column(&path, cm, read.row_count).unwrap();
            for r in 0..read.row_count {
                assert_eq!(col.get(r), part.column(i).get(r), "col {i} row {r}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_files_remain_readable_without_stats() {
        // Write a version-2 file by hand: v2 footer (encoding ids, no stats
        // block), version 2 in the header — the layout every pre-v3 database
        // on disk has.
        let (schema, part) = sample_partition();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0u8; 2]);
        let mut columns = Vec::new();
        for (i, def) in schema.iter().enumerate() {
            let offset = buf.len() as u64;
            encode_column(part.column(i), &mut buf);
            let len = buf.len() as u64 - offset;
            columns.push(ColumnMeta {
                name: def.name.clone(),
                ty: part.column(i).column_type(),
                encoding: BlockEncoding::of(part.column(i)),
                offset,
                len,
                crc: crc32(&buf[offset as usize..]),
                zone_map: part.zone_map(i).cloned(),
                stats: None,
            });
        }
        let meta = PartitionMeta { row_count: part.row_count(), columns };
        let footer = encode_footer(&meta, 2);
        buf.extend_from_slice(&footer);
        buf.extend_from_slice(&crc32(&footer).to_le_bytes());
        buf.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        buf.extend_from_slice(&MAGIC);
        let path = temp_path("v2");
        std::fs::write(&path, &buf).unwrap();

        let read = read_footer(&path).unwrap();
        assert_eq!(read.row_count, part.row_count());
        for (i, cm) in read.columns.iter().enumerate() {
            // Zone maps survive, stats are absent (the reader must not
            // misparse the footer as v3).
            assert_eq!(cm.zone_map.is_some(), part.zone_map(i).is_some());
            assert!(cm.stats.is_none());
            let col = read_column(&path, cm, read.row_count).unwrap();
            for r in 0..read.row_count {
                assert_eq!(col.get(r), part.column(i).get(r), "col {i} row {r}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_stats_roundtrip_through_v3_footer() {
        let (schema, part) = sample_partition();
        let path = temp_path("stats");
        write_partition(&path, &schema, &part).unwrap();
        let footer = read_footer(&path).unwrap();
        for (i, cm) in footer.columns.iter().enumerate() {
            let expect = part.column_stats(i).expect("sealed partitions carry stats");
            let got = cm.stats.as_ref().expect("v3 footer carries stats");
            assert_eq!(got, expect, "col {i} stats diverge after roundtrip");
        }
        // The Variant column's array fan-out counters survive persistence.
        let v = footer.columns[4].stats.as_ref().unwrap();
        assert_eq!(v.rows, 13);
        assert_eq!(v.array_cells, 0); // top-level values are objects
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_dict_block_fails_with_typed_checksum_error() {
        let (schema, part) = encoded_partition();
        let path = temp_path("dictflip");
        let meta = write_partition(&path, &schema, &part).unwrap();
        assert_eq!(meta.columns[0].encoding, BlockEncoding::DictStr);
        // Flip one byte inside the dictionary block.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[meta.columns[0].offset as usize + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let footer = read_footer(&path).unwrap();
        let err = read_column(&path, &footer.columns[0], footer.row_count).unwrap_err();
        assert!(
            matches!(err, SnowError::Storage(ref m) if m.contains("checksum")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_encoded_blocks_fail_typed_not_panic() {
        // Out-of-range dictionary code: dict of 1 entry, row code 2 (= raw 3).
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1); // dict len
        put_varint(&mut bytes, 1); // entry len
        bytes.push(b'x');
        put_varint(&mut bytes, 3); // code 2 → out of range
        let err =
            decode_column(ColumnType::Str, BlockEncoding::DictStr, 1, &bytes).unwrap_err();
        assert!(
            matches!(err, SnowError::Storage(ref m) if m.contains("out of range")),
            "{err}"
        );

        // Dictionary encoding on a non-string column is rejected.
        let err =
            decode_column(ColumnType::Int, BlockEncoding::DictStr, 1, &[0]).unwrap_err();
        assert!(matches!(err, SnowError::Storage(_)), "{err}");

        // Truncated dictionary block (dict promises more entries than exist).
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 5); // dict len 5, but no entries follow
        let err =
            decode_column(ColumnType::Str, BlockEncoding::DictStr, 1, &bytes).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("truncated")), "{err}");

        // Run lengths that do not cover the row count.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1); // one run
        put_varint(&mut bytes, 3); // of 3 rows, but the block claims 5
        let err =
            decode_column(ColumnType::Int, BlockEncoding::RleInt, 5, &bytes).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("cover")), "{err}");

        // A zero-length run is malformed.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 2);
        put_varint(&mut bytes, 0);
        put_varint(&mut bytes, 2);
        let err =
            decode_column(ColumnType::Int, BlockEncoding::RleInt, 2, &bytes).unwrap_err();
        assert!(matches!(err, SnowError::Storage(ref m) if m.contains("empty run")), "{err}");
    }

    #[test]
    fn unknown_encoding_id_fails_typed() {
        let (schema, part) = sample_partition();
        let path = temp_path("unkenc");
        write_partition(&path, &schema, &part).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Locate the footer via the trailer, patch the first column's
        // encoding byte to an unknown id, and re-seal the footer CRC so only
        // the encoding id is wrong.
        let n = bytes.len();
        let footer_len =
            u32::from_le_bytes(bytes[n - 8..n - 4].try_into().unwrap()) as usize;
        let footer_start = n - TRAILER_LEN as usize - footer_len;
        let footer_end = footer_start + footer_len;
        // Footer layout: varint row_count, varint col_count, then per column
        // varint name-len + name + ty tag + encoding id. All counts here are
        // single-byte varints.
        let name_len = bytes[footer_start + 2] as usize;
        let enc_pos = footer_start + 2 + 1 + name_len + 1;
        bytes[enc_pos] = 0xEE;
        let crc = crc32(&bytes[footer_start..footer_end]).to_le_bytes();
        bytes[n - 12..n - 8].copy_from_slice(&crc);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_footer(&path).unwrap_err();
        assert!(
            matches!(err, SnowError::Storage(ref m) if m.contains("encoding id")),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
